#!/usr/bin/env python3
"""National bias in mail provider choice (Figure 8, Section 5.4).

For the fifteen ccTLDs the paper studies, shows the share of domains whose
mail lands with Google, Microsoft, Tencent or Yandex — and therefore under
US, Chinese or Russian legal jurisdiction.

Run:  python examples/country_bias.py
"""

from repro.experiments import default_context, fig8


def main() -> None:
    ctx = default_context()
    result = fig8.run(ctx)
    print(result.render())

    prefs = result.preferences
    print()
    print("Jurisdiction observations:")
    broad = [cc for cc in prefs.cctlds if prefs.us_share(cc) > 30]
    print(
        f"  * US providers (Google+Microsoft) serve >30% of domains in "
        f"{len(broad)}/{len(prefs.cctlds)} ccTLDs: "
        + ", ".join(f".{cc}" for cc in broad)
    )
    print(
        f"  * Yandex is essentially confined to .ru "
        f"({prefs.percent('ru', 'yandex'):.0f}% there, "
        f"<{max(prefs.percent(cc, 'yandex') for cc in prefs.cctlds if cc != 'ru'):.1f}% "
        "anywhere else)."
    )
    print(
        f"  * Tencent is essentially confined to .cn "
        f"({prefs.percent('cn', 'tencent'):.0f}% there)."
    )


if __name__ == "__main__":
    main()
