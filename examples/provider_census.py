#!/usr/bin/env python3
"""Provider census: who serves mail for each corpus (Figure 5 / Table 6).

Runs the full measurement + inference stack over the three corpora for the
June 2021 snapshot and prints the top-company rankings, the Alexa rank
slices, and the data-availability breakdown (Table 4).

Run:  python examples/provider_census.py            (default scale)
      REPRO_SCALE=3 python examples/provider_census.py   (3x corpora)
"""

from repro.experiments import default_context, fig5, tab4, tab6


def main() -> None:
    ctx = default_context()
    config = ctx.world.config
    print(
        f"World: {config.alexa_size} Alexa + {config.com_size} .com + "
        f"{config.gov_size} .gov domains, seed={config.seed}"
    )
    print()
    print(tab4.run(ctx).render())
    print()
    print(fig5.run(ctx).render())
    print()
    print(tab6.run(ctx).render())


if __name__ == "__main__":
    main()
