#!/usr/bin/env python3
"""Longitudinal study: consolidation of mail service, 2017–2021.

Reproduces the heart of the paper's Section 5.2/5.3: per-company market
share trends across nine semi-annual snapshots (Figure 6) and the Sankey
churn flows between the first and last snapshot (Figure 7), including the
headline finding — self-hosting shrinks, and more than a quarter of the
departing self-hosters land on Google or Microsoft.

Run:  python examples/longitudinal_study.py
"""

from repro.experiments import default_context, fig6, fig7


def main() -> None:
    ctx = default_context()
    print(fig6.run(ctx).render())
    print()
    result = fig7.run(ctx)
    print(result.render())

    matrix = result.matrix
    leavers = matrix.outgoing("Self-Hosted")
    to_big_two = matrix.flow("Self-Hosted", "Google") + matrix.flow(
        "Self-Hosted", "Microsoft"
    )
    print()
    print(
        f"Of {leavers} domains that stopped self-hosting, {to_big_two} "
        f"({100 * to_big_two / leavers:.0f}%) moved to Google or Microsoft — "
        f"versus {matrix.flow('Self-Hosted', 'Top100')} to the rest of the "
        "top-100 providers combined."
    )


if __name__ == "__main__":
    main()
