#!/usr/bin/env python3
"""Export a measurement snapshot to disk and re-analyze it offline.

The real study consumes *published datasets* (OpenINTEL exports, Censys
dumps), not live services.  This example demonstrates the same workflow on
the simulator: export the June-2021 DNS snapshot and port-25 scan data as
JSONL, reload them, rebuild the joined measurements from files alone, and
verify the inference results are identical to the live run.

Run:  python examples/export_dataset.py
"""

import io

from repro.core import PriorityPipeline
from repro.experiments.common import StudyContext
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.measure.export import (
    read_dns_snapshot,
    read_scan_data,
    write_dns_snapshot,
    write_scan_data,
)
from repro.world import DatasetTag, WorldConfig

LAST = 8


def main() -> None:
    ctx = StudyContext.create(WorldConfig(alexa_size=400, com_size=300, gov_size=100))
    domains = ctx.domains(DatasetTag.GOV)

    # --- export phase: what the measurement platforms would publish -----
    dns_records = list(ctx.gatherer.openintel.measure(domains, LAST).values())
    addresses = sorted(
        {address for record in dns_records for address in record.all_addresses}
    )
    scan_day = ctx.world.snapshot_dates[LAST]
    scan_records = list(
        ctx.gatherer.censys.scan_many(addresses, scan_day).values()
    )

    dns_file, scan_file = io.StringIO(), io.StringIO()
    dns_count = write_dns_snapshot(dns_records, dns_file)
    scan_count = write_scan_data(scan_records, scan_file)
    print(f"exported {dns_count} DNS records ({len(dns_file.getvalue()):,} bytes)")
    print(f"exported {scan_count} scan records ({len(scan_file.getvalue()):,} bytes)")

    # --- offline phase: rebuild measurements from the files alone -------
    dns_file.seek(0)
    scan_file.seek(0)
    loaded_dns = list(read_dns_snapshot(dns_file))
    scans_by_ip = {record.address: record for record in read_scan_data(scan_file)}

    measurements = {}
    for record in loaded_dns:
        mx_set = []
        for observation in record.mx:
            ips = tuple(
                IPObservation(
                    address=address,
                    as_info=ctx.gatherer.prefix2as.lookup(address),
                    scan=scans_by_ip.get(address),
                )
                for address in observation.addresses
            )
            mx_set.append(MXData(observation.name, observation.preference, ips))
        measurements[record.domain] = DomainMeasurement(
            domain=record.domain,
            measured_on=record.measured_on,
            mx_set=tuple(mx_set),
            txt=record.txt,
        )

    pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
    offline = pipeline.run(measurements)
    live = pipeline.run(ctx.gatherer.gather(domains, LAST))

    agree = sum(
        1 for domain in measurements
        if offline[domain].attributions == live[domain].attributions
        and offline[domain].status == live[domain].status
    )
    print(f"offline re-analysis agrees with live run on {agree}/{len(measurements)} domains")
    assert agree == len(measurements)


if __name__ == "__main__":
    main()
