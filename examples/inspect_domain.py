#!/usr/bin/env python3
"""Inspect one domain: the full evidence trail behind an inference.

The downstream-user tool: pick any domain in the synthetic world and see
exactly what each methodology step observed and decided — MX records,
address resolution, routing, the SMTP handshake, certificate grouping, and
the final (possibly step-4-corrected) verdict of the priority approach next
to the three baselines.

Run:  python examples/inspect_domain.py [domain ...]
      (defaults to a representative mix of corner cases)
"""

import sys

from repro.core import MXOnlyApproach, banner_based, cert_based
from repro.core.types import DomainStatus
from repro.experiments.common import default_context
from repro.world.entities import DatasetTag

LAST = 8


def inspect(ctx, corpus, results, domain: str) -> None:
    measurement = corpus.get(domain)
    if measurement is None:
        print(f"{domain}: not in the measured corpus")
        return

    print("=" * 72)
    print(domain)
    print("=" * 72)

    print("DNS (OpenINTEL):")
    for mx in measurement.mx_set:
        marker = "*" if mx in measurement.primary_mx else " "
        print(f" {marker} MX {mx.preference:>3}  {mx.name}")
        for ip in mx.ips:
            as_text = (
                f"AS{ip.as_info.asn} ({ip.as_info.name})" if ip.as_info else "unrouted"
            )
            print(f"       A  {ip.address}  {as_text}")

    print("SMTP scans (Censys):")
    for ip in measurement.all_ips():
        if ip.scan is None:
            print(f"   {ip.address}: no scan data")
            continue
        scan = ip.scan
        print(f"   {ip.address}: port 25 {scan.state.value}")
        if scan.banner:
            print(f"       banner: {scan.banner}")
        if scan.ehlo:
            print(f"       EHLO:   {scan.ehlo}")
        if scan.certificate is not None:
            cert = scan.certificate
            kind = "self-signed" if cert.self_signed else f"issued by {cert.issuer}"
            print(f"       cert:   CN={cert.subject_cn} ({kind})")
            if cert.sans:
                print(f"               SANs: {', '.join(cert.sans)}")

    print("Inference:")
    priority = results["priority"][domain]
    if priority.status is DomainStatus.INFERRED:
        for identity in priority.mx_identities:
            line = (
                f"   priority: {identity.provider_id} "
                f"[{identity.source.value} evidence]"
            )
            if identity.corrected:
                line += f" — corrected: {identity.correction_reason}"
            elif identity.examined:
                line += " — examined by step 4, upheld"
            print(line)
        resolved = default_context().company_map.resolve_attributions(
            domain, priority.attributions
        )
        companies = ", ".join(
            f"{ctx.company_map.display(label)} ({weight:.0%})"
            for label, weight in resolved.items()
        )
        print(f"   company:  {companies}")
    else:
        print(f"   priority: {priority.status.value}")

    for name in ("mx-only", "cert-based", "banner-based"):
        inference = results[name][domain]
        verdict = (
            "/".join(sorted(inference.attributions))
            if inference.status is DomainStatus.INFERRED
            else inference.status.value
        )
        print(f"   {name:12s} says: {verdict}")

    truth = ctx.ground_truth(domain, LAST)
    print(f"   ground truth: {truth}")
    print()


def main() -> None:
    ctx = default_context()
    corpus = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        corpus.update(ctx.measurements(dataset, LAST))
    for domain in ctx.world.showcase:
        measurement = ctx.gatherer.gather_domain(domain, LAST)
        if measurement is not None:
            corpus[domain] = measurement

    from repro.core import PriorityPipeline

    results = {
        "priority": PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl
        ).run(corpus).inferences,
        "mx-only": MXOnlyApproach(psl=ctx.world.psl).run(corpus),
        "cert-based": cert_based(ctx.world.trust_store, psl=ctx.world.psl).run(corpus),
        "banner-based": banner_based(ctx.world.trust_store, psl=ctx.world.psl).run(corpus),
    }

    domains = sys.argv[1:] or [
        "netflix.com", "gsipartners.com", "beats24-7.com",
        "jeniustoto.net", "utexas.edu",
    ]
    for domain in domains:
        inspect(ctx, corpus, results, domain)


if __name__ == "__main__":
    main()
