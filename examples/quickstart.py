#!/usr/bin/env python3
"""Quickstart: infer the mail provider behind a handful of domains.

Builds a small synthetic Internet, measures the paper's worked-example
domains exactly as the measurement pipeline would (OpenINTEL DNS snapshot +
Censys port-25 scan + CAIDA prefix2as), runs the priority-based approach,
and prints the verdicts alongside the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import CompanyMap, PriorityPipeline
from repro.core.types import DomainStatus
from repro.experiments.common import StudyContext
from repro.world import WorldConfig

LAST_SNAPSHOT = 8  # June 2021

DOMAINS = [
    "netflix.com",       # names Google explicitly in its MX
    "gsipartners.com",   # hides Google behind a customer-named MX
    "beats24-7.com",     # a security vendor renting Google Cloud space
    "jeniustoto.net",    # MX points at web hosting; no SMTP server at all
    "utexas.edu",        # Ironport relay presenting the customer's own cert
]


def main() -> None:
    print("Building a small synthetic Internet ...")
    ctx = StudyContext.create(WorldConfig(alexa_size=400, com_size=400, gov_size=100))

    print("Measuring target domains (DNS + port-25 scans + routing data) ...")
    measurements = {}
    for domain in DOMAINS:
        measurement = ctx.gatherer.gather_domain(domain, LAST_SNAPSHOT)
        assert measurement is not None
        measurements[domain] = measurement

    # Give the pipeline corpus context so its popularity counters (step 4)
    # can tell shared provider infrastructure from one-off servers.
    from repro.world.entities import DatasetTag

    corpus = dict(ctx.measurements(DatasetTag.ALEXA, LAST_SNAPSHOT))
    corpus.update(measurements)

    pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
    result = pipeline.run(corpus)

    print()
    for domain in DOMAINS:
        inference = result[domain]
        truth = ctx.ground_truth(domain, LAST_SNAPSHOT)
        print(f"{domain}")
        measurement = measurements[domain]
        for mx in measurement.primary_mx:
            addresses = ", ".join(ip.address for ip in mx.ips) or "unresolvable"
            print(f"  MX {mx.preference:>2} {mx.name} -> {addresses}")
        if inference.status is DomainStatus.INFERRED:
            for identity in inference.mx_identities:
                note = " (corrected in step 4)" if identity.corrected else ""
                print(
                    f"  inferred provider: {identity.provider_id}"
                    f"  [evidence: {identity.source.value}]{note}"
                )
            resolved = ctx.company_map.resolve_attributions(
                domain, inference.attributions
            )
            print(f"  company: {', '.join(ctx.company_map.display(s) for s in resolved)}")
        else:
            print(f"  no usable mail service ({inference.status.value})")
        print(f"  ground truth: {truth}")
        print()


if __name__ == "__main__":
    main()
