#!/usr/bin/env python3
"""End-to-end mail delivery through the simulated Internet.

Exercises the full mail-processing model of the paper's Section 2.1: an
outbound MTA parses recipient addresses, looks up MX records, resolves the
exchanges, and relays a message over SMTP — landing it in the mailbox
store of whichever company *actually* operates the recipient's mail
service.  The delivery trace makes the paper's point tangible: the message
for ``gsipartners.com`` (whose MX looks self-hosted) physically arrives at
Google.

Run:  python examples/mail_delivery.py
"""

from repro.dnscore import Resolver
from repro.experiments.common import StudyContext
from repro.smtp.delivery import SendingMTA
from repro.world import WorldConfig
from repro.world.mailnet import build_mail_network

LAST = 8

RECIPIENTS = [
    "info@netflix.com",        # provider-named Google customer
    "ceo@gsipartners.com",     # customer-named MX, actually Google
    "sales@beats24-7.com",     # security vendor in Google Cloud space
    "admin@jeniustoto.net",    # MX points at web hosting; no SMTP
    "dean@utexas.edu",         # Ironport filtering relay
]


def main() -> None:
    print("Building world and mail network ...")
    ctx = StudyContext.create(WorldConfig(alexa_size=300, com_size=300, gov_size=100))
    network = build_mail_network(ctx.world, LAST)
    mta = SendingMTA(
        resolver=Resolver(db=ctx.world.snapshot_zones[LAST]),
        network=network,
        helo_name="out.newsletter.example",
    )

    results = mta.send(
        "editor@newsletter.example",
        RECIPIENTS,
        "Subject: delivery demo\n\nWho's got your mail? Let's find out.",
    )
    for recipient in RECIPIENTS:
        domain = recipient.split("@")[1]
        result = results[domain]
        print(f"\n{recipient}")
        for attempt in result.attempts:
            print(f"  -> {attempt.mx_name} ({attempt.address}): {attempt.outcome}")
        if result.succeeded:
            accepting = result.attempts[-1]
            asys = ctx.world.registry.lookup_as(accepting.address)
            store = network.store_at(accepting.address)
            count = len(store.messages_for(recipient)) if store else 0
            print(
                f"  DELIVERED via {result.delivered_via} "
                f"operated from {asys} — {count} message(s) in that mailbox store"
            )
        else:
            print(f"  FAILED: {result.status.value}")


if __name__ == "__main__":
    main()
