"""SMTP substrate: replies, banner semantics, simulated MTAs, probe sessions."""

from .delivery import (
    DeliveryAttempt,
    DeliveryResult,
    DeliveryStatus,
    MailNetwork,
    SendingMTA,
)
from .transaction import (
    Envelope,
    MailboxError,
    MailboxStore,
    RecipientPolicy,
    SMTPTransactionServer,
    TransactionState,
    parse_address,
)
from .banner import (
    BannerStyle,
    MessageIdentity,
    consistent_identity,
    identity_from_message,
    render_banner,
    render_ehlo_identity,
)
from .replies import Reply, ReplyParseError, parse_reply
from .server import (
    SMTP_RELAY_PORT,
    SMTPS_PORT,
    SUBMISSION_PORT,
    SMTPHostTable,
    SMTPServerConfig,
)
from .session import SessionOutcome, SessionResult, SMTPClient

__all__ = [
    "BannerStyle",
    "DeliveryAttempt",
    "DeliveryResult",
    "DeliveryStatus",
    "Envelope",
    "MailNetwork",
    "MailboxError",
    "MailboxStore",
    "RecipientPolicy",
    "SMTPTransactionServer",
    "SendingMTA",
    "TransactionState",
    "parse_address",
    "MessageIdentity",
    "Reply",
    "ReplyParseError",
    "SMTPClient",
    "SMTPHostTable",
    "SMTPServerConfig",
    "SMTP_RELAY_PORT",
    "SMTPS_PORT",
    "SUBMISSION_PORT",
    "SessionOutcome",
    "SessionResult",
    "consistent_identity",
    "identity_from_message",
    "parse_reply",
    "render_banner",
    "render_ehlo_identity",
]
