"""Client-side SMTP sessions against the simulated host table.

Reproduces what a port-25 scanner observes: connect, read the banner, send
EHLO, read the EHLO response, optionally run STARTTLS and capture the
certificate.  The result object carries exactly the fields the Censys
substrate snapshots and the inference pipeline consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import date

from ..tls.cert import Certificate
from .replies import Reply
from .server import SMTP_RELAY_PORT, SMTPHostTable


class SessionOutcome(enum.Enum):
    """How far a probe session got."""

    CONNECTED = "connected"            # full handshake observed
    CONNECTION_REFUSED = "refused"     # host exists, port closed
    TIMEOUT = "timeout"                # nothing at the address
    TLS_FAILED = "tls_failed"          # STARTTLS advertised but failed


@dataclass(frozen=True)
class SessionResult:
    """Observable artifacts of one SMTP probe."""

    address: str
    port: int
    outcome: SessionOutcome
    banner: Reply | None = None
    ehlo: Reply | None = None
    starttls_offered: bool = False
    certificate: Certificate | None = None

    @property
    def succeeded(self) -> bool:
        return self.outcome is SessionOutcome.CONNECTED

    @property
    def banner_text(self) -> str | None:
        return self.banner.text if self.banner else None

    @property
    def ehlo_identity(self) -> str | None:
        return self.ehlo.first_line if self.ehlo else None


class SMTPClient:
    """Drives probe sessions against an :class:`SMTPHostTable`.

    ``faults`` (a :class:`~repro.faults.FaultInjector`, or None) perturbs
    sessions the way real scans fail: refused connections, slow hosts
    that time out (``attempt`` re-rolls them, so a caller's retry loop
    can recover), sessions that die after a partial banner, and STARTTLS
    handshakes that never complete.  ``on`` scopes the decisions to one
    measurement day.
    """

    def __init__(
        self,
        hosts: SMTPHostTable,
        helo_name: str = "scanner.example",
        faults: object | None = None,
    ):
        self.hosts = hosts
        self.helo_name = helo_name
        self.faults = faults

    def probe(
        self,
        address: str,
        port: int = SMTP_RELAY_PORT,
        *,
        on: date | None = None,
        attempt: int = 0,
    ) -> SessionResult:
        """Run one scan-style session against address:port."""
        if self.faults is not None:
            fault = self.faults.probe_fault(address, on, attempt)
            if fault is not None:
                return SessionResult(address=address, port=port, outcome=fault)
        config = self.hosts.get(address)
        if config is None:
            return SessionResult(address=address, port=port, outcome=SessionOutcome.TIMEOUT)
        if not config.listens_on(port):
            return SessionResult(
                address=address, port=port, outcome=SessionOutcome.CONNECTION_REFUSED
            )

        banner = config.greet(address)
        if self.faults is not None:
            truncated = self.faults.truncated_banner(banner.first_line, address, on)
            if truncated is not None:
                # The connection died mid-banner: no EHLO, no STARTTLS.
                return SessionResult(
                    address=address,
                    port=port,
                    outcome=SessionOutcome.CONNECTED,
                    banner=Reply(code=banner.code, lines=(truncated,)),
                )
        ehlo = config.respond_ehlo(address)
        offered = any(line.startswith("STARTTLS") for line in ehlo.lines[1:])

        certificate: Certificate | None = None
        outcome = SessionOutcome.CONNECTED
        if offered:
            if config.certificate is not None:
                certificate = config.certificate
            else:  # pragma: no cover - config forbids this, defensive only
                outcome = SessionOutcome.TLS_FAILED
            if (
                certificate is not None
                and self.faults is not None
                and self.faults.tls_handshake_fails(address, on)
            ):
                outcome = SessionOutcome.TLS_FAILED
                certificate = None

        return SessionResult(
            address=address,
            port=port,
            outcome=outcome,
            banner=banner,
            ehlo=ehlo,
            starttls_offered=offered,
            certificate=certificate,
        )
