"""Client-side SMTP sessions against the simulated host table.

Reproduces what a port-25 scanner observes: connect, read the banner, send
EHLO, read the EHLO response, optionally run STARTTLS and capture the
certificate.  The result object carries exactly the fields the Censys
substrate snapshots and the inference pipeline consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..tls.cert import Certificate
from .replies import Reply
from .server import SMTP_RELAY_PORT, SMTPHostTable


class SessionOutcome(enum.Enum):
    """How far a probe session got."""

    CONNECTED = "connected"            # full handshake observed
    CONNECTION_REFUSED = "refused"     # host exists, port closed
    TIMEOUT = "timeout"                # nothing at the address
    TLS_FAILED = "tls_failed"          # STARTTLS advertised but failed


@dataclass(frozen=True)
class SessionResult:
    """Observable artifacts of one SMTP probe."""

    address: str
    port: int
    outcome: SessionOutcome
    banner: Reply | None = None
    ehlo: Reply | None = None
    starttls_offered: bool = False
    certificate: Certificate | None = None

    @property
    def succeeded(self) -> bool:
        return self.outcome is SessionOutcome.CONNECTED

    @property
    def banner_text(self) -> str | None:
        return self.banner.text if self.banner else None

    @property
    def ehlo_identity(self) -> str | None:
        return self.ehlo.first_line if self.ehlo else None


class SMTPClient:
    """Drives probe sessions against an :class:`SMTPHostTable`."""

    def __init__(self, hosts: SMTPHostTable, helo_name: str = "scanner.example"):
        self.hosts = hosts
        self.helo_name = helo_name

    def probe(self, address: str, port: int = SMTP_RELAY_PORT) -> SessionResult:
        """Run one scan-style session against address:port."""
        config = self.hosts.get(address)
        if config is None:
            return SessionResult(address=address, port=port, outcome=SessionOutcome.TIMEOUT)
        if not config.listens_on(port):
            return SessionResult(
                address=address, port=port, outcome=SessionOutcome.CONNECTION_REFUSED
            )

        banner = config.greet(address)
        ehlo = config.respond_ehlo(address)
        offered = any(line.startswith("STARTTLS") for line in ehlo.lines[1:])

        certificate: Certificate | None = None
        outcome = SessionOutcome.CONNECTED
        if offered:
            if config.certificate is not None:
                certificate = config.certificate
            else:  # pragma: no cover - config forbids this, defensive only
                outcome = SessionOutcome.TLS_FAILED

        return SessionResult(
            address=address,
            port=port,
            outcome=outcome,
            banner=banner,
            ehlo=ehlo,
            starttls_offered=offered,
            certificate=certificate,
        )
