"""The sending MTA: MX-based mail relay (RFC 5321 section 5).

Completes the paper's mail-processing model (Section 2.1): for each
recipient domain the outbound MTA looks up MX records, resolves the
exchange names, and attempts delivery in preference order with failover —
exactly the path whose *first hop* the measurement study characterizes.

Delivery needs transaction-capable endpoints, so :class:`MailNetwork`
pairs an :class:`~repro.smtp.server.SMTPHostTable` with per-address
recipient policies and mailbox stores, and :class:`SendingMTA` drives the
client side of the protocol against them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dnscore.resolver import Resolver
from .transaction import (
    MailboxError,
    MailboxStore,
    RecipientPolicy,
    SMTPTransactionServer,
    parse_address,
)
from .server import SMTPHostTable


class DeliveryStatus(enum.Enum):
    """Outcome of delivering to one recipient domain."""

    DELIVERED = "delivered"
    NO_MX = "no_mx"                    # no MX and no fallback A record
    NO_SERVER = "no_server"            # nothing answered on port 25
    REJECTED = "rejected"              # RCPT refused by every exchange
    MALFORMED = "malformed"


@dataclass(frozen=True)
class DeliveryAttempt:
    """One connection attempt in the delivery trace."""

    mx_name: str
    address: str
    outcome: str  # "delivered" / "no-listener" / "rcpt-rejected" / "unresolvable"


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of delivering a message to one recipient domain."""

    domain: str
    status: DeliveryStatus
    attempts: tuple[DeliveryAttempt, ...] = ()
    delivered_via: str | None = None  # MX name that accepted the message

    @property
    def succeeded(self) -> bool:
        return self.status is DeliveryStatus.DELIVERED


@dataclass
class MailNetwork:
    """Transaction-capable view of the simulated SMTP hosts.

    Each bound address gets a recipient policy (which domains it accepts)
    and shares a mailbox store per serving organization.
    """

    hosts: SMTPHostTable
    _policies: dict[str, RecipientPolicy] = field(default_factory=dict)
    _stores: dict[str, MailboxStore] = field(default_factory=dict)

    def serve(
        self, address: str, accepted_domains: set[str], store_key: str | None = None
    ) -> MailboxStore:
        """Make the MTA at *address* accept mail for *accepted_domains*.

        Returns the mailbox store (shared across addresses with the same
        ``store_key``, so a provider's many hosts deliver to one store).
        """
        if self.hosts.get(address) is None:
            raise ValueError(f"no MTA bound at {address}")
        key = store_key or address
        store = self._stores.setdefault(key, MailboxStore())
        policy = self._policies.get(address)
        if policy is None:
            self._policies[address] = RecipientPolicy(set(accepted_domains))
        else:
            policy.accepted_domains |= accepted_domains
        self._stores[address] = store
        return store

    def add_accepted_domain(self, address: str, domain: str) -> None:
        if address in self._policies:
            self._policies[address].accepted_domains.add(domain)

    def open_session(self, address: str) -> SMTPTransactionServer | None:
        """Open a transaction session with the MTA at *address* (or None)."""
        config = self.hosts.get(address)
        if config is None or not config.listens_on(25):
            return None
        policy = self._policies.get(address, RecipientPolicy())
        store = self._stores.get(address, MailboxStore())
        self._stores.setdefault(address, store)
        return SMTPTransactionServer(
            config=config, policy=policy, store=store, address=address
        )

    def store_at(self, address: str) -> MailboxStore | None:
        return self._stores.get(address)


@dataclass
class SendingMTA:
    """An outbound MTA relaying messages through the simulated Internet."""

    resolver: Resolver
    network: MailNetwork
    helo_name: str = "out.sender.example"

    def send(
        self, mail_from: str, recipients: list[str], body: str
    ) -> dict[str, DeliveryResult]:
        """Relay one message; returns a per-recipient-domain result."""
        by_domain: dict[str, list[str]] = {}
        results: dict[str, DeliveryResult] = {}
        for recipient in recipients:
            try:
                _user, domain = parse_address(recipient)
            except MailboxError:
                results[recipient] = DeliveryResult(
                    domain=recipient, status=DeliveryStatus.MALFORMED
                )
                continue
            by_domain.setdefault(domain, []).append(recipient)

        for domain, domain_recipients in by_domain.items():
            results[domain] = self._deliver_domain(
                domain, mail_from, domain_recipients, body
            )
        return results

    def _deliver_domain(
        self, domain: str, mail_from: str, recipients: list[str], body: str
    ) -> DeliveryResult:
        exchanges = [(r.preference, r.rdata) for r in self.resolver.resolve_mx(domain)]
        if not exchanges:
            # RFC 5321 5.1: fall back to an implicit MX on the domain's A.
            if self.resolver.resolve_a(domain):
                exchanges = [(0, domain)]
            else:
                return DeliveryResult(domain=domain, status=DeliveryStatus.NO_MX)

        attempts: list[DeliveryAttempt] = []
        saw_rejection = False
        for _preference, mx_name in sorted(exchanges):
            addresses = self.resolver.resolve_a(mx_name)
            if not addresses:
                attempts.append(
                    DeliveryAttempt(mx_name=mx_name, address="-", outcome="unresolvable")
                )
                continue
            for address in addresses:
                outcome, delivered = self._attempt(
                    address, mail_from, recipients, body
                )
                attempts.append(
                    DeliveryAttempt(mx_name=mx_name, address=address, outcome=outcome)
                )
                if delivered:
                    return DeliveryResult(
                        domain=domain,
                        status=DeliveryStatus.DELIVERED,
                        attempts=tuple(attempts),
                        delivered_via=mx_name,
                    )
                if outcome == "rcpt-rejected":
                    saw_rejection = True

        status = DeliveryStatus.REJECTED if saw_rejection else DeliveryStatus.NO_SERVER
        return DeliveryResult(domain=domain, status=status, attempts=tuple(attempts))

    def _attempt(
        self, address: str, mail_from: str, recipients: list[str], body: str
    ) -> tuple[str, bool]:
        session = self.network.open_session(address)
        if session is None:
            return "no-listener", False
        if not session.greeting().is_positive:
            return "no-listener", False
        if not session.handle(f"EHLO {self.helo_name}").is_positive:
            return "no-listener", False
        if not session.handle(f"MAIL FROM:<{mail_from}>").is_positive:
            return "rcpt-rejected", False
        accepted_any = False
        for recipient in recipients:
            if session.handle(f"RCPT TO:<{recipient}>").is_positive:
                accepted_any = True
        if not accepted_any:
            session.handle("QUIT")
            return "rcpt-rejected", False
        reply = session.handle("DATA")
        if reply.code != 354:
            session.handle("QUIT")
            return "rcpt-rejected", False
        for line in body.split("\n"):
            # Dot transparency on the wire.
            session.handle("." + line if line.startswith(".") else line)
        final = session.handle(".")
        session.handle("QUIT")
        if final.is_positive:
            return "delivered", True
        return "rcpt-rejected", False
