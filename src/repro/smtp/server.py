"""Simulated mail transfer agents.

An :class:`SMTPServerConfig` describes the externally observable behaviour
of one MTA endpoint: which port it listens on, the banner/EHLO style and
identity it emits, whether it offers STARTTLS and with which certificate.
:class:`SMTPHostTable` maps IPv4 addresses to server configs — the ground
truth the Censys-style scanner probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tls.cert import Certificate
from .banner import BannerStyle, render_banner, render_ehlo_identity
from .replies import Reply, ehlo_response, service_ready

SMTP_RELAY_PORT = 25
SUBMISSION_PORT = 587
SMTPS_PORT = 465

BASE_EXTENSIONS: tuple[str, ...] = ("PIPELINING", "SIZE 52428800", "8BITMIME", "ENHANCEDSTATUSCODES")


@dataclass
class SMTPServerConfig:
    """Externally observable configuration of one MTA endpoint."""

    identity: str | None
    banner_style: BannerStyle = BannerStyle.FQDN
    starttls: bool = True
    certificate: Certificate | None = None
    software: str = "ESMTP"
    open_ports: tuple[int, ...] = (SMTP_RELAY_PORT, SUBMISSION_PORT)
    accepts_mail: bool = True

    def __post_init__(self) -> None:
        if self.starttls and self.certificate is None:
            raise ValueError("STARTTLS requires a certificate")
        if self.banner_style in (BannerStyle.FQDN, BannerStyle.SPOOFED) and not self.identity:
            raise ValueError(f"{self.banner_style} requires an identity")

    def listens_on(self, port: int) -> bool:
        return port in self.open_ports

    def greet(self, address: str) -> Reply:
        """The 220 greeting a connecting client receives."""
        return service_ready(
            render_banner(self.banner_style, self.identity, address, self.software)
        )

    def respond_ehlo(self, address: str) -> Reply:
        """The multi-line 250 response to EHLO."""
        extensions = list(BASE_EXTENSIONS)
        if self.starttls:
            extensions.append("STARTTLS")
        claimed = render_ehlo_identity(self.banner_style, self.identity, address)
        return ehlo_response(claimed, tuple(extensions))


@dataclass
class SMTPHostTable:
    """Which MTA (if any) answers at each IPv4 address.

    Addresses with no entry model hosts that are unreachable or have no
    SMTP service at all — e.g. the paper's ``jeniustoto.net`` example,
    whose MX resolves into Google's web-hosting space where nothing
    listens on port 25.
    """

    _hosts: dict[str, SMTPServerConfig] = field(default_factory=dict)

    def bind(self, address: str, config: SMTPServerConfig) -> None:
        if address in self._hosts and self._hosts[address] is not config:
            raise ValueError(f"address {address} already bound")
        self._hosts[address] = config

    def rebind(self, address: str, config: SMTPServerConfig) -> None:
        """Replace whatever is bound at *address* (used by churn evolution)."""
        self._hosts[address] = config

    def unbind(self, address: str) -> None:
        self._hosts.pop(address, None)

    def get(self, address: str) -> SMTPServerConfig | None:
        return self._hosts.get(address)

    def addresses(self) -> list[str]:
        return sorted(self._hosts)

    def __contains__(self, address: str) -> bool:
        return address in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)
