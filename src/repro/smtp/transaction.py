"""Server-side SMTP transactions (RFC 5321 section 3).

The measurement pipeline only needs the banner/EHLO/STARTTLS prefix of a
session, but the paper's mail-processing model (Section 2.1, Figure 1)
describes full store-and-forward delivery.  This module implements the
receiving half: a command state machine covering HELO/EHLO, MAIL FROM,
RCPT TO, DATA, RSET, NOOP, VRFY, STARTTLS and QUIT, with recipient policy
and a mailbox store — enough for a sending MTA to relay real messages
through the simulated Internet.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from .replies import Reply
from .server import SMTPServerConfig

_ADDRESS_RE = re.compile(r"^<?([^<>@\s]+)@([^<>@\s]+?)>?$")


class MailboxError(ValueError):
    """Raised for malformed mailbox addresses."""


def parse_address(text: str) -> tuple[str, str]:
    """Parse ``user@domain`` (optionally angle-bracketed) → (user, domain)."""
    match = _ADDRESS_RE.match(text.strip())
    if not match:
        raise MailboxError(f"malformed address: {text!r}")
    return match.group(1), match.group(2).lower()


@dataclass(frozen=True)
class Envelope:
    """One accepted message: envelope addresses plus the message body."""

    mail_from: str
    recipients: tuple[str, ...]
    body: str
    received_by: str  # identity of the accepting server


class TransactionState(enum.Enum):
    """Position in the SMTP command sequence."""

    CONNECTED = "connected"      # banner sent, no HELO/EHLO yet
    GREETED = "greeted"          # HELO/EHLO done
    MAIL = "mail"                # MAIL FROM accepted
    RCPT = "rcpt"                # ≥1 RCPT TO accepted
    DATA = "data"                # reading message body
    CLOSED = "closed"


@dataclass
class MailboxStore:
    """Delivered messages, keyed by recipient address."""

    _messages: dict[str, list[Envelope]] = field(default_factory=dict)

    def deliver(self, envelope: Envelope) -> None:
        for recipient in envelope.recipients:
            self._messages.setdefault(recipient.lower(), []).append(envelope)

    def messages_for(self, address: str) -> list[Envelope]:
        return list(self._messages.get(address.lower(), []))

    def total_messages(self) -> int:
        return sum(len(bucket) for bucket in self._messages.values())


@dataclass
class RecipientPolicy:
    """Which RCPT TO addresses a server accepts.

    ``accepted_domains`` is the set of domains the MTA receives mail for
    (a provider accepts all its customers' domains; a self-hosted box only
    its own).  An empty set means accept everything (an open relay — used
    by tests, never by the world builder).
    """

    accepted_domains: set[str] = field(default_factory=set)

    def accepts(self, address: str) -> bool:
        try:
            _user, domain = parse_address(address)
        except MailboxError:
            return False
        return not self.accepted_domains or domain in self.accepted_domains


class SMTPTransactionServer:
    """The receiving MTA: drives one SMTP session command by command."""

    def __init__(
        self,
        config: SMTPServerConfig,
        policy: RecipientPolicy,
        store: MailboxStore,
        address: str = "0.0.0.0",
    ):
        self.config = config
        self.policy = policy
        self.store = store
        self.address = address
        self.state = TransactionState.CONNECTED
        self.tls_active = False
        self._mail_from: str | None = None
        self._recipients: list[str] = []
        self._data_lines: list[str] = []

    # ------------------------------------------------------------------

    def greeting(self) -> Reply:
        return self.config.greet(self.address)

    def handle(self, line: str) -> Reply:
        """Process one client line and return the server's reply."""
        if self.state is TransactionState.CLOSED:
            return Reply(code=421, lines=("connection closed",))
        if self.state is TransactionState.DATA:
            return self._handle_data_line(line)

        verb, _, argument = line.strip().partition(" ")
        verb = verb.upper()
        handler = {
            "HELO": self._cmd_helo,
            "EHLO": self._cmd_ehlo,
            "MAIL": self._cmd_mail,
            "RCPT": self._cmd_rcpt,
            "DATA": self._cmd_data,
            "RSET": self._cmd_rset,
            "NOOP": self._cmd_noop,
            "VRFY": self._cmd_vrfy,
            "QUIT": self._cmd_quit,
            "STARTTLS": self._cmd_starttls,
        }.get(verb)
        if handler is None:
            return Reply(code=500, lines=(f"command unrecognized: {verb}",))
        return handler(argument.strip())

    # -- commands -------------------------------------------------------

    def _cmd_helo(self, argument: str) -> Reply:
        if not argument:
            return Reply(code=501, lines=("HELO requires a domain",))
        self._reset_envelope()
        self.state = TransactionState.GREETED
        return Reply(code=250, lines=(self.config.identity or self.address,))

    def _cmd_ehlo(self, argument: str) -> Reply:
        if not argument:
            return Reply(code=501, lines=("EHLO requires a domain",))
        self._reset_envelope()
        self.state = TransactionState.GREETED
        return self.config.respond_ehlo(self.address)

    def _cmd_mail(self, argument: str) -> Reply:
        if self.state is TransactionState.CONNECTED:
            return Reply(code=503, lines=("send HELO/EHLO first",))
        if self.state in (TransactionState.MAIL, TransactionState.RCPT):
            return Reply(code=503, lines=("nested MAIL command",))
        if not argument.upper().startswith("FROM:"):
            return Reply(code=501, lines=("syntax: MAIL FROM:<address>",))
        sender = argument[5:].strip()
        if sender not in ("<>", ""):  # null reverse-path is legal (bounces)
            try:
                parse_address(sender)
            except MailboxError:
                return Reply(code=553, lines=("malformed sender address",))
        self._mail_from = sender.strip("<>")
        self.state = TransactionState.MAIL
        return Reply(code=250, lines=("OK",))

    def _cmd_rcpt(self, argument: str) -> Reply:
        if self.state not in (TransactionState.MAIL, TransactionState.RCPT):
            return Reply(code=503, lines=("need MAIL before RCPT",))
        if not argument.upper().startswith("TO:"):
            return Reply(code=501, lines=("syntax: RCPT TO:<address>",))
        recipient = argument[3:].strip().strip("<>")
        if not self.policy.accepts(recipient):
            return Reply(code=550, lines=("relay access denied",))
        self._recipients.append(recipient)
        self.state = TransactionState.RCPT
        return Reply(code=250, lines=("OK",))

    def _cmd_data(self, _argument: str) -> Reply:
        if self.state is not TransactionState.RCPT:
            return Reply(code=503, lines=("need RCPT before DATA",))
        self.state = TransactionState.DATA
        self._data_lines = []
        return Reply(code=354, lines=("end data with <CRLF>.<CRLF>",))

    def _handle_data_line(self, line: str) -> Reply:
        if line == ".":
            assert self._mail_from is not None
            envelope = Envelope(
                mail_from=self._mail_from,
                recipients=tuple(self._recipients),
                body="\n".join(self._data_lines),
                received_by=self.config.identity or self.address,
            )
            self.store.deliver(envelope)
            self._reset_envelope()
            self.state = TransactionState.GREETED
            return Reply(code=250, lines=("OK: message accepted for delivery",))
        # Transparency: a leading dot is doubled on the wire (RFC 5321
        # section 4.5.2); undo it.
        self._data_lines.append(line[1:] if line.startswith("..") else line)
        return Reply(code=250, lines=("",))  # no wire reply during DATA; ignored

    def _cmd_rset(self, _argument: str) -> Reply:
        self._reset_envelope()
        if self.state is not TransactionState.CONNECTED:
            self.state = TransactionState.GREETED
        return Reply(code=250, lines=("OK",))

    def _cmd_noop(self, _argument: str) -> Reply:
        return Reply(code=250, lines=("OK",))

    def _cmd_vrfy(self, argument: str) -> Reply:
        if self.policy.accepts(argument):
            return Reply(code=252, lines=("cannot VRFY user, but will accept message",))
        return Reply(code=550, lines=("unknown recipient",))

    def _cmd_quit(self, _argument: str) -> Reply:
        self.state = TransactionState.CLOSED
        return Reply(code=221, lines=("closing connection",))

    def _cmd_starttls(self, _argument: str) -> Reply:
        if not self.config.starttls or self.config.certificate is None:
            return Reply(code=502, lines=("STARTTLS not supported",))
        if self.tls_active:
            return Reply(code=503, lines=("TLS already active",))
        self.tls_active = True
        self.state = TransactionState.CONNECTED  # RFC 3207: restart session
        return Reply(code=220, lines=("ready to start TLS",))

    def _reset_envelope(self) -> None:
        self._mail_from = None
        self._recipients = []
        self._data_lines = []
