"""Banner and EHLO message content: generation styles and interpretation.

Section 3.1.3 of the paper observes that banner/EHLO text is unrestricted:
most providers emit their mail-host FQDN, but servers also emit decorated
IP strings (``IP-1-2-3-4``), ``localhost``, arbitrary prose, or outright
spoofed provider names.  :class:`BannerStyle` enumerates these behaviours
for the world generator, and :func:`identity_from_message` is the consumer
side — the registered-domain extraction the inference pipeline applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..dnscore.names import extract_fqdn
from ..dnscore.psl import PublicSuffixList, default_psl


class BannerStyle(enum.Enum):
    """How a simulated MTA populates its banner/EHLO identity."""

    FQDN = "fqdn"                    # "220 mx1.provider.com ESMTP"
    DECORATED_IP = "decorated_ip"    # "220 IP-1-2-3-4"
    LOCALHOST = "localhost"          # "220 localhost ESMTP Postfix"
    BLANK = "blank"                  # "220 ESMTP service ready"
    SPOOFED = "spoofed"              # claims someone else's FQDN


def render_banner(
    style: BannerStyle,
    identity: str | None,
    address: str | None = None,
    software: str = "ESMTP",
) -> str:
    """Produce the text portion of a 220 greeting for the given style."""
    if style is BannerStyle.FQDN or style is BannerStyle.SPOOFED:
        if not identity:
            raise ValueError(f"{style} banner requires an identity")
        return f"{identity} {software} service ready"
    if style is BannerStyle.DECORATED_IP:
        if not address:
            raise ValueError("decorated-IP banner requires an address")
        return f"IP-{address.replace('.', '-')} {software}"
    if style is BannerStyle.LOCALHOST:
        return f"localhost.localdomain {software} Postfix"
    return f"{software} service ready"


def render_ehlo_identity(style: BannerStyle, identity: str | None, address: str | None) -> str:
    """The first line of the EHLO response (the server's claimed identity)."""
    if style in (BannerStyle.FQDN, BannerStyle.SPOOFED) and identity:
        return identity
    if style is BannerStyle.DECORATED_IP and address:
        return f"[{address}]"
    if style is BannerStyle.LOCALHOST:
        return "localhost"
    return "smtp"


@dataclass(frozen=True)
class MessageIdentity:
    """What the inference side extracts from one banner or EHLO message."""

    fqdn: str | None
    registered_domain: str | None

    @property
    def usable(self) -> bool:
        return self.registered_domain is not None


def identity_from_message(text: str, psl: PublicSuffixList | None = None) -> MessageIdentity:
    """Extract the claimed FQDN and its registered domain from message text.

    Returns an unusable identity when no valid FQDN is present — the exact
    condition under which the methodology refuses to assign a banner-based
    ID (Section 3.2.2, "if the Banner/EHLO message is available and contains
    a valid FQDN").
    """
    psl = psl or default_psl()
    fqdn = extract_fqdn(text)
    if fqdn is None:
        return MessageIdentity(fqdn=None, registered_domain=None)
    registered = psl.registered_domain(fqdn)
    return MessageIdentity(fqdn=fqdn, registered_domain=registered)


def consistent_identity(
    banner_text: str, ehlo_text: str, psl: PublicSuffixList | None = None
) -> str | None:
    """The registered domain if banner and EHLO agree on one, else None.

    Implements step 2.2 of Figure 3: "if the same registered domain shows
    up in both, use that registered domain".
    """
    banner_id = identity_from_message(banner_text, psl)
    ehlo_id = identity_from_message(ehlo_text, psl)
    if (
        banner_id.usable
        and ehlo_id.usable
        and banner_id.registered_domain == ehlo_id.registered_domain
    ):
        return banner_id.registered_domain
    return None
