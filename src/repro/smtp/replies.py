"""SMTP reply lines (RFC 5321 section 4.2).

Models just enough of the wire format for a scanning client to parse
single- and multi-line replies, extract reply codes, and recover the
free-text portion (which is where banner/EHLO identity information lives).
"""

from __future__ import annotations

from dataclasses import dataclass


class ReplyParseError(ValueError):
    """Raised when text cannot be parsed as an SMTP reply."""


@dataclass(frozen=True)
class Reply:
    """A parsed SMTP reply: a 3-digit code and one or more text lines."""

    code: int
    lines: tuple[str, ...]

    def __post_init__(self) -> None:
        if not 200 <= self.code <= 599:
            raise ReplyParseError(f"implausible SMTP reply code: {self.code}")
        if not self.lines:
            raise ReplyParseError("reply must carry at least one line")

    @property
    def text(self) -> str:
        """All text lines joined — the free-text payload of the reply."""
        return "\n".join(self.lines)

    @property
    def first_line(self) -> str:
        return self.lines[0]

    @property
    def is_positive(self) -> bool:
        return 200 <= self.code < 300

    def render(self) -> str:
        """Render to wire format (``-`` continuation on all but the last)."""
        out = []
        for index, line in enumerate(self.lines):
            separator = " " if index == len(self.lines) - 1 else "-"
            out.append(f"{self.code}{separator}{line}")
        return "\r\n".join(out) + "\r\n"


def parse_reply(raw: str) -> Reply:
    """Parse wire-format reply text into a :class:`Reply`.

    Tolerates bare-LF line endings (seen in scan data) and enforces that
    every line of a multi-line reply carries the same code.
    """
    lines = [line for line in raw.replace("\r\n", "\n").split("\n") if line]
    if not lines:
        raise ReplyParseError("empty reply")
    code: int | None = None
    texts: list[str] = []
    for index, line in enumerate(lines):
        if len(line) < 3 or not line[:3].isdigit():
            raise ReplyParseError(f"malformed reply line: {line!r}")
        line_code = int(line[:3])
        if code is None:
            code = line_code
        elif line_code != code:
            raise ReplyParseError(f"inconsistent codes {code} vs {line_code}")
        separator = line[3:4]
        if separator not in ("", " ", "-"):
            raise ReplyParseError(f"bad separator in reply line: {line!r}")
        is_last = index == len(lines) - 1
        if separator == "-" and is_last:
            raise ReplyParseError("reply ends with a continuation line")
        texts.append(line[4:])
    assert code is not None
    return Reply(code=code, lines=tuple(texts))


# Frequently used replies.
def service_ready(banner_text: str) -> Reply:
    return Reply(code=220, lines=(banner_text,))


def ok(text: str = "OK") -> Reply:
    return Reply(code=250, lines=(text,))


def ehlo_response(identity: str, extensions: tuple[str, ...]) -> Reply:
    return Reply(code=250, lines=(identity, *extensions))


def not_available(text: str = "Service not available") -> Reply:
    return Reply(code=421, lines=(text,))


def command_not_implemented(text: str = "Command not implemented") -> Reply:
    return Reply(code=502, lines=(text,))
