"""Graceful shutdown: turn SIGINT/SIGTERM into a checkpointed stop.

The first signal sets a :class:`ShutdownFlag` that the execution layer
polls at its safe points — before each snapshot gather, between pipeline
runs, between experiments, and inside the shard supervisor's monitor
loop.  Work already completed keeps flowing into its write-through
checkpoints; the run then raises :class:`RunInterrupted`, which the CLI
converts into a finalized partial manifest, a ``run.interrupted`` journal
event, and a printed resume command.

A second signal skips the graceful path entirely (the default Python
``KeyboardInterrupt`` behaviour), for operators who really mean it.
Everything on disk is already crash-safe — append-only journal, atomic
store writes — so even an immediate kill resumes cleanly; the graceful
path just finishes faster next time.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading


class RunInterrupted(Exception):
    """Raised at a safe point after a shutdown signal was received."""

    def __init__(self, signal_name: str = "SIGINT"):
        super().__init__(f"run interrupted by {signal_name}")
        self.signal_name = signal_name


class ShutdownFlag:
    """A thread-safe latch recording the first shutdown signal."""

    def __init__(self):
        self._event = threading.Event()
        self.signal_name: str | None = None

    def trip(self, signal_name: str) -> None:
        if not self._event.is_set():
            self.signal_name = signal_name
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def raise_if_set(self) -> None:
        if self._event.is_set():
            raise RunInterrupted(self.signal_name or "signal")


#: Signals that trigger a graceful shutdown (SIGTERM absent on some
#: platforms; filtered at install time).
_GRACEFUL_SIGNALS = ("SIGINT", "SIGTERM")


@contextlib.contextmanager
def trap_shutdown(flag: ShutdownFlag):
    """Install graceful SIGINT/SIGTERM handlers for the duration.

    Only installable from the main thread of the main interpreter (a
    Python constraint); elsewhere this is a no-op and the default
    KeyboardInterrupt path applies.
    """
    installed: list[tuple[int, object]] = []

    def handle(signum, frame):
        name = signal.Signals(signum).name
        if flag.is_set():
            # Second signal: stop being polite.
            raise KeyboardInterrupt
        flag.trip(name)
        print(
            f"{name} received: finishing in-flight shards, flushing "
            "checkpoints ... (send again to abort immediately)",
            file=sys.stderr,
        )

    if threading.current_thread() is threading.main_thread():
        for name in _GRACEFUL_SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                previous = signal.signal(signum, handle)
            except (ValueError, OSError):  # pragma: no cover - platform quirk
                continue
            installed.append((signum, previous))
    try:
        yield flag
    finally:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
