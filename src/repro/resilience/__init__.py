"""repro.resilience: checkpointed, resumable runs with worker supervision.

Three cooperating pieces turn the measure→infer engine crash-safe:

* :mod:`repro.resilience.journal` — append-only JSONL run journals and
  the :class:`RunRecord` parser behind ``repro resume``;
* :mod:`repro.resilience.supervisor` — per-shard worker processes with
  crash detection, hung-shard watchdog, bounded restarts, and
  poison-shard quarantine;
* :mod:`repro.resilience.signals` / :mod:`repro.resilience.runner` —
  graceful SIGINT/SIGTERM shutdown and the :class:`RunContext` bundle
  (journal + shutdown flag + write-through shard checkpoints) the CLI
  threads through the execution layer.

None of this is active by default: without ``--run-dir``/``--runs-root``
(or worker-fault channels), runs take the exact pre-existing code path.
"""

from .journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA_VERSION,
    MANIFEST_NAME,
    PARTIAL_MANIFEST_NAME,
    RUNS_ENV,
    RunJournal,
    RunRecord,
    config_digest,
    new_run_id,
    read_events,
    runs_root,
)
from .runner import (
    BoundShardCheckpoint,
    ResumeError,
    RunContext,
    ShardCheckpointer,
    load_record,
    verify_resume_digest,
)
from .signals import RunInterrupted, ShutdownFlag, trap_shutdown
from .supervisor import (
    EXIT_INJECTED_CRASH,
    GatherSupervision,
    ProcessShardExecutor,
    ShardQuarantined,
    SupervisorOptions,
    ThreadShardExecutor,
    supervised_gather,
)

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "PARTIAL_MANIFEST_NAME",
    "RUNS_ENV",
    "RunJournal",
    "RunRecord",
    "config_digest",
    "new_run_id",
    "read_events",
    "runs_root",
    "BoundShardCheckpoint",
    "ResumeError",
    "RunContext",
    "ShardCheckpointer",
    "load_record",
    "verify_resume_digest",
    "RunInterrupted",
    "ShutdownFlag",
    "trap_shutdown",
    "EXIT_INJECTED_CRASH",
    "GatherSupervision",
    "ProcessShardExecutor",
    "ShardQuarantined",
    "SupervisorOptions",
    "ThreadShardExecutor",
    "supervised_gather",
]
