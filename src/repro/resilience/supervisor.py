"""Worker supervision: crash-, hang-, and poison-aware shard execution.

The plain engine path (``engine.parallel``) optimizes the happy case: a
``ProcessPoolExecutor`` that assumes every worker returns.  At campaign
scale that assumption fails routinely — a worker segfaults, the OOM
killer picks one off, a shard wedges behind a pathological target — and
a pool turns any of those into either a deadlock or an opaque
``BrokenProcessPool`` that throws away every completed shard.

This module replaces the pool with a supervisor when resilience is
active:

* each shard runs in its own forked ``multiprocessing.Process`` with a
  private result pipe, so one dying worker cannot corrupt its siblings'
  channels;
* a monitor loop detects crashed workers (nonzero/killed exit without a
  result) and reassigns their shards under a bounded restart budget;
* an optional per-shard deadline turns stragglers into detected hangs:
  the worker is killed and the shard reassigned, with the same budget;
* a shard that keeps killing workers is **quarantined** — the run fails
  fast with a diagnosis naming the shard and every failure it caused,
  instead of hanging or silently dropping data;
* completed shards are checkpointed write-through (via ``repro.store``)
  and journaled the moment they are accepted, so a later SIGKILL of the
  parent loses at most in-flight work;
* duplicate completions (a "hung" worker finishing right as its
  replacement does) are accepted once: results by first arrival, stats
  deltas deduplicated via :meth:`EngineStats.merge_once`.

Results are still merged in shard order, so supervised gathers remain
bit-identical to serial ones — supervision changes *how* work executes,
never *what* it computes.

The deterministic ``worker.crash`` / ``worker.hang`` fault channels
(:mod:`repro.faults`) inject these failures on purpose: a roll keyed on
``(seed, channel, corpus:snapshot, shard, attempt)`` decides whether a
given attempt dies, so kill/resume differential tests replay exactly.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import concurrent.futures
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..engine.executor import ShardExecutor, register_executor, resolve_executor
from ..engine.stats import STATS
from ..faults.inject import fault_roll
from ..obs import trace
from ..obs.log import get_logger
from .signals import RunInterrupted, ShutdownFlag

#: Exit code an injected worker.crash uses (distinguishable in journals).
EXIT_INJECTED_CRASH = 113
#: Exit code a worker uses after shipping an exception report.
EXIT_WORKER_ERROR = 114

#: Upper bound on how long an injected hang sleeps (keeps undetected
#: hangs — no deadline configured — from stalling a run forever).
MAX_HANG_SLEEP = 30.0

log = get_logger("resilience")

# Set immediately before forking supervised workers; children inherit it.
_FORK_GATHERER = None

# Unique id per supervised gather call — the dedup namespace for
# shard-assignment stats tokens (two gathers may reuse shard indices).
_GATHER_SEQ = itertools.count(1)


@dataclass(frozen=True)
class SupervisorOptions:
    """Budgets for the supervised gather path."""

    deadline: float | None = None   # per-shard seconds; None = no watchdog
    max_restarts: int = 2           # reassignments per shard before quarantine
    poll_interval: float = 0.02     # monitor loop cadence (seconds)

    @property
    def max_attempts(self) -> int:
        return self.max_restarts + 1


@dataclass(frozen=True)
class GatherSupervision:
    """Everything a supervised gather needs beyond the target list."""

    options: SupervisorOptions = field(default_factory=SupervisorOptions)
    plan: object | None = None            # FaultPlan with worker channels, or None
    scope: tuple[str, int] = ("", -1)     # (corpus, snapshot) for rolls/journal
    checkpoint_factory: Callable[[int], object] | None = None  # shard_count -> bound
    journal: object | None = None         # RunJournal, or None
    shutdown: ShutdownFlag | None = None
    #: A repro.dist.DistCoordinator — when set, shards are leased to
    #: remote worker hosts instead of local processes/threads.
    dist: object | None = None


class ShardQuarantined(RuntimeError):
    """A shard exhausted its restart budget and was isolated.

    Carries the precise diagnosis: which shard, over which corpus and
    snapshot, and every failure it caused.  The CLI surfaces this as the
    run's terminal error — a poison shard fails the run loudly instead
    of hanging it or silently dropping its domains.
    """

    def __init__(
        self, corpus: str, snapshot: int, shard_index: int,
        attempts: int, reasons: Sequence[str],
    ):
        self.corpus = corpus
        self.snapshot = snapshot
        self.shard_index = shard_index
        self.attempts = attempts
        self.reasons = list(reasons)
        detail = "; ".join(self.reasons) or "no failure detail recorded"
        super().__init__(
            f"poison shard quarantined: {corpus}[s{snapshot}] shard "
            f"#{shard_index} failed {attempts} attempt(s) — {detail}"
        )


def _roll(plan, channel: str, scope_key: str, index: int, attempt: int) -> bool:
    """One deterministic worker-fault decision (pure, no counters)."""
    if plan is None:
        return False
    rate = getattr(plan, channel.replace(".", "_"), 0.0)
    if rate <= 0.0:
        return False
    return fault_roll(plan.seed, channel, scope_key, index, attempt) < rate


def _hang_sleep(options: SupervisorOptions) -> float:
    if options.deadline is not None and options.deadline > 0:
        return min(options.deadline * 4.0, MAX_HANG_SLEEP)
    return min(2.0, MAX_HANG_SLEEP)


def _process_worker(
    conn, index: int, shard, snapshot_index: int, attempt: int,
    scope_key: str, plan, hang_sleep: float,
) -> None:
    """Forked child: gather one shard, ship (result, stats, spans) back.

    Injected faults fire before any work, so a crashed attempt wastes no
    gathering and the retry recomputes the identical shard.
    """
    try:
        if _roll(plan, "worker.hang", scope_key, index, attempt):
            time.sleep(hang_sleep)
        if _roll(plan, "worker.crash", scope_key, index, attempt):
            conn.close()
            os._exit(EXIT_INJECTED_CRASH)
        baseline = STATS.snapshot()
        mark = trace.mark()
        started = time.perf_counter()
        with trace.span(
            f"gather.shard{index}", cat="shard", targets=len(shard), attempt=attempt
        ):
            result = _FORK_GATHERER.gather(shard, snapshot_index)
        elapsed = time.perf_counter() - started
        conn.send(
            ("ok", index, attempt, result, elapsed,
             STATS.delta_since(baseline), trace.drain_new(mark))
        )
        conn.close()
    except BaseException:  # ship the traceback; never hang the parent
        import traceback as tb

        try:
            conn.send(("error", index, attempt, tb.format_exc(limit=20)))
            conn.close()
        finally:
            os._exit(EXIT_WORKER_ERROR)


class _ShardLedger:
    """Book-keeping shared by both executor flavours of one gather."""

    def __init__(self, supervision: GatherSupervision, shard_count: int, checkpoint):
        self.supervision = supervision
        self.corpus, self.snapshot = supervision.scope
        self.scope_key = f"{self.corpus}:{self.snapshot}"
        self.checkpoint = checkpoint
        self.gather_id = next(_GATHER_SEQ)
        self.results: dict[int, object] = {}
        self.timings: dict[int, float] = {}
        self.failures: dict[int, list[str]] = {}
        self.shard_count = shard_count

    # -- journal helpers -------------------------------------------------

    def journal(self, event: str, **fields) -> None:
        if self.supervision.journal is not None:
            self.supervision.journal.append(
                event, corpus=self.corpus, snapshot=self.snapshot, **fields
            )

    # -- lifecycle -------------------------------------------------------

    def restore(self, index: int) -> bool:
        """Load a checkpointed shard result; True when restored."""
        if self.checkpoint is None:
            return False
        result = self.checkpoint.load(index)
        if result is None:
            return False
        self.results[index] = result
        STATS.inc("resilience.shard.restored")
        self.journal("shard.restored", shard=index)
        return True

    def accept(self, index: int, attempt: int, result, elapsed: float,
               stats_delta: dict | None = None, events=None) -> bool:
        """Record one shard completion; False for a duplicate arrival."""
        if index in self.results:
            STATS.inc("resilience.shard.duplicate")
            return False
        self.results[index] = result
        self.timings[index] = elapsed
        if stats_delta is not None:
            STATS.merge_once(f"g{self.gather_id}:{index}", stats_delta)
        if events:
            trace.adopt(events)
        STATS.inc("resilience.shard.completed")
        if self.checkpoint is not None:
            self.checkpoint.save(index, result)
            STATS.inc("resilience.shard.checkpointed")
        self.journal(
            "shard.done", shard=index, attempt=attempt, seconds=round(elapsed, 4)
        )
        return True

    def fail(self, index: int, attempt: int, kind: str, reason: str) -> None:
        """Record one failed attempt; raises once the budget is spent."""
        options = self.supervision.options
        self.failures.setdefault(index, []).append(reason)
        STATS.inc(f"resilience.worker.{kind}")
        self.journal(f"shard.{kind}", shard=index, attempt=attempt, reason=reason)
        log.warning(
            "resilience.shard_failure",
            extra={"fields": {
                "corpus": self.corpus, "snapshot": self.snapshot,
                "shard": index, "attempt": attempt, "kind": kind,
            }},
        )
        if attempt >= options.max_attempts:
            STATS.inc("resilience.shard.quarantined")
            self.journal(
                "shard.quarantined", shard=index, attempts=attempt,
                reasons=self.failures[index],
            )
            raise ShardQuarantined(
                self.corpus, self.snapshot, index, attempt, self.failures[index]
            )
        STATS.inc("resilience.worker.restart")

    def raise_if_shutdown(self) -> None:
        flag = self.supervision.shutdown
        if flag is not None:
            flag.raise_if_set()


def supervised_gather(
    gatherer,
    shards: Sequence[list],
    snapshot_index: int,
    *,
    executor: "str | ShardExecutor",
    supervision: GatherSupervision,
) -> tuple[list, list[float]]:
    """Gather *shards* under supervision; returns (results, timings).

    Results come back in shard order (the bit-identical merge contract);
    timings cover only shards actually gathered this call — restored
    checkpoints do not distort imbalance statistics.

    *executor* is a registry name (``"process"``/``"thread"``, or
    ``"dist"`` once :mod:`repro.dist` is imported) or a ready
    :class:`~repro.engine.executor.ShardExecutor` instance; a
    supervision bundle carrying a dist coordinator overrides it.
    """
    checkpoint = None
    if supervision.checkpoint_factory is not None:
        checkpoint = supervision.checkpoint_factory(len(shards))
    ledger = _ShardLedger(supervision, len(shards), checkpoint)
    ledger.raise_if_shutdown()
    pending = [
        (index, shard)
        for index, shard in enumerate(shards)
        if not ledger.restore(index)
    ]
    if pending:
        if supervision.dist is not None:
            backend = supervision.dist.executor()
        else:
            backend = resolve_executor(executor)
        backend.run(gatherer, pending, snapshot_index, ledger)
    ordered = [ledger.results[index] for index in range(len(shards))]
    timings = [ledger.timings[index] for index in sorted(ledger.timings)]
    return ordered, timings


# -- process executor ----------------------------------------------------


def _run_process(gatherer, pending, snapshot_index, ledger: _ShardLedger) -> None:
    global _FORK_GATHERER
    supervision = ledger.supervision
    options = supervision.options
    context = multiprocessing.get_context("fork")
    hang_sleep = _hang_sleep(options)
    shard_of = dict(pending)
    attempts = {index: 0 for index, _ in pending}
    active: dict[int, tuple] = {}  # index -> (proc, conn, attempt, started)

    def launch(index: int) -> None:
        attempts[index] += 1
        attempt = attempts[index]
        parent_conn, child_conn = context.Pipe(duplex=False)
        proc = context.Process(
            target=_process_worker,
            args=(child_conn, index, shard_of[index], snapshot_index, attempt,
                  ledger.scope_key, supervision.plan, hang_sleep),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        active[index] = (proc, parent_conn, attempt, time.perf_counter())
        ledger.journal("shard.start", shard=index, attempt=attempt)

    def retire(index: int, kill: bool = False) -> None:
        proc, conn, _attempt, _started = active.pop(index)
        if kill and proc.is_alive():
            proc.kill()
        proc.join()
        try:
            conn.close()
        except OSError:
            pass

    def drain(index: int):
        """A worker's message if one is ready, else None."""
        _proc, conn, _attempt, _started = active[index]
        if not conn.poll():
            return None
        try:
            return conn.recv()
        except (EOFError, OSError):
            return ()  # died mid-send: poll() said readable, recv failed

    _FORK_GATHERER = gatherer
    try:
        for index, _shard in pending:
            launch(index)
        while active:
            if supervision.shutdown is not None and supervision.shutdown.is_set():
                _flush_on_shutdown(active, ledger, retire, drain)
                raise RunInterrupted(supervision.shutdown.signal_name or "signal")
            progressed = False
            for index in list(active):
                proc, conn, attempt, started = active[index]
                message = drain(index)
                if message is not None and message != ():
                    progressed = True
                    if message[0] == "ok":
                        _tag, _idx, m_attempt, result, elapsed, delta, events = message
                        ledger.accept(index, m_attempt, result, elapsed, delta, events)
                        retire(index)
                    else:  # ("error", index, attempt, traceback)
                        retire(index, kill=True)
                        ledger.fail(
                            index, attempt, "crash",
                            f"worker exception (attempt {attempt}): "
                            f"{message[3].strip().splitlines()[-1]}",
                        )
                        launch(index)
                    continue
                if message == ():  # pipe hit EOF: the worker died on us
                    progressed = True
                    proc.join(timeout=5.0)
                    exitcode = proc.exitcode
                    retire(index, kill=True)
                    ledger.fail(
                        index, attempt, "crash",
                        f"worker crashed (exit {exitcode}, attempt {attempt})",
                    )
                    launch(index)
                    continue
                if not proc.is_alive():
                    if conn.poll():
                        continue  # result landed between checks; next pass
                    progressed = True
                    exitcode = proc.exitcode
                    retire(index)
                    ledger.fail(
                        index, attempt, "crash",
                        f"worker crashed (exit {exitcode}, attempt {attempt})",
                    )
                    launch(index)
                    continue
                if (
                    options.deadline is not None
                    and time.perf_counter() - started > options.deadline
                ):
                    progressed = True
                    retire(index, kill=True)
                    ledger.fail(
                        index, attempt, "hung",
                        f"worker exceeded {options.deadline:g}s deadline "
                        f"(attempt {attempt})",
                    )
                    launch(index)
            if not progressed:
                time.sleep(options.poll_interval)
    finally:
        _FORK_GATHERER = None
        for index in list(active):
            retire(index, kill=True)


def _flush_on_shutdown(active, ledger, retire, drain) -> None:
    """Graceful interrupt: accept delivered results, kill the rest.

    Every result that already reached the parent is checkpointed before
    the workers die, so the printed resume command skips that work.
    """
    for index in list(active):
        _proc, _conn, attempt, _started = active[index]
        message = drain(index)
        if message and message[0] == "ok":
            _tag, _idx, m_attempt, result, elapsed, delta, events = message
            ledger.accept(index, m_attempt, result, elapsed, delta, events)
        retire(index, kill=True)


# -- thread executor -----------------------------------------------------


def _run_thread(gatherer, pending, snapshot_index, ledger: _ShardLedger) -> None:
    """Thread-flavoured supervision: restarts are in-place retries.

    Threads cannot be killed, so injected hangs are cooperative (the
    attempt sleeps, is counted as hung, and retries) and a genuine hang
    cannot be preempted — the process executor is the full story, this
    keeps crash/restart/quarantine and checkpoint semantics identical
    where fork is unavailable.
    """
    supervision = ledger.supervision
    options = supervision.options
    hang_sleep = _hang_sleep(options)

    def run_one(index: int, shard) -> None:
        for attempt in range(1, options.max_attempts + 1):
            ledger.raise_if_shutdown()
            ledger.journal("shard.start", shard=index, attempt=attempt)
            if _roll(supervision.plan, "worker.hang", ledger.scope_key, index, attempt):
                time.sleep(min(hang_sleep, options.deadline or hang_sleep))
                ledger.fail(
                    index, attempt, "hung",
                    f"worker hung past deadline (attempt {attempt})",
                )
                continue
            if _roll(supervision.plan, "worker.crash", ledger.scope_key, index, attempt):
                ledger.fail(
                    index, attempt, "crash",
                    f"injected worker crash (attempt {attempt})",
                )
                continue
            started = time.perf_counter()
            try:
                with trace.span(
                    f"gather.shard{index}", cat="shard",
                    targets=len(shard), attempt=attempt,
                ):
                    result = gatherer.gather(shard, snapshot_index)
            except Exception as error:
                ledger.fail(
                    index, attempt, "crash",
                    f"worker exception (attempt {attempt}): {error!r}",
                )
                continue
            ledger.accept(index, attempt, result, time.perf_counter() - started)
            return

    with concurrent.futures.ThreadPoolExecutor(max_workers=len(pending)) as pool:
        futures = [pool.submit(run_one, index, shard) for index, shard in pending]
        errors = []
        for future in futures:
            try:
                future.result()
            except (ShardQuarantined, RunInterrupted) as error:
                errors.append(error)
    if errors:
        # Quarantine outranks interruption: it carries the diagnosis.
        for error in errors:
            if isinstance(error, ShardQuarantined):
                raise error
        raise errors[0]


# -- registry ------------------------------------------------------------


class ProcessShardExecutor(ShardExecutor):
    """One forked process per shard with crash/hang watchdogs."""

    name = "process"

    def run(self, gatherer, pending, snapshot_index, ledger) -> None:
        _run_process(gatherer, pending, snapshot_index, ledger)


class ThreadShardExecutor(ShardExecutor):
    """Thread-pool supervision for platforms without fork."""

    name = "thread"

    def run(self, gatherer, pending, snapshot_index, ledger) -> None:
        _run_thread(gatherer, pending, snapshot_index, ledger)


register_executor("process", ProcessShardExecutor)
register_executor("thread", ThreadShardExecutor)
