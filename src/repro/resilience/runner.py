"""Run context plumbing: checkpoints, journals, and resume preparation.

A :class:`RunContext` is the per-run bundle the CLI threads through the
execution layer when resilience is active: the append-only journal, the
shutdown flag, and a :class:`ShardCheckpointer` that write-through-saves
completed shards into ``repro.store`` under per-shard provenance keys.

Resume never replays computation from the journal — it replays *intent*.
``prepare_resume`` rebuilds the original argument namespace from the
``run.start`` event, verifies the config digest (a journal from a
different world model fails loudly), and the run then re-executes from
the top: completed snapshots short-circuit through their normal store
keys, partial gathers through shard checkpoints, and only genuinely
missing work is recomputed.  Because warm and cold runs are already
pinned byte-identical, a resumed run's stdout and artifacts match an
uninterrupted run's exactly.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from .journal import RunJournal, RunRecord, config_digest
from .signals import ShutdownFlag


class ResumeError(Exception):
    """A journal cannot safely be resumed (missing, corrupt, or drifted)."""


@dataclasses.dataclass
class ShardCheckpointer:
    """Factory for per-(corpus, snapshot, shard-count) checkpoint bindings."""

    store: object           # ArtifactStore
    config: object          # WorldConfig
    faults_key: str | None  # plan.store_key() of the run, or None

    def bind(
        self, dataset, snapshot_index: int, shard_count: int,
        batch: tuple[int, int, int] | None = None,
    ) -> "BoundShardCheckpoint":
        return BoundShardCheckpoint(
            store=self.store,
            config=self.config,
            dataset=dataset,
            snapshot_index=snapshot_index,
            shard_count=shard_count,
            faults_key=self.faults_key,
            batch=batch,
        )


@dataclasses.dataclass
class BoundShardCheckpoint:
    """Checkpoint IO for the shards of one (corpus, snapshot) gather."""

    store: object
    config: object
    dataset: object
    snapshot_index: int
    shard_count: int
    faults_key: str | None
    #: Batch-plan key ``(index, count, size)`` of a streamed gather, or
    #: None — checkpoints only resume runs with the same batch plan.
    batch: tuple[int, int, int] | None = None

    def load(self, index: int):
        return self.store.load_shard(
            self.config, self.dataset, self.snapshot_index,
            index, self.shard_count, self.faults_key, batch=self.batch,
        )

    def save(self, index: int, measurements) -> None:
        self.store.save_shard(
            self.config, self.dataset, self.snapshot_index,
            index, self.shard_count, measurements, self.faults_key,
            batch=self.batch,
        )

    def discard_all(self) -> None:
        """Drop every shard checkpoint (the full snapshot now persists)."""
        for index in range(self.shard_count):
            self.store.discard_shard(
                self.config, self.dataset, self.snapshot_index,
                index, self.shard_count, self.faults_key, batch=self.batch,
            )


@dataclasses.dataclass
class RunContext:
    """Everything the execution layer needs for one resilient run."""

    run_id: str
    run_dir: Path
    journal: RunJournal
    shutdown: ShutdownFlag
    checkpoints: ShardCheckpointer | None = None
    resumed_from: RunRecord | None = None
    runs_root: Path | None = None  # set when addressed by run-id

    @property
    def resume_count(self) -> int:
        if self.resumed_from is None:
            return 0
        return self.resumed_from.resume_count + 1

    def resume_command(self) -> str:
        """The exact CLI invocation that continues this run."""
        if self.runs_root is not None:
            return (
                f"python -m repro resume {self.run_id} "
                f"--runs-root {self.runs_root}"
            )
        return f"python -m repro resume --run-dir {self.run_dir}"

    def describe(self, status: str) -> dict:
        """The manifest's ``resilience`` section."""
        section = {
            "run_id": self.run_id,
            "run_dir": str(self.run_dir),
            "status": status,
            "resume_count": self.resume_count,
        }
        if self.resumed_from is not None:
            section["lineage"] = self.resumed_from.describe()
        return section


def verify_resume_digest(record: RunRecord, config, faults_spec: str | None) -> None:
    """Fail loudly when a journal's world no longer matches this build."""
    expected = record.config_digest
    if expected is None:
        raise ResumeError(
            f"journal {record.run_dir} has no config digest; cannot verify resume"
        )
    actual = config_digest(config, faults_spec)
    if actual != expected:
        raise ResumeError(
            f"config digest mismatch for run {record.run_id}: journal has "
            f"{expected[:12]}…, this build derives {actual[:12]}… — the world "
            "model or fault plan changed since the run started; re-run from "
            "scratch instead of resuming"
        )


def load_record(run_dir: str | Path) -> RunRecord:
    """Parse a run directory's journal, normalizing errors to ResumeError."""
    try:
        return RunRecord.from_dir(run_dir)
    except FileNotFoundError as error:
        raise ResumeError(str(error)) from error
    except ValueError as error:
        raise ResumeError(f"unreadable journal: {error}") from error
