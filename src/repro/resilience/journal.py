"""Append-only run journals: the crash-safe record of one resilient run.

Every resilient run owns a directory holding ``journal.jsonl`` — one JSON
object per line, written append-only and flushed per event, so a SIGKILL
at any instant loses at most the final partial line (which the reader
tolerates).  The first event (``run.start``) pins everything a resume
needs: the run id, the full CLI argument namespace, a digest of the world
config + fault plan, and the schema version.  Subsequent events record
per-shard lifecycle (start/done/crash/hung/quarantined/restored),
snapshot and experiment completions, resumes, and the terminal state.

``repro resume`` replays the journal through :class:`RunRecord`, verifies
the config digest still matches, and re-executes the run — completed
artifacts short-circuit through ``repro.store`` (whole snapshots through
the normal keys, partial gathers through per-shard checkpoint keys), so
only missing work is recomputed and the final stdout/artifacts are
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import secrets
import threading
import time
from pathlib import Path

JOURNAL_SCHEMA_VERSION = 1
JOURNAL_NAME = "journal.jsonl"
PARTIAL_MANIFEST_NAME = "manifest.partial.json"
MANIFEST_NAME = "manifest.json"
RUNS_ENV = "REPRO_RUNS"

#: Events that must survive a crash immediately after being appended.
#: The ingest WAL pair is here by construction: ``ingest.wal.begin`` is
#: the intent record that recovery keys on (it must hit the disk before
#: serving state mutates), and a lost ``ingest.wal.commit`` would make
#: recovery replay work that already completed — harmless (replay is
#: idempotent and byte-identical) but wasteful.
_DURABLE_EVENTS = {
    "run.start",
    "run.resume",
    "run.interrupted",
    "run.complete",
    "run.failed",
    "shard.done",
    "shard.quarantined",
    "snapshot.done",
    "host.lost",
    "ingest.wal.begin",
    "ingest.wal.commit",
    "ingest.wal.failed",
    "serve.worker.lost",
    "serve.request.quarantined",
}


def new_run_id() -> str:
    """A fresh run id: sortable timestamp plus a short random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"r{stamp}-{secrets.token_hex(3)}"


def config_digest(config, faults_spec: str | None) -> str:
    """Digest pinning the world config and fault plan of a run.

    Resume verifies this digest before continuing: a journal from a
    different world (or a journal whose args were edited by hand) must
    fail loudly instead of silently mixing two runs' artifacts.
    """
    body = json.dumps(
        {
            "world": dataclasses.asdict(config),
            "faults": faults_spec,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only JSONL event log for one run directory.

    Thread-safe: supervised gathers append shard events from worker
    monitor threads.  Durable events are fsynced so the journal survives
    a SIGKILL'd parent.
    """

    def __init__(self, run_dir: str | os.PathLike, run_id: str):
        self.run_dir = Path(run_dir)
        self.run_id = run_id
        self.path = self.run_dir / JOURNAL_NAME
        self._lock = threading.Lock()
        self._handle = None

    def _ensure_open(self):
        if self._handle is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: str, **fields) -> dict:
        """Append one event line (crash-safe, returns the record)."""
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
            "run": self.run_id,
            "ts": round(time.time(), 6),
            **fields,
        }
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            handle = self._ensure_open()
            handle.write(line + "\n")
            handle.flush()
            if event in _DURABLE_EVENTS:
                try:
                    os.fsync(handle.fileno())
                except OSError:
                    pass
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_events(path: str | os.PathLike) -> list[dict]:
    """Every parseable event in a journal, tolerating a torn final line.

    A parent killed mid-append leaves at most one partial trailing line;
    that line is dropped.  A corrupt line *before* valid ones means the
    file is not an append-only journal — that raises.
    """
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if number == len(lines):
                break  # torn final line from a killed writer
            raise ValueError(f"{path}:{number}: corrupt journal line")
        if not isinstance(record, dict) or "event" not in record:
            raise ValueError(f"{path}:{number}: not a journal event")
        events.append(record)
    return events


@dataclasses.dataclass
class RunRecord:
    """A parsed journal: what one run did and where it stopped."""

    run_dir: Path
    run_id: str
    start: dict                      # the run.start event
    events: list[dict]
    resume_count: int = 0
    interrupted: bool = False
    completed: bool = False
    failed: bool = False
    experiments_done: tuple[str, ...] = ()
    snapshots_done: int = 0
    shards_done: int = 0
    restarts: int = 0
    quarantined: tuple[str, ...] = ()
    hosts_seen: tuple[str, ...] = ()
    hosts_lost: int = 0
    shards_stolen: int = 0

    @classmethod
    def from_dir(cls, run_dir: str | os.PathLike) -> "RunRecord":
        run_dir = Path(run_dir)
        path = run_dir / JOURNAL_NAME
        if not path.is_file():
            raise FileNotFoundError(f"no journal at {path}")
        events = read_events(path)
        if not events or events[0].get("event") != "run.start":
            raise ValueError(f"{path}: journal does not begin with run.start")
        start = events[0]
        record = cls(
            run_dir=run_dir,
            run_id=str(start.get("run", "")),
            start=start,
            events=events,
        )
        experiments: list[str] = []
        quarantined: list[str] = []
        hosts: list[str] = []
        for event in events:
            kind = event["event"]
            if kind == "run.resume":
                record.resume_count += 1
                record.interrupted = False
                record.failed = False
            elif kind == "run.interrupted":
                record.interrupted = True
            elif kind == "run.complete":
                record.completed = True
            elif kind == "run.failed":
                record.failed = True
            elif kind == "experiment.done":
                experiments.append(event.get("experiment", "?"))
            elif kind == "snapshot.done":
                record.snapshots_done += 1
            elif kind == "shard.done":
                record.shards_done += 1
            elif kind in ("shard.crash", "shard.hung", "shard.lost"):
                record.restarts += 1
            elif kind == "shard.quarantined":
                quarantined.append(
                    f"{event.get('corpus', '?')}[s{event.get('snapshot', '?')}]"
                    f"#{event.get('shard', '?')}"
                )
            elif kind == "host.join":
                host = str(event.get("host", "?"))
                if host not in hosts:
                    hosts.append(host)
            elif kind == "host.lost":
                record.hosts_lost += 1
            elif kind == "shard.stolen":
                record.shards_stolen += 1
        record.experiments_done = tuple(experiments)
        record.quarantined = tuple(quarantined)
        record.hosts_seen = tuple(hosts)
        return record

    @property
    def args(self) -> dict:
        """The original CLI argument namespace, as stored by run.start."""
        return dict(self.start.get("args", {}))

    @property
    def config_digest(self) -> str | None:
        return self.start.get("config_digest")

    def describe(self) -> dict:
        """Manifest-friendly lineage summary of this record."""
        return {
            "run_id": self.run_id,
            "run_dir": str(self.run_dir),
            "resume_count": self.resume_count,
            "experiments_done": list(self.experiments_done),
            "snapshots_done": self.snapshots_done,
            "shards_done": self.shards_done,
            "restarts": self.restarts,
            "quarantined": list(self.quarantined),
            "hosts_seen": list(self.hosts_seen),
            "hosts_lost": self.hosts_lost,
            "shards_stolen": self.shards_stolen,
        }


def runs_root(explicit: str | None = None) -> Path | None:
    """The directory run-ids live under (``--runs-root`` or $REPRO_RUNS)."""
    raw = explicit or os.environ.get(RUNS_ENV)
    return Path(raw) if raw else None
