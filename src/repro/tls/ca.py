"""Certificate authorities and trust evaluation.

The methodology only asks one question of a certificate: *is it trusted by a
major browser?* (Section 3.2.2 — "We consider a certificate valid if it is
trusted by a major browser").  We model a browser root store as a set of
trusted issuer names; a :class:`CertificateAuthority` issues leaf certs
under its name, and :class:`TrustStore.validate` reproduces the valid /
self-signed / expired / untrusted-issuer distinctions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from datetime import date, timedelta

from .cert import Certificate

_serial_counter = itertools.count(1)


def reset_serials() -> None:
    """Restart leaf-certificate serial allocation at 1.

    Serials are allocated from a process-global counter, so a world built
    *after* another world in the same process gets different serials for
    otherwise-identical certificates.  Differential harnesses that compare
    snapshot encodings across in-process world builds (the chaos sweep,
    the golden store tests) reset the counter before each build to make
    the comparison byte-exact; a single world build never needs this.
    """
    global _serial_counter
    _serial_counter = itertools.count(1)


class ValidationStatus(enum.Enum):
    """Outcome of chain validation against a trust store."""

    VALID = "valid"
    SELF_SIGNED = "self_signed"
    EXPIRED = "expired"
    UNTRUSTED_ISSUER = "untrusted_issuer"

    @property
    def is_valid(self) -> bool:
        return self is ValidationStatus.VALID


@dataclass
class CertificateAuthority:
    """A CA that can issue leaf certificates under its name."""

    name: str

    def issue(
        self,
        subject_cn: str,
        sans: tuple[str, ...] | list[str] = (),
        not_before: date = date(2016, 1, 1),
        lifetime_days: int = 365 * 15,
    ) -> Certificate:
        return Certificate(
            subject_cn=subject_cn,
            sans=tuple(sans),
            issuer=self.name,
            self_signed=False,
            not_before=not_before,
            not_after=not_before + timedelta(days=lifetime_days),
            serial=next(_serial_counter),
        )


def self_signed(
    subject_cn: str,
    sans: tuple[str, ...] | list[str] = (),
    not_before: date = date(2016, 1, 1),
) -> Certificate:
    """Create a self-signed certificate (issuer == subject)."""
    return Certificate(
        subject_cn=subject_cn,
        sans=tuple(sans),
        issuer=subject_cn,
        self_signed=True,
        not_before=not_before,
        serial=next(_serial_counter),
    )


DEFAULT_TRUSTED_CAS: tuple[str, ...] = (
    "Simulated CA",
    "Let's Encrypt R3 (simulated)",
    "DigiCert (simulated)",
    "GlobalSign (simulated)",
)


@dataclass
class TrustStore:
    """A browser-style root store: a set of trusted issuer names."""

    trusted_issuers: set[str] = field(
        default_factory=lambda: set(DEFAULT_TRUSTED_CAS)
    )

    def trust(self, ca: CertificateAuthority | str) -> None:
        self.trusted_issuers.add(ca.name if isinstance(ca, CertificateAuthority) else ca)

    def validate(self, cert: Certificate, on: date | None = None) -> ValidationStatus:
        """Classify *cert*; time validity is checked when *on* is given."""
        if cert.self_signed:
            return ValidationStatus.SELF_SIGNED
        if on is not None and not cert.is_time_valid(on):
            return ValidationStatus.EXPIRED
        if cert.issuer not in self.trusted_issuers:
            return ValidationStatus.UNTRUSTED_ISSUER
        return ValidationStatus.VALID

    def is_valid(self, cert: Certificate, on: date | None = None) -> bool:
        return self.validate(cert, on).is_valid
