"""TLS certificate substrate: certificates, CAs, trust evaluation."""

from .ca import (
    DEFAULT_TRUSTED_CAS,
    CertificateAuthority,
    TrustStore,
    ValidationStatus,
    self_signed,
)
from .cert import Certificate

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "DEFAULT_TRUSTED_CAS",
    "TrustStore",
    "ValidationStatus",
    "self_signed",
]
