"""TLS certificates as observed in STARTTLS handshakes.

Certificates are modeled at exactly the fidelity the methodology consumes
(Section 2.3): a subject Common Name, a set of Subject Alternative Names,
an issuer, a validity window, and whether the issuing CA chains to a trusted
root.  Wildcard matching follows RFC 6125 (single left-most label only).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import date
from functools import lru_cache

from ..dnscore.names import is_valid_hostname, normalize


@lru_cache(maxsize=4096)
def _valid_dns_names(names: tuple[str, ...]) -> tuple[str, ...]:
    """Hostname-shaped subset of *names*, memoized by the name tuple.

    Certificate grouping re-validates the same SAN lists on every
    snapshot ingest; the regex walk is pure, so one bounded cache serves
    every Certificate instance carrying the same names.
    """
    valid = []
    for name in names:
        bare = name[2:] if name.startswith("*.") else name
        if is_valid_hostname(bare) and "." in bare:
            valid.append(name)
    return tuple(valid)


@dataclass(frozen=True)
class Certificate:
    """An X.509 leaf certificate, reduced to measurement-relevant fields.

    ``serial`` exists so two certificates with identical names remain
    distinct objects (re-issued certs, per-host duplicates).
    """

    subject_cn: str
    sans: tuple[str, ...] = ()
    issuer: str = "Simulated CA"
    self_signed: bool = False
    not_before: date = date(2016, 1, 1)
    not_after: date = date(2031, 1, 1)
    serial: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject_cn", self._normalize_name(self.subject_cn))
        object.__setattr__(
            self, "sans", tuple(self._normalize_name(san) for san in self.sans)
        )
        if self.not_after < self.not_before:
            raise ValueError("certificate validity window is inverted")

    @staticmethod
    def _normalize_name(name: str) -> str:
        name = name.strip().lower()
        if name.endswith(".") and len(name) > 1:
            name = name[:-1]
        return name

    def names(self) -> tuple[str, ...]:
        """All FQDN-shaped names on the certificate (CN first, then SANs).

        Per RFC 6125 the SANs are authoritative when present, but the
        paper's grouping step (Section 3.2.1) considers "FQDNs that appear
        on a certificate's Subject CN and SANs", so we expose both.
        """
        cached = self.__dict__.get("_names")
        if cached is not None:
            return cached
        seen: list[str] = []
        for name in (self.subject_cn, *self.sans):
            if name and name not in seen:
                seen.append(name)
        result = tuple(seen)
        object.__setattr__(self, "_names", result)
        return result

    def dns_names(self) -> tuple[str, ...]:
        """Names that are syntactically valid hostnames (incl. wildcards)."""
        return _valid_dns_names(self.names())

    def matches(self, hostname: str) -> bool:
        """RFC 6125 host matching: exact, or single-label wildcard."""
        hostname = normalize(hostname)
        for name in self.names():
            if name == hostname:
                return True
            if name.startswith("*."):
                suffix = name[2:]
                if (
                    hostname.endswith("." + suffix)
                    and "." not in hostname[: -(len(suffix) + 1)]
                ):
                    return True
        return False

    def is_time_valid(self, on: date) -> bool:
        return self.not_before <= on <= self.not_after

    def fingerprint(self) -> str:
        """Stable identity for counting/grouping (the SHA-256 stand-in).

        Deterministic across processes (unlike built-in ``hash``), so
        exported datasets re-group identically when reloaded.  Computed
        once per instance: popularity counting and identity caching call
        this on every observation of the same certificate.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        body = "|".join(
            (self.subject_cn, *sorted(self.sans), self.issuer,
             self.not_before.isoformat(), str(self.serial))
        )
        digest = hashlib.sha256(body.encode()).hexdigest()[:16]
        object.__setattr__(self, "_fingerprint", digest)
        return digest
