"""Section 4.1 — corpus construction: the stability funnel.

Reproduces the paper's target-domain recipe for the Alexa list: simulate
nine churning Top-1M snapshots, keep only the domains present on every
list, intersect with the domains publishing MX records at every snapshot,
and report the funnel (the paper lands on 93,538 stable Alexa domains).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import format_table
from ..world.toplist import CorpusFunnel, build_study_corpus
from .common import StudyContext


@dataclass
class Sec41Result:
    funnel: CorpusFunnel

    def render(self) -> str:
        funnel = self.funnel
        rows = [
            ["ever on any snapshot's toplist", funnel.union_domains, ""],
            [
                "on the list across all snapshots",
                funnel.list_stable,
                f"-{funnel.churn_loss} (ranking churn)",
            ],
            [
                "...with MX records at every snapshot",
                funnel.mx_stable,
                f"-{funnel.mx_loss} (no stable mail config)",
            ],
            ["final study corpus", len(funnel.corpus), ""],
        ]
        return format_table(
            ["Stage", "Domains", "Dropped"],
            rows,
            title="Section 4.1 — Alexa corpus construction funnel",
        )


def run(ctx: StudyContext, churn_rate: float = 0.25, seed: int = 2021) -> Sec41Result:
    funnel = build_study_corpus(
        ctx.world, ctx.gatherer.openintel, churn_rate=churn_rate, seed=seed
    )
    return Sec41Result(funnel=funnel)
