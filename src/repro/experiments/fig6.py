"""Experiment E6 — Figure 6 (a–i): longitudinal market share.

Nine panels: for each corpus (Alexa, .com, .gov), the top-company series,
the five e-mail security companies, and the five web hosting companies,
across every snapshot of the study window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.longitudinal import LongitudinalResult, market_share_over_time
from ..analysis.market_share import compute_market_share
from ..analysis.render import format_percent, format_table, sparkline
from ..core.companies import SELF_LABEL
from ..world.entities import DatasetTag
from ..world.population import NUM_SNAPSHOTS
from .common import StudyContext

# The fixed company panels of Figures 6b/e/h and 6c/f/i.
SECURITY_PANEL = ("proofpoint", "mimecast", "barracuda", "ironport", "appriver")
HOSTING_PANEL = ("godaddy", "ovh", "unitedinternet", "ukraine_ua", "namecheap")


@dataclass
class Fig6Panel:
    title: str
    result: LongitudinalResult
    labels: list[str]

    def render(self) -> str:
        rows = []
        for label in self.labels + [SELF_LABEL]:
            if label not in self.result.series:
                continue
            series = self.result.series[label]
            rows.append(
                [
                    series.display,
                    format_percent(series.first_measured),
                    format_percent(series.last_measured),
                    f"{series.delta_percent():+.1f}pp",
                    sparkline(series.percents),
                ]
            )
        total = self.result.total_series(self.labels)
        rows.append(
            [
                "Total",
                format_percent(total.first_measured),
                format_percent(total.last_measured),
                f"{total.delta_percent():+.1f}pp",
                sparkline(total.percents),
            ]
        )
        return format_table(
            ["Company", "First", "Last", "Δ", "Trend"], rows, title=self.title
        )


@dataclass
class Fig6Result:
    panels: dict[str, Fig6Panel]

    def render(self) -> str:
        header = "Figure 6 — market share of service types, 2017–2021"
        return header + "\n\n" + "\n\n".join(
            panel.render() for panel in self.panels.values()
        )

    def panel(self, key: str) -> Fig6Panel:
        return self.panels[key]


def _snapshot_inferences(ctx: StudyContext, dataset: DatasetTag):
    return [ctx.priority(dataset, index) for index in range(NUM_SNAPSHOTS)]


def top_company_labels(ctx: StudyContext, dataset: DatasetTag, k: int = 5) -> list[str]:
    """Top-k companies in the final snapshot (the Figure 5 panel set)."""
    inferences = ctx.priority(dataset, NUM_SNAPSHOTS - 1)
    assert inferences is not None
    share = compute_market_share(inferences, ctx.domains(dataset), ctx.company_map)
    return [row.label for row in share.top(k)]


def run(ctx: StudyContext) -> Fig6Result:
    panels: dict[str, Fig6Panel] = {}
    dataset_titles = {
        DatasetTag.ALEXA: "Alexa",
        DatasetTag.COM: "COM",
        DatasetTag.GOV: "GOV",
    }
    panel_specs = {
        "top": ("Top Companies", None),
        "security": ("Popular E-mail Security Companies", list(SECURITY_PANEL)),
        "hosting": ("Popular Web Hosting Companies", list(HOSTING_PANEL)),
    }
    for dataset, dataset_title in dataset_titles.items():
        per_snapshot = _snapshot_inferences(ctx, dataset)
        domains = ctx.domains(dataset)
        for panel_key, (panel_title, labels) in panel_specs.items():
            panel_labels = labels if labels is not None else top_company_labels(ctx, dataset)
            result = market_share_over_time(
                per_snapshot, domains, ctx.company_map, panel_labels,
                include_self_hosted=(panel_key == "top"),
            )
            key = f"{dataset.value}:{panel_key}"
            panels[key] = Fig6Panel(
                title=f"(6{_panel_letter(dataset, panel_key)}) {panel_title} in {dataset_title}",
                result=result,
                labels=panel_labels,
            )
    return Fig6Result(panels=panels)


def _panel_letter(dataset: DatasetTag, panel_key: str) -> str:
    order = {
        (DatasetTag.ALEXA, "top"): "a",
        (DatasetTag.ALEXA, "security"): "b",
        (DatasetTag.ALEXA, "hosting"): "c",
        (DatasetTag.COM, "top"): "d",
        (DatasetTag.COM, "security"): "e",
        (DatasetTag.COM, "hosting"): "f",
        (DatasetTag.GOV, "top"): "g",
        (DatasetTag.GOV, "security"): "h",
        (DatasetTag.GOV, "hosting"): "i",
    }
    return order[(dataset, panel_key)]
