"""Experiment runners: one per table/figure in the paper's evaluation.

Each module exposes ``run(ctx) -> <ExperimentResult>`` where the result has
a ``render()`` method producing the paper-shaped text artifact.  Use
:func:`repro.experiments.common.default_context` for the standard world.
"""

from . import (
    ext_concentration,
    ext_ml,
    ext_spf,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    sec41_corpus,
    tab1_2_3,
    tab4,
    tab5,
    tab6,
)
from .common import LAST_SNAPSHOT, StudyContext, default_context, env_scale

__all__ = [
    "LAST_SNAPSHOT",
    "StudyContext",
    "default_context",
    "env_scale",
    "ext_concentration",
    "ext_ml",
    "ext_spf",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "sec41_corpus",
    "tab1_2_3",
    "tab4",
    "tab5",
    "tab6",
]
