"""Extension experiment — consolidation as a single metric.

Computes HHI / CR-k concentration of the inferred mail-provider market per
snapshot, per corpus: the centralization the paper documents qualitatively
in Figure 6, reduced to rising curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.concentration import ConcentrationPoint, concentration_series
from ..analysis.render import format_table, sparkline
from ..world.entities import DatasetTag
from ..world.population import NUM_SNAPSHOTS
from .common import StudyContext


@dataclass
class ExtConcentrationResult:
    series: dict[DatasetTag, list[ConcentrationPoint | None]]

    def _measured(self, dataset: DatasetTag) -> list[ConcentrationPoint]:
        return [point for point in self.series[dataset] if point is not None]

    def hhi_delta(self, dataset: DatasetTag) -> float:
        measured = self._measured(dataset)
        return measured[-1].hhi - measured[0].hhi

    def render(self) -> str:
        rows = []
        for dataset, points in self.series.items():
            measured = [p for p in points if p is not None]
            first, last = measured[0], measured[-1]
            hhi_values = [p.hhi if p is not None else float("nan") for p in points]
            rows.append(
                [
                    dataset.value.upper(),
                    f"{first.hhi:.0f} -> {last.hhi:.0f}",
                    f"{100 * first.cr4:.1f}% -> {100 * last.cr4:.1f}%",
                    f"{first.effective_providers:.1f} -> {last.effective_providers:.1f}",
                    sparkline(hhi_values),
                ]
            )
        return format_table(
            ["Dataset", "HHI", "CR-4", "Effective providers", "HHI trend"],
            rows,
            title="Extension — concentration of the mail-provider market, 2017–2021",
        )


def run(ctx: StudyContext) -> ExtConcentrationResult:
    series = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        per_snapshot = [
            ctx.priority(dataset, index) for index in range(NUM_SNAPSHOTS)
        ]
        series[dataset] = concentration_series(
            per_snapshot, ctx.domains(dataset), ctx.company_map
        )
    return ExtConcentrationResult(series=series)
