"""Shared experiment context: one world, cached measurements and inferences.

Every experiment (and benchmark) runs against a :class:`StudyContext` —
a built world plus memoized measurement gathering and inference runs per
(corpus, snapshot).  The default context is scaled by the ``REPRO_SCALE``
environment variable (1.0 = the test-size world; the paper's corpora are
roughly 78× larger and behave identically, just slower).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

from ..core.baselines import (
    APPROACH_BANNER,
    APPROACH_CERT,
    APPROACH_MX_ONLY,
    APPROACH_PRIORITY,
    MXOnlyApproach,
    banner_based,
    cert_based,
)
from ..core.certgroup import CertificateGroups
from ..core.companies import CompanyMap
from ..core.pipeline import PipelineConfig, PipelineResult, PriorityPipeline
from ..core.types import DomainInference
from ..engine import EngineOptions, MXIdentityCache, parallel_gather
from ..engine.stats import STATS
from ..faults import FaultInjector, FaultPlan, as_plan
from ..obs import trace
from ..measure import (
    CensysScanner,
    MeasurementGatherer,
    OpenINTELPlatform,
    Prefix2ASDataset,
)
from ..measure.dataset import DomainMeasurement
from ..store import ArtifactStore
from ..stream import (
    BatchSpiller,
    SharedWorldTables,
    canonicalize_measurements,
    env_stream_keep,
    merge_payloads,
    stream_gather,
)
from ..world.build import World, WorldConfig, build_world
from ..world.entities import DatasetTag
from ..world.population import GOV_FIRST_SNAPSHOT, NUM_SNAPSHOTS

LAST_SNAPSHOT = NUM_SNAPSHOTS - 1

# Sentinel distinguishing "no store" (None) from "resolve from REPRO_CACHE".
STORE_FROM_ENV = object()


def env_scale(default: float = 1.0) -> float:
    """Corpus scale factor from the REPRO_SCALE environment variable.

    Unparseable values warn (instead of failing silently) and fall back
    to *default*.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"unparseable REPRO_SCALE={raw!r}; falling back to {default}",
            stacklevel=2,
        )
        return default


@dataclass
class StudyContext:
    """A world plus cached measurement and inference state.

    ``engine`` controls execution: worker count for sharded gathering and
    pipeline identification, and whether the cross-run memoization layers
    (PSL extraction, observation interning, cert-group reuse, MX-identity
    cache) are active.  All engine settings are pure optimizations — every
    inference is bit-identical across jobs counts and cache settings.

    ``store`` adds the persistent layer: gathered measurement snapshots,
    priority-pipeline results, and baseline inference maps are read from
    and written through to an on-disk :class:`~repro.store.ArtifactStore`,
    keyed on (world config, corpus, snapshot, schema version).  Because
    engine settings never change results, they are excluded from store
    keys — a snapshot cached by any run serves every later run over the
    same world.
    """

    world: World
    gatherer: MeasurementGatherer
    company_map: CompanyMap
    engine: EngineOptions = field(default_factory=EngineOptions)
    store: ArtifactStore | None = None
    identity_cache: MXIdentityCache | None = None
    faults: FaultInjector | None = None
    fault_plan: FaultPlan | None = None
    resilience: "object | None" = None  # repro.resilience.RunContext
    #: repro.dist.DistCoordinator — leases gathers to remote worker hosts.
    dist: "object | None" = None
    #: Shared-memory snapshot tables, published once per streamed context.
    stream_tables: SharedWorldTables | None = None
    _measurements: dict[tuple[DatasetTag, int], dict[str, DomainMeasurement]] = field(
        default_factory=dict
    )
    #: Encoded batch payloads backing evicted snapshots of store-less
    #: streamed runs (the codec doubles as the compact heap form).
    _snapshot_payloads: dict[tuple[DatasetTag, int], list[bytes]] = field(
        default_factory=dict
    )
    _domain_lists: dict[DatasetTag, list[str]] = field(default_factory=dict)
    _priority: dict[tuple[DatasetTag, int], PipelineResult] = field(default_factory=dict)
    _baselines: dict[tuple[str, DatasetTag, int], dict[str, DomainInference]] = field(
        default_factory=dict
    )
    _cert_groups: dict[tuple[DatasetTag, int], CertificateGroups] = field(
        default_factory=dict
    )

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls,
        config: WorldConfig | None = None,
        engine: EngineOptions | None = None,
        store: "ArtifactStore | None | object" = STORE_FROM_ENV,
        faults: "FaultPlan | str | None" = None,
        resilience: "object | None" = None,
        dist: "object | None" = None,
    ) -> "StudyContext":
        """Build a context; *store* defaults to the ``REPRO_CACHE`` store.

        Pass ``store=None`` to disable persistence explicitly, or an
        :class:`~repro.store.ArtifactStore` to use a specific cache dir.

        *faults* — a :class:`~repro.faults.FaultPlan` (or spec string) —
        installs the deterministic fault injector at every measurement
        seam.  Inactive plans (rate 0 everywhere, ``"none"``) are treated
        exactly like no plan at all, so the fault-free path stays
        byte-identical to a build without the faults package.  Plans with
        only worker channels (``worker.crash``/``worker.hang``) install no
        measurement injector — they drive the shard supervisor instead and
        never perturb measured values or store keys.

        *resilience* — a :class:`~repro.resilience.RunContext` — makes
        gathers supervised and checkpointed, and threads the run's
        shutdown flag through the experiment loop.

        *dist* — a :class:`~repro.dist.DistCoordinator` — leases gather
        shards to remote worker hosts over its socket instead of running
        them in local processes; everything else (checkpoints, journal,
        merge order) is unchanged, so the output stays byte-identical.
        """
        engine = engine or EngineOptions()
        if store is STORE_FROM_ENV:
            store = ArtifactStore.from_env()
        world = build_world(config)
        world.psl.set_cache(engine.memoize)
        plan = as_plan(faults)
        prefix2as = Prefix2ASDataset.from_table(world.prefix2as)
        injector = None
        if plan is not None and plan.measurement_active:
            def asn_of(address: str) -> int | None:
                info = prefix2as.lookup(address)
                return info.asn if info is not None else None

            injector = FaultInjector(plan, asn_of=asn_of)
        openintel = OpenINTELPlatform(
            world.snapshot_zones, world.snapshot_dates, faults=injector
        )
        censys = CensysScanner(
            world.host_table,
            coverage_for=world.censys_coverage_for,
            faults=injector,
        )
        stream_tables = None
        gather_prefix2as = prefix2as
        if engine.batch_plan().active:
            # Publish the read-only routing table once; forked gather
            # workers map the segment zero-copy instead of inheriting a
            # per-context Python trie.  Lookups are value-equal, so this
            # is invisible to every inference.
            as_index = {
                asys.number: asys
                for asys in world.prefix2as.autonomous_systems()
            }
            stream_tables = SharedWorldTables.publish(prefix2as, as_index)
            gather_prefix2as = stream_tables.prefix2as
        gatherer = MeasurementGatherer(
            openintel, censys, gather_prefix2as, memoize=engine.memoize
        )
        company_map = CompanyMap.from_specs(
            [infra.spec for infra in world.companies.values()], psl=world.psl
        )
        return cls(
            world=world,
            gatherer=gatherer,
            company_map=company_map,
            engine=engine,
            store=store,
            identity_cache=MXIdentityCache() if engine.memoize else None,
            faults=injector,
            fault_plan=plan,
            resilience=resilience,
            dist=dist,
            stream_tables=stream_tables,
        )

    def faults_key(self) -> str | None:
        """The store-key component of this context's fault plan (or None).

        Worker-fault channels are stripped (``FaultPlan.store_key``):
        crashing or hanging workers changes *how* a snapshot is computed,
        never *what* it contains, so worker-faulted runs share artifacts
        with clean runs — the property the kill/resume differential gate
        relies on.
        """
        return self.fault_plan.store_key() if self.fault_plan is not None else None

    def _supervision(
        self,
        dataset: DatasetTag,
        snapshot_index: int,
        batch: tuple[int, int, int] | None = None,
    ):
        """The gather-supervision bundle, or None for the plain path.

        Supervision engages when the run is resilient (journal +
        checkpoints + shutdown flag) or when the fault plan carries
        worker channels (so injected crashes meet a supervisor that can
        restart them); fault-free non-resilient runs take the untouched
        executor path.  Under a streamed gather, *batch* is the plan key
        of the batch being supervised: checkpoints key on it, and worker
        fault rolls vary per batch (restart budgets are per gather, so
        the values a batch produces are still never affected).
        """
        plan = self.fault_plan
        worker_faults = plan is not None and plan.worker_active
        run = self.resilience
        if run is None and not worker_faults and self.dist is None:
            return None
        from ..resilience.supervisor import GatherSupervision, SupervisorOptions

        checkpoint_factory = None
        if run is not None and run.checkpoints is not None:
            checkpoint_factory = (
                lambda count: run.checkpoints.bind(
                    dataset, snapshot_index, count, batch=batch
                )
            )
        scope = (dataset.value, snapshot_index)
        if batch is not None:
            scope = scope + (batch[0], batch[1])
        return GatherSupervision(
            options=SupervisorOptions(
                deadline=self.engine.shard_deadline,
                max_restarts=self.engine.max_restarts,
            ),
            plan=plan if worker_faults else None,
            scope=scope,
            checkpoint_factory=checkpoint_factory,
            journal=run.journal if run is not None else None,
            shutdown=run.shutdown if run is not None else None,
            dist=self.dist,
        )

    def _discard_shard_checkpoints(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> None:
        """Drop shard checkpoints once the full snapshot artifact exists.

        Keeps completed stores free of partial-gather entries — and, for
        streamed gathers, of batch spill entries — so a finished resumed
        run's store is digest-identical to an uninterrupted run's.
        """
        run = self.resilience
        if run is None or run.checkpoints is None:
            return
        jobs = self.engine.resolved_jobs()
        total = len(self.domains(dataset))
        plan = self.engine.batch_plan()
        if not plan.active:
            shard_count = min(jobs, total)
            if shard_count > 1:
                run.checkpoints.bind(dataset, snapshot_index, shard_count).discard_all()
            return
        for batch_index, size in enumerate(plan.batch_sizes(total)):
            batch = plan.key(batch_index, total)
            shard_count = min(jobs, size)
            if shard_count > 1:
                run.checkpoints.bind(
                    dataset, snapshot_index, shard_count, batch=batch
                ).discard_all()
            if self.store is not None:
                self.store.discard_batch(
                    self.world.config, dataset, snapshot_index, *batch,
                    self.faults_key(),
                )

    # -- corpus access ---------------------------------------------------

    def domains(self, dataset: DatasetTag) -> list[str]:
        cached = self._domain_lists.get(dataset)
        if cached is None:
            cached = sorted(entity.name for entity in self.world.domains_in(dataset))
            self._domain_lists[dataset] = cached
        return cached

    def covered(self, dataset: DatasetTag, snapshot_index: int) -> bool:
        if dataset is DatasetTag.GOV:
            return snapshot_index >= GOV_FIRST_SNAPSHOT
        return 0 <= snapshot_index < NUM_SNAPSHOTS

    def measurements(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> dict[str, DomainMeasurement] | None:
        if not self.covered(dataset, snapshot_index):
            return None
        key = (dataset, snapshot_index)
        cached = self._measurements.get(key)
        if cached is not None:
            if self.engine.batch_plan().active:
                # LRU touch: re-insertion keeps eviction order honest.
                self._measurements.pop(key)
                self._measurements[key] = cached
            return cached
        run = self.resilience
        if run is not None:
            run.shutdown.raise_if_set()
        loaded = None
        if self.store is not None:
            loaded = self.store.load_measurements(
                self.world.config, dataset, snapshot_index, self.faults_key()
            )
        if loaded is None and key in self._snapshot_payloads:
            # A store-less streamed run re-decodes an evicted snapshot
            # from its retained batch payloads instead of re-gathering.
            with STATS.timer("stream.redecode"):
                loaded = merge_payloads(self._snapshot_payloads[key])
            STATS.inc("stream.redecoded")
        if loaded is not None:
            # Warm the gatherer's observation caches so follow-up
            # gathers (showcase domains, churn studies) reuse the
            # persisted scan/routing records.
            self.gatherer.adopt(loaded)
            self._remember(key, loaded)
            # A resumed run may hold stale shard checkpoints for a
            # snapshot that completed before the kill — clean them up.
            self._discard_shard_checkpoints(dataset, snapshot_index)
            return loaded
        targets = self.domains(dataset)
        plan = self.engine.batch_plan()
        with STATS.timer("context.gather"), trace.span(
            f"{dataset.value}[s{snapshot_index}].gather",
            cat="snapshot",
            corpus=dataset.value,
            snapshot=snapshot_index,
            targets=len(targets),
        ):
            if plan.active:
                spiller = BatchSpiller(
                    plan=plan,
                    total=len(targets),
                    store=self.store,
                    config=self.world.config,
                    dataset=dataset,
                    snapshot_index=snapshot_index,
                    faults=self.faults_key(),
                    write_through=run is not None,
                )
                gathered = stream_gather(
                    self.gatherer,
                    targets,
                    snapshot_index,
                    plan=plan,
                    spiller=spiller,
                    jobs=self.engine.resolved_jobs(),
                    executor=self.engine.executor,
                    supervision_factory=lambda index, _count: self._supervision(
                        dataset, snapshot_index,
                        batch=plan.key(index, len(targets)),
                    ),
                )
                if self.store is None:
                    self._snapshot_payloads[key] = spiller.held_payloads()
            else:
                gathered = parallel_gather(
                    self.gatherer,
                    targets,
                    snapshot_index,
                    jobs=self.engine.resolved_jobs(),
                    executor=self.engine.executor,
                    supervision=self._supervision(dataset, snapshot_index),
                )
                # One observation object per address, exactly as the
                # serial memoized path produces: encoded artifacts come
                # out byte-identical across jobs/executors/batch sizes.
                gathered = canonicalize_measurements(gathered)
        if self.store is not None:
            self.store.save_measurements(
                self.world.config, dataset, snapshot_index, gathered,
                self.faults_key(),
            )
        if run is not None:
            run.journal.append(
                "snapshot.done",
                corpus=dataset.value,
                snapshot=snapshot_index,
                targets=len(targets),
            )
            self._discard_shard_checkpoints(dataset, snapshot_index)
        self._remember(key, gathered)
        return gathered

    def _remember(
        self,
        key: tuple[DatasetTag, int],
        measurements: dict[str, DomainMeasurement],
    ) -> None:
        """Cache a decoded snapshot; bounded LRU when streaming.

        Unbatched contexts keep every snapshot for the life of the
        context (the historical behaviour).  Streamed contexts keep the
        ``REPRO_STREAM_KEEP`` most recent decoded snapshots: anything
        evicted reloads from the store, or re-decodes from its retained
        batch payloads when no store is configured.
        """
        self._measurements.pop(key, None)
        self._measurements[key] = measurements
        self._stream_trim(self._measurements, "stream.snapshot.evicted")

    def _stream_trim(self, cache: dict, counter: str, keep_factor: int = 1) -> None:
        """Bound a per-snapshot cache to ``REPRO_STREAM_KEEP`` entries.

        No-op for unbatched contexts (the historical keep-everything
        behaviour).  Streamed contexts evict oldest-first: evicted
        snapshots reload from the store, re-decode from retained batch
        payloads, or recompute — all deterministic, so eviction can never
        change an output, only trade memory for time.  ``keep_factor``
        widens the bound for caches holding several entries per snapshot
        (the three baseline approaches).
        """
        if not self.engine.batch_plan().active:
            return
        keep = env_stream_keep() * keep_factor
        while len(cache) > keep:
            evicted = next(iter(cache))
            del cache[evicted]
            STATS.inc(counter)

    # -- inference runs --------------------------------------------------

    def cert_groups(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> CertificateGroups | None:
        """The step-1 certificate grouping for one (corpus, snapshot).

        Grouping depends only on the measurements (never on the pipeline
        config), so one grouping serves the default run and every ablation
        config over the same snapshot.
        """
        measurements = self.measurements(dataset, snapshot_index)
        if measurements is None:
            return None
        if not self.engine.memoize:
            return None  # let each run rebuild, as the seed did
        key = (dataset, snapshot_index)
        if key not in self._cert_groups:
            STATS.inc("pipeline.groups.miss")
            builder = PriorityPipeline(
                self.world.trust_store, self.company_map, self.world.psl
            )
            with STATS.timer("context.cert_groups"):
                self._cert_groups[key] = builder.build_groups(measurements)
            self._stream_trim(self._cert_groups, "stream.groups.evicted")
        else:
            STATS.inc("pipeline.groups.hit")
        return self._cert_groups[key]

    def priority_result(
        self, dataset: DatasetTag, snapshot_index: int,
        config: PipelineConfig | None = None,
    ) -> PipelineResult | None:
        """Priority-pipeline run (cached only for the default config).

        A store hit for the default config short-circuits measurement
        gathering entirely — the warm path never touches the measurement
        layer unless a later caller asks for the raw snapshot.
        """
        if not self.covered(dataset, snapshot_index):
            return None
        if config is not None:
            measurements = self.measurements(dataset, snapshot_index)
            pipeline = PriorityPipeline(
                self.world.trust_store, self.company_map, self.world.psl, config,
                identity_cache=self.identity_cache, faults=self.faults,
            )
            with STATS.timer("context.pipeline"), trace.span(
                f"{dataset.value}[s{snapshot_index}].pipeline",
                cat="snapshot",
                corpus=dataset.value,
                snapshot=snapshot_index,
                config="ablation",
            ):
                return pipeline.run(
                    measurements,
                    groups=self.cert_groups(dataset, snapshot_index),
                    jobs=self.engine.resolved_jobs(),
                )
        key = (dataset, snapshot_index)
        if key not in self._priority:
            loaded = None
            if self.store is not None:
                loaded = self.store.load_result(
                    self.world.config, dataset, snapshot_index, self.faults_key()
                )
            if loaded is not None:
                self._priority[key] = loaded
                self._stream_trim(self._priority, "stream.result.evicted")
            else:
                measurements = self.measurements(dataset, snapshot_index)
                pipeline = PriorityPipeline(
                    self.world.trust_store, self.company_map, self.world.psl,
                    identity_cache=self.identity_cache, faults=self.faults,
                )
                with STATS.timer("context.pipeline"), trace.span(
                    f"{dataset.value}[s{snapshot_index}].pipeline",
                    cat="snapshot",
                    corpus=dataset.value,
                    snapshot=snapshot_index,
                    config="default",
                ):
                    result = pipeline.run(
                        measurements,
                        groups=self.cert_groups(dataset, snapshot_index),
                        jobs=self.engine.resolved_jobs(),
                    )
                if self.store is not None:
                    self.store.save_result(
                        self.world.config, dataset, snapshot_index, result,
                        self.faults_key(),
                    )
                self._priority[key] = result
                self._stream_trim(self._priority, "stream.result.evicted")
        return self._priority[key]

    def priority(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> dict[str, DomainInference] | None:
        result = self.priority_result(dataset, snapshot_index)
        return result.inferences if result is not None else None

    def baseline(
        self, approach: str, dataset: DatasetTag, snapshot_index: int
    ) -> dict[str, DomainInference] | None:
        if not self.covered(dataset, snapshot_index):
            return None
        key = (approach, dataset, snapshot_index)
        if key not in self._baselines:
            if approach == APPROACH_MX_ONLY:
                runner = MXOnlyApproach(psl=self.world.psl)
            elif approach == APPROACH_CERT:
                runner = cert_based(self.world.trust_store, psl=self.world.psl)
            elif approach == APPROACH_BANNER:
                runner = banner_based(self.world.trust_store, psl=self.world.psl)
            else:
                raise ValueError(f"unknown baseline approach: {approach}")
            loaded = None
            if self.store is not None:
                loaded = self.store.load_baseline(
                    self.world.config, dataset, snapshot_index, approach,
                    self.faults_key(),
                )
            if loaded is not None:
                self._baselines[key] = loaded
                self._stream_trim(
                    self._baselines, "stream.result.evicted", keep_factor=3
                )
            else:
                measurements = self.measurements(dataset, snapshot_index)
                inferences = runner.run(measurements)
                if self.store is not None:
                    self.store.save_baseline(
                        self.world.config, dataset, snapshot_index, approach,
                        inferences, self.faults_key(),
                    )
                self._baselines[key] = inferences
                self._stream_trim(
                    self._baselines, "stream.result.evicted", keep_factor=3
                )
        return self._baselines[key]

    def all_approaches(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> dict[str, dict[str, DomainInference]] | None:
        priority = self.priority(dataset, snapshot_index)
        if priority is None:
            return None
        return {
            APPROACH_MX_ONLY: self.baseline(APPROACH_MX_ONLY, dataset, snapshot_index),
            APPROACH_CERT: self.baseline(APPROACH_CERT, dataset, snapshot_index),
            APPROACH_BANNER: self.baseline(APPROACH_BANNER, dataset, snapshot_index),
            APPROACH_PRIORITY: priority,
        }

    # -- ground truth ----------------------------------------------------

    def ground_truth(self, domain: str, snapshot_index: int) -> dict[str, float]:
        return self.world.ground_truth(domain, snapshot_index)

    def truth_fn(self, snapshot_index: int):
        """A domain → truth callable bound to one snapshot."""
        return lambda domain: self.world.ground_truth(domain, snapshot_index)


_default_context: StudyContext | None = None
_default_key: tuple | None = None


def default_context() -> StudyContext:
    """The shared REPRO_SCALE-sized context (built once per process)."""
    global _default_context, _default_key
    scale = env_scale()
    key = ("default", scale)
    if _default_context is None or _default_key != key:
        _default_context = StudyContext.create(WorldConfig().scaled(scale))
        _default_key = key
    return _default_context
