"""Experiment E1 — Tables 1, 2 and 3: the worked examples of Section 3.

Measures the paper's showcase domains in the simulated world and renders:

* Table 1 — domain, MX record, MX IP resolution, ASN;
* Table 2 — Banner/EHLO and TLS subject CN observed via SMTP;
* a Table 3-style methodology summary — the provider ID each domain is
  assigned and which evidence source decided it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import format_table
from ..core.pipeline import PriorityPipeline
from ..core.types import DomainStatus
from ..measure.dataset import DomainMeasurement
from .common import LAST_SNAPSHOT, StudyContext

SHOWCASE = (
    "netflix.com", "gsipartners.com", "beats24-7.com", "jeniustoto.net", "utexas.edu",
)


@dataclass
class Tab123Result:
    measurements: dict[str, DomainMeasurement]
    inferences: dict[str, "object"]

    def render(self) -> str:
        table1_rows = []
        table2_rows = []
        table3_rows = []
        for domain in SHOWCASE:
            measurement = self.measurements[domain]
            mx = measurement.primary_mx[0]
            ip = mx.ips[0] if mx.ips else None
            asn_text = (
                f"{ip.as_info.asn} ({ip.as_info.name})"
                if ip is not None and ip.as_info is not None
                else "N/A"
            )
            table1_rows.append(
                [domain, mx.name, ip.address if ip else "N/A", asn_text]
            )
            scan = ip.scan if ip is not None else None
            banner = scan.banner if scan and scan.banner else "N/A"
            subject = (
                scan.certificate.subject_cn
                if scan and scan.certificate is not None
                else "N/A"
            )
            table2_rows.append([domain, banner, subject])

            inference = self.inferences[domain]
            if inference.status is DomainStatus.INFERRED:
                provider = ", ".join(sorted(inference.attributions))
                source = ", ".join(
                    sorted({i.source.value for i in inference.mx_identities})
                )
            else:
                provider = f"({inference.status.value})"
                source = "-"
            table3_rows.append([domain, provider, source])

        return "\n\n".join(
            [
                format_table(
                    ["Domain", "MX", "MX IP Resolution", "ASN of IP"],
                    table1_rows,
                    title="Table 1 — example domains with related mail information",
                ),
                format_table(
                    ["Domain", "Banner/EHLO", "Subject CN"],
                    table2_rows,
                    title="Table 2 — additional information from SMTP sessions",
                ),
                format_table(
                    ["Domain", "Provider ID", "Evidence"],
                    table3_rows,
                    title="Table 3 — provider IDs assigned by the methodology",
                ),
            ]
        )


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT) -> Tab123Result:
    measurements = {}
    for domain in SHOWCASE:
        measurement = ctx.gatherer.gather_domain(domain, snapshot_index)
        assert measurement is not None
        measurements[domain] = measurement
    # Run the pipeline with corpus context (so popularity counters are
    # meaningful) plus the showcase domains.
    corpus = {}
    from ..world.entities import DatasetTag

    for dataset in (DatasetTag.ALEXA, DatasetTag.COM):
        gathered = ctx.measurements(dataset, snapshot_index)
        assert gathered is not None
        corpus.update(gathered)
    corpus.update(measurements)
    pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
    result = pipeline.run(corpus)
    inferences = {domain: result[domain] for domain in SHOWCASE}
    return Tab123Result(measurements=measurements, inferences=inferences)
