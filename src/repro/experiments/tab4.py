"""Experiment E3 — Table 4: data-availability breakdown (June 2021)."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.filtering import CATEGORIES, AvailabilityBreakdown, availability_breakdown
from ..analysis.render import format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext

DATASET_COLUMNS = {
    DatasetTag.ALEXA: "Alexa Domains",
    DatasetTag.COM: "COM Domains",
    DatasetTag.GOV: "GOV Domains",
}


@dataclass
class Tab4Result:
    breakdowns: dict[DatasetTag, AvailabilityBreakdown]

    def render(self) -> str:
        headers = ["Category"] + [DATASET_COLUMNS[d] for d in self.breakdowns]
        rows = []
        for category in CATEGORIES:
            rows.append(
                [category]
                + [self.breakdowns[d].counts.get(category, 0) for d in self.breakdowns]
            )
        rows.append(["Total"] + [self.breakdowns[d].total for d in self.breakdowns])
        return format_table(
            headers, rows, title="Table 4 — breakdown of the June 2021 snapshot"
        )


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT) -> Tab4Result:
    breakdowns = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        measurements = ctx.measurements(dataset, snapshot_index)
        assert measurements is not None
        breakdowns[dataset] = availability_breakdown(
            measurements, ctx.world.trust_store, ctx.world.psl
        )
    return Tab4Result(breakdowns=breakdowns)
