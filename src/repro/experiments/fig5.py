"""Experiment E5 — Figure 5: top companies per domain set (June 2021).

Reports the top-5 companies for the Alexa Top 1k / 10k / 100k / full set,
the random ``.com`` corpus, and federal / non-federal / all ``.gov``
domains, with counts and percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.market_share import ShareRow, compute_market_share, top_rows_with_display
from ..analysis.render import format_count_percent, format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext


@dataclass
class Fig5Result:
    # ordered mapping: panel title → top-k rows
    panels: dict[str, list[ShareRow]]

    def render(self) -> str:
        sections = []
        for title, rows in self.panels.items():
            table_rows = [
                [row.rank, row.display, format_count_percent(row.count, row.percent)]
                for row in rows
            ]
            sections.append(
                format_table(["#", "Company", "Domains"], table_rows, title=title)
            )
        header = "Figure 5 — top providers per domain set (June 2021)"
        return header + "\n\n" + "\n\n".join(sections)


def _alexa_rank_slice(ctx: StudyContext, max_rank: int | None) -> list[str]:
    return sorted(
        entity.name
        for entity in ctx.world.domains_in(DatasetTag.ALEXA)
        if max_rank is None or (entity.alexa_rank or 0) <= max_rank
    )


def _gov_slice(ctx: StudyContext, federal: bool | None) -> list[str]:
    return sorted(
        entity.name
        for entity in ctx.world.domains_in(DatasetTag.GOV)
        if federal is None or entity.is_federal is federal
    )


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT, k: int = 5) -> Fig5Result:
    panels: dict[str, list[ShareRow]] = {}

    alexa_inferences = ctx.priority(DatasetTag.ALEXA, snapshot_index)
    assert alexa_inferences is not None
    for title, max_rank in (
        ("Alexa Top 1k", 1_000),
        ("Alexa Top 10k", 10_000),
        ("Alexa Top 100k", 100_000),
        ("Alexa Top 1M", None),
    ):
        domains = _alexa_rank_slice(ctx, max_rank)
        share = compute_market_share(alexa_inferences, domains, ctx.company_map)
        panels[title] = top_rows_with_display(share, ctx.company_map, k)

    com_inferences = ctx.priority(DatasetTag.COM, snapshot_index)
    assert com_inferences is not None
    com_share = compute_market_share(
        com_inferences, ctx.domains(DatasetTag.COM), ctx.company_map
    )
    panels["COM"] = top_rows_with_display(com_share, ctx.company_map, k)

    gov_inferences = ctx.priority(DatasetTag.GOV, snapshot_index)
    assert gov_inferences is not None
    for title, federal in (
        ("GOV (federal)", True),
        ("GOV (non-federal)", False),
        ("GOV (all)", None),
    ):
        domains = _gov_slice(ctx, federal)
        share = compute_market_share(gov_inferences, domains, ctx.company_map)
        panels[title] = top_rows_with_display(share, ctx.company_map, k)

    return Fig5Result(panels=panels)
