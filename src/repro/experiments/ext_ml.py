"""Extension experiment — learned misidentification detection.

Trains the logistic detector of :mod:`repro.core.autocorrect` on one world
and evaluates it on a *different* world (different seed → different
domains, providers' customers, corner-case instances), then compares it
with the paper's rule-based step 4 on the same held-out cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import format_table
from ..core.autocorrect import EvaluationMetrics, LabeledCases, MisidentificationLearner
from ..core.pipeline import PipelineConfig, PriorityPipeline
from ..core.types import DomainInference, MXIdentity
from ..measure.dataset import DomainMeasurement
from ..world.build import WorldConfig
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext

EVAL_SEED_OFFSET = 16


@dataclass
class ExtMLResult:
    train_cases: int
    train_positive_rate: float
    eval_cases: int
    eval_positive_rate: float
    learned: EvaluationMetrics
    rule_based: EvaluationMetrics
    top_features: list[tuple[str, float]]

    def render(self) -> str:
        summary = format_table(
            ["Split", "Cases", "Misidentified"],
            [
                ["train", self.train_cases, f"{100 * self.train_positive_rate:.1f}%"],
                ["eval (held-out world)", self.eval_cases, f"{100 * self.eval_positive_rate:.1f}%"],
            ],
            title="Extension — learned misidentification detection (Section 3.4)",
        )
        comparison = format_table(
            ["Detector", "Precision", "Recall", "F1"],
            [
                [
                    "learned (logistic)",
                    f"{100 * self.learned.precision:.1f}%",
                    f"{100 * self.learned.recall:.1f}%",
                    f"{100 * self.learned.f1:.1f}%",
                ],
                [
                    "rule-based step 4",
                    f"{100 * self.rule_based.precision:.1f}%",
                    f"{100 * self.rule_based.recall:.1f}%",
                    f"{100 * self.rule_based.f1:.1f}%",
                ],
            ],
            title="Held-out detection quality",
        )
        features = format_table(
            ["Feature", "Weight"],
            [[name, f"{weight:+.2f}"] for name, weight in self.top_features],
            title="Most informative features",
        )
        return "\n\n".join((summary, comparison, features))


def _uncorrected_identities(
    ctx: StudyContext, measurements: dict[str, DomainMeasurement]
) -> dict[str, dict[str, MXIdentity]]:
    """Per-domain steps-1–3 identities (step 4 disabled)."""
    pipeline = PriorityPipeline(
        ctx.world.trust_store, ctx.company_map, ctx.world.psl,
        PipelineConfig(check_misidentifications=False),
    )
    result = pipeline.run(measurements)
    return {
        domain: {identity.mx_name: identity for identity in inference.mx_identities}
        for domain, inference in result.inferences.items()
    }


def _corrected_flags(
    ctx: StudyContext, measurements: dict[str, DomainMeasurement]
) -> dict[str, dict[str, bool]]:
    """Which (domain, MX) cases the rule-based step 4 changed."""
    pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
    result = pipeline.run(measurements)
    return {
        domain: {identity.mx_name: identity.corrected for identity in inference.mx_identities}
        for domain, inference in result.inferences.items()
    }


def _gather_cases(
    ctx: StudyContext, learner: MisidentificationLearner, snapshot_index: int
) -> tuple[LabeledCases, dict[str, DomainMeasurement], dict[str, dict[str, MXIdentity]]]:
    measurements: dict[str, DomainMeasurement] = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM):
        gathered = ctx.measurements(dataset, snapshot_index)
        assert gathered is not None
        measurements.update(gathered)
    identities = _uncorrected_identities(ctx, measurements)
    cases = learner.build_cases(
        measurements, identities, lambda domain: ctx.ground_truth(domain, snapshot_index)
    )
    return cases, measurements, identities


def _rule_based_metrics(
    ctx: StudyContext,
    measurements: dict[str, DomainMeasurement],
    cases: LabeledCases,
    identities: dict[str, dict[str, MXIdentity]],
) -> EvaluationMetrics:
    flags = _corrected_flags(ctx, measurements)
    tp = fp = fn = tn = 0
    index = 0
    for domain, by_mx in identities.items():
        measurement = measurements[domain]
        for mx in measurement.primary_mx:
            if mx.name not in by_mx:
                continue
            label = int(cases.labels[index])
            predicted = 1 if flags.get(domain, {}).get(mx.name, False) else 0
            index += 1
            if predicted and label:
                tp += 1
            elif predicted and not label:
                fp += 1
            elif not predicted and label:
                fn += 1
            else:
                tn += 1
    return EvaluationMetrics(
        true_positives=tp, false_positives=fp, false_negatives=fn, true_negatives=tn
    )


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT) -> ExtMLResult:
    learner = MisidentificationLearner(ctx.company_map, ctx.world.psl)
    train_cases, _, _ = _gather_cases(ctx, learner, snapshot_index)
    learner.train(train_cases)

    # Held-out world: new seed, smaller corpora (enough corner cases).
    base = ctx.world.config
    eval_config = WorldConfig(
        seed=base.seed + EVAL_SEED_OFFSET,
        alexa_size=max(200, base.alexa_size // 2),
        com_size=max(200, base.com_size // 2),
        gov_size=max(50, base.gov_size // 2),
    )
    eval_ctx = StudyContext.create(eval_config)
    eval_learner = MisidentificationLearner(eval_ctx.company_map, eval_ctx.world.psl)
    eval_learner.model = learner.model
    eval_cases, eval_measurements, eval_identities = _gather_cases(
        eval_ctx, eval_learner, snapshot_index
    )

    learned = eval_learner.evaluate(eval_cases)
    rule_based = _rule_based_metrics(
        eval_ctx, eval_measurements, eval_cases, eval_identities
    )

    importance = sorted(
        learner.model.feature_importance().items(),
        key=lambda item: -abs(item[1]),
    )[:6]
    return ExtMLResult(
        train_cases=len(train_cases.labels),
        train_positive_rate=train_cases.positive_rate,
        eval_cases=len(eval_cases.labels),
        eval_positive_rate=eval_cases.positive_rate,
        learned=learned,
        rule_based=rule_based,
        top_features=importance,
    )
