"""Experiment E7 — Figure 7: churn in mail providers, Alexa 2017 → 2021."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.churn import ChurnMatrix, churn_matrix
from ..analysis.render import format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext


@dataclass
class Fig7Result:
    matrix: ChurnMatrix
    first_year: int
    last_year: int

    def render(self) -> str:
        categories = self.matrix.categories
        rows = []
        for source in categories:
            rows.append(
                [f"{source} {self.first_year}"]
                + [self.matrix.flow(source, target) for target in categories]
                + [self.matrix.total_from(source)]
            )
        headers = ["From \\ To"] + [f"{c} {self.last_year}" for c in categories] + ["Total"]
        flow_table = format_table(
            headers, rows,
            title=f"Figure 7 — churn in mail providers, Alexa {self.first_year}→{self.last_year}",
        )
        summary_rows = [
            [category,
             self.matrix.stayed(category),
             self.matrix.outgoing(category),
             self.matrix.incoming(category)]
            for category in categories
        ]
        summary = format_table(
            ["Category", "Stayed", "Left", "Joined"], summary_rows, title="Node summary"
        )
        return flow_table + "\n\n" + summary


def run(
    ctx: StudyContext,
    dataset: DatasetTag = DatasetTag.ALEXA,
    first_snapshot: int = 0,
    last_snapshot: int = LAST_SNAPSHOT,
) -> Fig7Result:
    first = ctx.priority(dataset, first_snapshot)
    last = ctx.priority(dataset, last_snapshot)
    assert first is not None and last is not None
    matrix = churn_matrix(first, last, ctx.domains(dataset), ctx.company_map)
    return Fig7Result(
        matrix=matrix,
        first_year=ctx.world.snapshot_dates[first_snapshot].year,
        last_year=ctx.world.snapshot_dates[last_snapshot].year,
    )
