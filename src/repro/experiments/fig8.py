"""Experiment E8 — Figure 8: mail-provider preferences by country (ccTLD)."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.country import CCTLDS, FOCAL_PROVIDERS, CountryPreferences, country_preferences
from ..analysis.render import format_percent, format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext


@dataclass
class Fig8Result:
    preferences: CountryPreferences

    def render(self) -> str:
        rows = []
        for cctld in self.preferences.cctlds:
            total = self.preferences.cell(cctld, self.preferences.providers[0]).total_domains
            rows.append(
                [f".{cctld}", total]
                + [
                    format_percent(self.preferences.percent(cctld, provider))
                    for provider in self.preferences.providers
                ]
                + [format_percent(self.preferences.us_share(cctld))]
            )
        headers = (
            ["ccTLD", "Domains"]
            + [provider.capitalize() for provider in self.preferences.providers]
            + ["US total"]
        )
        return format_table(
            headers, rows,
            title="Figure 8 — mail provider preferences by country (June 2021)",
        )


def domains_by_cctld(ctx: StudyContext) -> dict[str, list[str]]:
    """Alexa domains under each of the fifteen ccTLDs of Section 5.4."""
    by_cctld: dict[str, list[str]] = {cctld: [] for cctld in CCTLDS}
    for entity in ctx.world.domains_in(DatasetTag.ALEXA):
        if entity.cctld in by_cctld:
            by_cctld[entity.cctld].append(entity.name)
    return {cctld: sorted(domains) for cctld, domains in by_cctld.items() if domains}


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT) -> Fig8Result:
    inferences = ctx.priority(DatasetTag.ALEXA, snapshot_index)
    assert inferences is not None
    preferences = country_preferences(
        inferences, domains_by_cctld(ctx), ctx.company_map, FOCAL_PROVIDERS
    )
    return Fig8Result(preferences=preferences)
