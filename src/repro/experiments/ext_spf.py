"""Extension experiment — SPF-revealed eventual providers.

Not a paper table: this implements the future-work heuristic of Section
3.4 and reports (a) how often SPF reveals the mailbox provider behind a
filtering front, and (b) how the Google/Microsoft counts grow once those
hidden customers are re-attributed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.eventual import (
    EventualProviderReport,
    adjusted_mailbox_counts,
    eventual_provider_report,
)
from ..analysis.market_share import compute_market_share
from ..analysis.render import format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext


@dataclass
class ExtSPFResult:
    reports: dict[DatasetTag, EventualProviderReport]
    adjustments: dict[DatasetTag, list[tuple[str, float, float]]]

    def render(self) -> str:
        rows = []
        for dataset, report in self.reports.items():
            rows.append(
                [
                    dataset.value.upper(),
                    report.filtered_total,
                    report.revealed,
                    f"{100 * report.reveal_rate:.0f}%",
                ]
            )
        summary = format_table(
            ["Dataset", "Filter-fronted domains", "SPF reveals mailbox", "Rate"],
            rows,
            title="Extension — eventual providers behind e-mail security services",
        )
        adjustment_rows = []
        for dataset, entries in self.adjustments.items():
            for slug, before, after in entries:
                adjustment_rows.append(
                    [dataset.value.upper(), slug, before, after, f"+{after - before:.0f}"]
                )
        adjustments = format_table(
            ["Dataset", "Mailbox provider", "MX-level count", "With SPF", "Hidden customers"],
            adjustment_rows,
            title="Mailbox-provider counts after re-attributing filtered domains",
        )
        return summary + "\n\n" + adjustments


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT) -> ExtSPFResult:
    reports = {}
    adjustments = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.GOV):
        measurements = ctx.measurements(dataset, snapshot_index)
        inferences = ctx.priority(dataset, snapshot_index)
        assert measurements is not None and inferences is not None
        report = eventual_provider_report(measurements, inferences, ctx.company_map)
        reports[dataset] = report

        share = compute_market_share(inferences, ctx.domains(dataset), ctx.company_map)
        base = {slug: share.count_of(slug) for slug in ("google", "microsoft")}
        adjusted = adjusted_mailbox_counts(report, base)
        adjustments[dataset] = [
            (slug, base[slug], adjusted[slug]) for slug in ("google", "microsoft")
        ]
    return ExtSPFResult(reports=reports, adjustments=adjustments)
