"""Experiment E4 — Table 5: provider IDs operated by one company.

Empirically collects, from a pipeline run, the distinct provider IDs that
resolve to each focal company together with the ASNs its infrastructure is
announced from — the Microsoft / ProofPoint table of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import format_table
from ..core.types import DomainStatus
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext

FOCAL_COMPANIES = ("microsoft", "proofpoint")


@dataclass
class Tab5Result:
    # company slug → (provider IDs observed, ASNs observed)
    entries: dict[str, tuple[list[str], list[tuple[int, str]]]]

    def render(self) -> str:
        rows = []
        for slug, (provider_ids, asns) in self.entries.items():
            depth = max(len(provider_ids), len(asns))
            for index in range(depth):
                rows.append(
                    [
                        slug if index == 0 else "",
                        provider_ids[index] if index < len(provider_ids) else "",
                        f"{asns[index][0]} ({asns[index][1]})" if index < len(asns) else "",
                    ]
                )
        return format_table(
            ["Company", "Provider ID", "ASN"],
            rows,
            title="Table 5 — provider IDs operated by focal companies",
        )


def run(
    ctx: StudyContext,
    snapshot_index: int = LAST_SNAPSHOT,
    companies: tuple[str, ...] = FOCAL_COMPANIES,
) -> Tab5Result:
    observed_ids: dict[str, set[str]] = {slug: set() for slug in companies}
    observed_asns: dict[str, set[tuple[int, str]]] = {slug: set() for slug in companies}

    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        inferences = ctx.priority(dataset, snapshot_index)
        measurements = ctx.measurements(dataset, snapshot_index)
        assert inferences is not None and measurements is not None
        for domain, inference in inferences.items():
            if inference.status is not DomainStatus.INFERRED:
                continue
            mx_by_name = {mx.name: mx for mx in measurements[domain].primary_mx}
            for identity in inference.mx_identities:
                slug = ctx.company_map.slug_for_provider_id(identity.provider_id)
                if slug not in observed_ids:
                    continue
                observed_ids[slug].add(identity.provider_id)
                mx = mx_by_name.get(identity.mx_name)
                if mx is None:
                    continue
                for ip in mx.ips:
                    if ip.as_info is not None:
                        observed_asns[slug].add((ip.as_info.asn, ip.as_info.name))

    entries = {
        slug: (sorted(observed_ids[slug]), sorted(observed_asns[slug]))
        for slug in companies
    }
    return Tab5Result(entries=entries)
