"""Experiment E2 — Figure 4: accuracy of the four approaches.

For each corpus, samples 200 SMTP-running domains (plain and unique-MX)
and scores MX-only, cert-based, banner-based and priority-based inference
against ground truth, reporting step-4 examination counts for the
priority approach.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.accuracy import AccuracyEvaluation, evaluate_approaches
from ..analysis.render import format_table
from ..core.baselines import ALL_APPROACHES
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext

DATASET_TITLES = {
    DatasetTag.ALEXA: "Alexa",
    DatasetTag.COM: ".com",
    DatasetTag.GOV: ".gov",
}


@dataclass
class Fig4Result:
    evaluations: dict[DatasetTag, AccuracyEvaluation]

    def render(self) -> str:
        rows = []
        for dataset, evaluation in self.evaluations.items():
            for cell in evaluation.cells:
                rows.append(
                    [
                        cell.sample_set,
                        cell.approach,
                        f"{cell.correct}/{cell.total}",
                        f"{100 * cell.accuracy:.1f}%",
                        cell.examined if cell.approach == "priority-based" else "",
                    ]
                )
        return format_table(
            ["Sample", "Approach", "Correct", "Accuracy", "Examined (step 4)"],
            rows,
            title="Figure 4 — accuracy of inference approaches on 200-domain samples",
        )


def run(
    ctx: StudyContext,
    snapshot_index: int = LAST_SNAPSHOT,
    sample_size: int = 200,
    seed: int = 1729,
) -> Fig4Result:
    evaluations: dict[DatasetTag, AccuracyEvaluation] = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        measurements = ctx.measurements(dataset, snapshot_index)
        approaches = ctx.all_approaches(dataset, snapshot_index)
        assert measurements is not None and approaches is not None
        assert set(approaches) == set(ALL_APPROACHES)
        evaluations[dataset] = evaluate_approaches(
            dataset_name=DATASET_TITLES[dataset],
            measurements=measurements,
            inferences_by_approach=approaches,
            ground_truth_of=ctx.truth_fn(snapshot_index),
            company_map=ctx.company_map,
            sample_size=sample_size,
            seed=seed,
        )
    return Fig4Result(evaluations=evaluations)
