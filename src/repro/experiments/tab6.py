"""Experiment E9 — Table 6 (appendix): top-15 companies per corpus."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.market_share import ShareRow, compute_market_share, top_rows_with_display
from ..analysis.render import format_count_percent, format_table
from ..world.entities import DatasetTag
from .common import LAST_SNAPSHOT, StudyContext


@dataclass
class Tab6Result:
    rankings: dict[DatasetTag, list[ShareRow]]
    totals: dict[DatasetTag, tuple[float, float]]  # (count, percent) of top-15

    def render(self) -> str:
        datasets = list(self.rankings)
        headers = ["Rank"] + [dataset.value.upper() for dataset in datasets]
        depth = max(len(rows) for rows in self.rankings.values())
        rows = []
        for index in range(depth):
            row: list[object] = [index + 1]
            for dataset in datasets:
                ranking = self.rankings[dataset]
                if index < len(ranking):
                    entry = ranking[index]
                    row.append(
                        f"{entry.display} {format_count_percent(entry.count, entry.percent)}"
                    )
                else:
                    row.append("")
            rows.append(row)
        total_row: list[object] = ["Total"]
        for dataset in datasets:
            count, percent = self.totals[dataset]
            total_row.append(format_count_percent(count, percent))
        rows.append(total_row)
        return format_table(
            headers, rows, title="Table 6 — top 15 companies per dataset (June 2021)"
        )


def run(ctx: StudyContext, snapshot_index: int = LAST_SNAPSHOT, k: int = 15) -> Tab6Result:
    rankings = {}
    totals = {}
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        inferences = ctx.priority(dataset, snapshot_index)
        assert inferences is not None
        domains = ctx.domains(dataset)
        share = compute_market_share(inferences, domains, ctx.company_map)
        rows = top_rows_with_display(share, ctx.company_map, k)
        rankings[dataset] = rows
        count = sum(row.count for row in rows)
        percent = sum(row.percent for row in rows)
        totals[dataset] = (count, percent)
    return Tab6Result(rankings=rankings, totals=totals)
