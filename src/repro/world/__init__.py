"""Synthetic Internet: catalog, population model, evolution, and builder."""

from .build import World, WorldConfig, build_world
from .catalog import CATALOG, catalog_by_slug, hosting_companies, mail_companies, security_companies
from .mailnet import build_mail_network, sending_mta
from .stats import WorldStats, collect_stats
from .toplist import CorpusFunnel, ToplistSimulator, build_study_corpus, stable_domains
from .entities import (
    ASNSpec,
    CompanyInfra,
    CompanyKind,
    CompanySpec,
    DatasetTag,
    DomainAssignment,
    DomainEntity,
    MailHost,
    ProvisioningStyle,
    TRUTH_NONE,
    TRUTH_SELF,
)
from .population import NUM_SNAPSHOTS, SNAPSHOT_DATES

__all__ = [
    "ASNSpec",
    "CATALOG",
    "CompanyInfra",
    "CorpusFunnel",
    "ToplistSimulator",
    "WorldStats",
    "build_mail_network",
    "build_study_corpus",
    "collect_stats",
    "sending_mta",
    "stable_domains",
    "CompanyKind",
    "CompanySpec",
    "DatasetTag",
    "DomainAssignment",
    "DomainEntity",
    "MailHost",
    "NUM_SNAPSHOTS",
    "ProvisioningStyle",
    "SNAPSHOT_DATES",
    "TRUTH_NONE",
    "TRUTH_SELF",
    "World",
    "WorldConfig",
    "build_world",
    "catalog_by_slug",
    "hosting_companies",
    "mail_companies",
    "security_companies",
]
