"""The company catalog: every organization the synthetic Internet contains.

The catalog mirrors the provider ecosystem the paper reports (Figure 5,
Figure 6, Tables 5 and 6): the two dominant mailbox providers, the regional
mailbox providers, the five e-mail security companies the paper tracks, the
web-hosting companies, the two US agencies visible in federal `.gov` data,
and a Google Cloud entry so security vendors can rent IP space inside
Google's network (the ``beats24-7.com`` corner case).

AS numbers follow the real operators where the paper names them
(Google 15169, Microsoft 8075, ProofPoint's four ASes from Table 5, …) so
rendered tables read like the paper's.
"""

from __future__ import annotations

from ..smtp.banner import BannerStyle
from .entities import ASNSpec, CompanyKind, CompanySpec

# --------------------------------------------------------------------------
# Mailbox providers
# --------------------------------------------------------------------------

GOOGLE = CompanySpec(
    slug="google",
    display_name="Google",
    kind=CompanyKind.MAILBOX,
    country="US",
    asns=(ASNSpec(15169, "Google", "US"),),
    provider_ids=("google.com", "googlemail.com", "smtp.goog"),
    mx_host_count=5,
    ips_per_host=2,
    mx_fqdns=(
        "aspmx.l.google.com",
        "alt1.aspmx.l.google.com",
        "alt2.aspmx.l.google.com",
        "aspmx2.googlemail.com",
        "aspmx3.googlemail.com",
    ),
    cert_cn="mx.google.com",
    cert_extra_sans=("mx1.smtp.goog",),
)

MICROSOFT = CompanySpec(
    slug="microsoft",
    display_name="Microsoft",
    kind=CompanyKind.MAILBOX,
    country="US",
    # Table 5: Microsoft operates from its own AS plus regional partners.
    asns=(
        ASNSpec(8075, "Microsoft", "US"),
        ASNSpec(200517, "MS Deutschland", "DE"),
        ASNSpec(58593, "Blue Cloud", "CN"),
    ),
    provider_ids=("outlook.com", "office365.us", "hotmail.com", "outlook.cn", "outlook.de"),
    mx_host_count=5,
    ips_per_host=2,
    mx_fqdns=(
        "mx1.mail.protection.outlook.com",
        "mx2.mail.protection.outlook.com",
        "mx3.mail.protection.outlook.com",
        "mx1.office365.us",
        "mx1.outlook.de",
    ),
    customer_mx_template="{label}-{hash4}.mail.protection.outlook.com",
    regional_shared_fraction=0.15,
)

YANDEX = CompanySpec(
    slug="yandex",
    display_name="Yandex",
    kind=CompanyKind.MAILBOX,
    country="RU",
    asns=(ASNSpec(13238, "Yandex", "RU"),),
    provider_ids=("yandex.net", "yandex.ru"),
    mx_host_count=3,
)

TENCENT = CompanySpec(
    slug="tencent",
    display_name="Tencent",
    kind=CompanyKind.MAILBOX,
    country="CN",
    asns=(ASNSpec(45090, "Tencent", "CN"),),
    provider_ids=("qq.com", "exmail.qq.com"),
    mx_host_count=3,
)

ZOHO = CompanySpec(
    slug="zoho",
    display_name="Zoho",
    kind=CompanyKind.MAILBOX,
    country="US",
    asns=(ASNSpec(2639, "Zoho", "US"),),
    provider_ids=("zoho.com",),
)

MAIL_RU = CompanySpec(
    slug="mail_ru",
    display_name="Mail.Ru",
    kind=CompanyKind.MAILBOX,
    country="RU",
    asns=(ASNSpec(47764, "Mail.Ru", "RU"),),
    provider_ids=("mail.ru",),
)

YAHOO = CompanySpec(
    slug="yahoo",
    display_name="Yahoo",
    kind=CompanyKind.MAILBOX,
    country="US",
    asns=(ASNSpec(36647, "Yahoo", "US"),),
    provider_ids=("yahoodns.net", "yahoo.com"),
)

INTERMEDIA = CompanySpec(
    slug="intermedia",
    display_name="IntermediaCloud",
    kind=CompanyKind.MAILBOX,
    country="US",
    asns=(ASNSpec(16406, "Intermedia", "US"),),
    provider_ids=("serverdata.net", "intermedia.net"),
)

# --------------------------------------------------------------------------
# E-mail security companies (the five tracked in Figures 6b/6e/6h, plus the
# smaller ones appearing in Table 6)
# --------------------------------------------------------------------------

PROOFPOINT = CompanySpec(
    slug="proofpoint",
    display_name="ProofPoint",
    kind=CompanyKind.SECURITY,
    country="US",
    # Table 5: ProofPoint's provider IDs and ASes.
    asns=(
        ASNSpec(22843, "ProofPoint", "US"),
        ASNSpec(26211, "ProofPoint", "US"),
        ASNSpec(52129, "ProofPoint", "US"),
        ASNSpec(13916, "ProofPoint", "US"),
    ),
    provider_ids=("pphosted.com", "ppe-hosted.com", "gpphosted.com", "ppops.net"),
    mx_host_count=4,
    mx_fqdns=(
        "mx0a.pphosted.com",
        "mx0b.pphosted.com",
        "mx1.ppe-hosted.com",
        "mxa.ppops.net",
    ),
    customer_mx_template="mx0a-{hash8}.{pid}",
)

MIMECAST = CompanySpec(
    slug="mimecast",
    display_name="Mimecast",
    kind=CompanyKind.SECURITY,
    country="UK",
    asns=(ASNSpec(30031, "Mimecast", "UK"),),
    provider_ids=("mimecast.com",),
    mx_host_count=3,
)

BARRACUDA = CompanySpec(
    slug="barracuda",
    display_name="Barracuda",
    kind=CompanyKind.SECURITY,
    country="US",
    asns=(ASNSpec(15324, "Barracuda", "US"),),
    provider_ids=("barracudanetworks.com", "ess.barracudanetworks.com"),
)

IRONPORT = CompanySpec(
    slug="ironport",
    display_name="Cisco Ironport",
    kind=CompanyKind.SECURITY,
    country="US",
    asns=(ASNSpec(109, "Cisco", "US"),),
    provider_ids=("iphmx.com",),
    customer_mx_template="mx1.{label}-{hash4}.iphmx.com",
    # Ironport appliances frequently present the *customer's* certificate
    # (the utexas.edu situation, Section 3.1.4).
    customer_cert_fraction=0.4,
)

APPRIVER = CompanySpec(
    slug="appriver",
    display_name="AppRiver",
    kind=CompanyKind.SECURITY,
    country="US",
    asns=(ASNSpec(27357, "AppRiver", "US"),),
    provider_ids=("arsmtp.com",),
)

MESSAGELABS = CompanySpec(
    slug="messagelabs",
    display_name="MessageLabs",
    kind=CompanyKind.SECURITY,
    country="UK",
    asns=(ASNSpec(21345, "MessageLabs", "UK"),),
    provider_ids=("messagelabs.com",),
)

TRENDMICRO = CompanySpec(
    slug="trendmicro",
    display_name="TrendMicro",
    kind=CompanyKind.SECURITY,
    country="JP",
    asns=(ASNSpec(17212, "TrendMicro", "JP"),),
    provider_ids=("trendmicro.eu", "trendmicro.com"),
)

SOPHOS = CompanySpec(
    slug="sophos",
    display_name="Sophos",
    kind=CompanyKind.SECURITY,
    country="UK",
    asns=(ASNSpec(31735, "Sophos", "UK"),),
    provider_ids=("sophos.com", "reflexion.net"),
)

SOLARWINDS = CompanySpec(
    slug="solarwinds",
    display_name="Solarwinds",
    kind=CompanyKind.SECURITY,
    country="US",
    asns=(ASNSpec(13782, "Solarwinds", "US"),),
    provider_ids=("spamexperts.com",),
)

# --------------------------------------------------------------------------
# Web hosting companies
# --------------------------------------------------------------------------

GODADDY = CompanySpec(
    slug="godaddy",
    display_name="GoDaddy",
    kind=CompanyKind.HOSTING,
    country="US",
    asns=(ASNSpec(26496, "GoDaddy", "US"),),
    provider_ids=("secureserver.net", "godaddy.com"),
    mx_host_count=4,
    default_mx_is_customer_named=False,
    vps_cert_domain="secureserver.net",
    vps_host_pattern=r"^s\d+-\d+-\d+\.secureserver\.net$",
    dedicated_host_pattern=r"^mailstore\d+\.secureserver\.net$",
)

UNITEDINTERNET = CompanySpec(
    slug="unitedinternet",
    display_name="UnitedInternet",
    kind=CompanyKind.HOSTING,
    country="DE",
    asns=(ASNSpec(8560, "IONOS (UnitedInternet)", "DE"),),
    provider_ids=("kundenserver.de", "ui-dns.de"),
    mx_host_count=3,
    default_mx_is_customer_named=True,
)

EIG = CompanySpec(
    slug="eig",
    display_name="EIG",
    kind=CompanyKind.HOSTING,
    country="US",
    asns=(ASNSpec(46606, "Unified Layer (EIG)", "US"),),
    provider_ids=("bluehost.com", "hostgator.com"),
    # The paper notes Censys is "only intermittently successful in scanning
    # EIG for unknown reasons"; model that as low scan coverage.
    censys_coverage=0.35,
    default_mx_is_customer_named=True,
)

OVH = CompanySpec(
    slug="ovh",
    display_name="OVH",
    kind=CompanyKind.HOSTING,
    country="FR",
    asns=(ASNSpec(16276, "OVH", "FR"),),
    provider_ids=("ovh.net", "mail.ovh.net"),
    default_mx_is_customer_named=False,
    vps_cert_domain="ovh.net",
    vps_host_pattern=r"^vps-[0-9a-f]+\.vps\.ovh\.net$",
)

NAMECHEAP = CompanySpec(
    slug="namecheap",
    display_name="NameCheap",
    kind=CompanyKind.HOSTING,
    country="US",
    asns=(ASNSpec(22612, "NameCheap", "US"),),
    provider_ids=("registrar-servers.com", "privateemail.com"),
    default_mx_is_customer_named=False,
)

TUCOWS = CompanySpec(
    slug="tucows",
    display_name="Tucows",
    kind=CompanyKind.HOSTING,
    country="CA",
    asns=(ASNSpec(15348, "Tucows", "CA"),),
    provider_ids=("hostedemail.com", "tucows.com"),
)

STRATO = CompanySpec(
    slug="strato",
    display_name="Strato",
    kind=CompanyKind.HOSTING,
    country="DE",
    asns=(ASNSpec(6724, "Strato", "DE"),),
    provider_ids=("rzone.de", "strato.de"),
    default_mx_is_customer_named=True,
)

RACKSPACE = CompanySpec(
    slug="rackspace",
    display_name="Rackspace",
    kind=CompanyKind.HOSTING,
    country="US",
    asns=(ASNSpec(33070, "Rackspace", "US"),),
    provider_ids=("emailsrvr.com", "rackspace.com"),
)

WEBCOM = CompanySpec(
    slug="webcom",
    display_name="Web.com Group",
    kind=CompanyKind.HOSTING,
    country="US",
    asns=(ASNSpec(29873, "Web.com", "US"),),
    provider_ids=("netsolmail.net", "web.com"),
    default_mx_is_customer_named=True,
)

ARUBA = CompanySpec(
    slug="aruba",
    display_name="Aruba",
    kind=CompanyKind.HOSTING,
    country="IT",
    asns=(ASNSpec(31034, "Aruba", "IT"),),
    provider_ids=("aruba.it", "arubabusiness.it"),
    default_mx_is_customer_named=True,
)

SITEGROUND = CompanySpec(
    slug="siteground",
    display_name="SiteGround",
    kind=CompanyKind.HOSTING,
    country="BG",
    asns=(ASNSpec(396982, "SiteGround (GCP)", "US"),),
    provider_ids=("sgvps.net", "siteground.com"),
    default_mx_is_customer_named=True,
)

UKRAINE_UA = CompanySpec(
    slug="ukraine_ua",
    display_name="Ukraine.ua",
    kind=CompanyKind.HOSTING,
    country="UA",
    asns=(ASNSpec(200000, "Hosting Ukraine", "UA"),),
    provider_ids=("ukraine.com.ua",),
    default_mx_is_customer_named=True,
    has_valid_cert=False,
)

BEGET = CompanySpec(
    slug="beget",
    display_name="Beget",
    kind=CompanyKind.HOSTING,
    country="RU",
    asns=(ASNSpec(198610, "Beget", "RU"),),
    provider_ids=("beget.com", "beget.ru"),
    default_mx_is_customer_named=True,
    has_valid_cert=False,
)

# --------------------------------------------------------------------------
# Cloud IaaS (address space that hosts *other* companies' servers)
# --------------------------------------------------------------------------

GOOGLE_CLOUD = CompanySpec(
    slug="google_cloud",
    display_name="Google Cloud",
    kind=CompanyKind.CLOUD,
    country="US",
    # Announced from Google's AS — that is precisely what makes the
    # ASN-based inference unreliable (Section 3.1.2).
    asns=(ASNSpec(15169, "Google", "US"),),
    provider_ids=("googleusercontent.com",),
    mx_host_count=0,
)

# A security vendor that rents Google Cloud space: the beats24-7.com case.
MAILSPAMPROTECTION = CompanySpec(
    slug="mailspamprotection",
    display_name="SiteLock (mailspamprotection)",
    kind=CompanyKind.SECURITY,
    country="US",
    asns=(ASNSpec(15169, "Google", "US"),),  # hosted inside Google Cloud
    provider_ids=("mailspamprotection.com",),
    mx_host_count=3,
    mx_fqdns=(
        "mx10.mailspamprotection.com",
        "mx20.mailspamprotection.com",
        "se26.mailspamprotection.com",
    ),
    cert_cn="*.mailspamprotection.com",
)

# --------------------------------------------------------------------------
# Government agencies operating shared mail infrastructure (Table 6, GOV)
# --------------------------------------------------------------------------

HHS = CompanySpec(
    slug="hhs",
    display_name="hhs.gov",
    kind=CompanyKind.AGENCY,
    country="US",
    asns=(ASNSpec(1999, "US Dept of Health", "US"),),
    provider_ids=("hhs.gov",),
)

TREASURY = CompanySpec(
    slug="treasury",
    display_name="treasury.gov",
    kind=CompanyKind.AGENCY,
    country="US",
    asns=(ASNSpec(1733, "US Dept of Treasury", "US"),),
    provider_ids=("treasury.gov",),
)


CATALOG: tuple[CompanySpec, ...] = (
    GOOGLE, MICROSOFT, YANDEX, TENCENT, ZOHO, MAIL_RU, YAHOO, INTERMEDIA,
    PROOFPOINT, MIMECAST, BARRACUDA, IRONPORT, APPRIVER, MESSAGELABS,
    TRENDMICRO, SOPHOS, SOLARWINDS,
    GODADDY, UNITEDINTERNET, EIG, OVH, NAMECHEAP, TUCOWS, STRATO, RACKSPACE,
    WEBCOM, ARUBA, SITEGROUND, UKRAINE_UA, BEGET,
    GOOGLE_CLOUD, MAILSPAMPROTECTION, HHS, TREASURY,
)


def catalog_by_slug() -> dict[str, CompanySpec]:
    return {spec.slug: spec for spec in CATALOG}


def mail_companies() -> list[CompanySpec]:
    """Companies that actually operate customer-facing MX infrastructure."""
    return [spec for spec in CATALOG if spec.mx_host_count > 0 and spec.kind is not CompanyKind.CLOUD]


def security_companies() -> list[CompanySpec]:
    return [spec for spec in CATALOG if spec.kind is CompanyKind.SECURITY]


def hosting_companies() -> list[CompanySpec]:
    return [spec for spec in CATALOG if spec.kind is CompanyKind.HOSTING]
