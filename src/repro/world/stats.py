"""World statistics: composition summaries of a built world.

Diagnostic views used by documentation, examples, and tests: corpus sizes,
TLD mix, provisioning-style mix, ground-truth category mix — the knobs of
:mod:`repro.world.population` read back from an actual build.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .build import World
from .entities import CompanyKind, DatasetTag
from .population import NUM_SNAPSHOTS


@dataclass
class WorldStats:
    """Composition counters for one world at one snapshot."""

    snapshot_index: int
    corpus_sizes: dict[DatasetTag, int]
    tld_mix: Counter
    style_mix: Counter
    truth_kind_mix: Counter
    company_counts: dict[CompanyKind, int]
    total_servers: int
    total_zones: int

    def render(self) -> str:
        # Imported here: repro.analysis depends on repro.core which depends
        # on repro.world — a module-level import would close that cycle.
        from ..analysis.render import format_table

        corpus_rows = [[tag.value, count] for tag, count in self.corpus_sizes.items()]
        style_rows = [
            [style, count] for style, count in self.style_mix.most_common()
        ]
        kind_rows = [
            [kind, count] for kind, count in self.truth_kind_mix.most_common()
        ]
        company_rows = [
            [kind.value, count] for kind, count in sorted(
                self.company_counts.items(), key=lambda item: item[0].value
            )
        ]
        tld_rows = [[f".{tld}", count] for tld, count in self.tld_mix.most_common(12)]
        sections = [
            format_table(["Corpus", "Domains"], corpus_rows, title="Corpora"),
            format_table(["TLD", "Domains"], tld_rows, title="Top TLDs"),
            format_table(
                ["Provisioning style", "Domains"], style_rows,
                title=f"Styles at snapshot {self.snapshot_index}",
            ),
            format_table(
                ["Operator kind", "Domains"], kind_rows,
                title=f"Ground-truth operators at snapshot {self.snapshot_index}",
            ),
            format_table(["Company kind", "Companies"], company_rows, title="Companies"),
            format_table(
                ["Resource", "Count"],
                [["SMTP servers", self.total_servers], ["DNS zones", self.total_zones]],
                title="Infrastructure",
            ),
        ]
        return "\n\n".join(sections)


def collect_stats(world: World, snapshot_index: int = NUM_SNAPSHOTS - 1) -> WorldStats:
    """Summarize a world's composition at one snapshot."""
    corpus_sizes: dict[DatasetTag, int] = {tag: 0 for tag in DatasetTag}
    tld_mix: Counter = Counter()
    style_mix: Counter = Counter()
    truth_kind_mix: Counter = Counter()

    for entity in world.domains.values():
        corpus_sizes[entity.dataset] += 1
        tld_mix[entity.name.rsplit(".", 1)[-1]] += 1
        assignment = entity.assignment_at(snapshot_index)
        style_mix[assignment.style.value] += 1
        if assignment.company_slug is not None:
            kind = world.companies[assignment.company_slug].spec.kind.value
        else:
            kind = assignment.truth.lower()
        truth_kind_mix[kind] += 1

    company_counts: dict[CompanyKind, int] = Counter()
    for infra in world.companies.values():
        company_counts[infra.spec.kind] += 1

    return WorldStats(
        snapshot_index=snapshot_index,
        corpus_sizes=corpus_sizes,
        tld_mix=tld_mix,
        style_mix=style_mix,
        truth_kind_mix=truth_kind_mix,
        company_counts=dict(company_counts),
        total_servers=len(world.host_table),
        total_zones=len(world.snapshot_zones[snapshot_index]),
    )
