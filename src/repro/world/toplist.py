"""Toplist simulation and stable-corpus construction (Section 4.1).

The paper does not study the raw Alexa Top 1M: rankings churn heavily
between snapshots [31], so it keeps only domains that appear on the list
across all nine snapshots, then intersects with domains that publish MX
records throughout.  This module reproduces that corpus construction:

* :class:`ToplistSimulator` renders a ranked list per snapshot — the
  world's Alexa corpus with per-snapshot rank noise, diluted with
  ephemeral "churner" domains that only appear on some snapshots;
* :func:`stable_domains` recovers the cross-snapshot-stable subset;
* :func:`build_study_corpus` applies the full §4.1 recipe
  (toplist-stable ∩ MX-stable) and reports the funnel counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..measure.openintel import OpenINTELPlatform
from .build import World
from .entities import DatasetTag
from .evolve import domain_fingerprint
from .population import NUM_SNAPSHOTS, synth_label


@dataclass(frozen=True)
class ToplistEntry:
    rank: int
    domain: str


class ToplistSimulator:
    """Per-snapshot ranked lists over the world's Alexa corpus.

    ``churn_rate`` controls the fraction of each snapshot's list that is
    ephemeral (present in that snapshot only) — the churn documented by
    Scheitle et al. [31] that motivates the stability filter.
    ``rank_jitter`` shifts a stable domain's rank between snapshots.
    """

    def __init__(
        self,
        world: World,
        churn_rate: float = 0.25,
        rank_jitter: float = 0.15,
        seed: int = 2021,
    ):
        if not 0 <= churn_rate < 1:
            raise ValueError("churn_rate must be in [0, 1)")
        self.world = world
        self.churn_rate = churn_rate
        self.rank_jitter = rank_jitter
        self.seed = seed
        self._stable = sorted(
            (entity.alexa_rank or 1, entity.name)
            for entity in world.domains_in(DatasetTag.ALEXA)
        )

    def snapshot(self, snapshot_index: int) -> list[ToplistEntry]:
        """The ranked list observed at one snapshot."""
        if not 0 <= snapshot_index < NUM_SNAPSHOTS:
            raise IndexError(f"no snapshot {snapshot_index}")
        rng = random.Random(self.seed * 1_000_003 + snapshot_index)

        scored: list[tuple[float, str]] = []
        for base_rank, domain in self._stable:
            jitter = 1.0 + rng.uniform(-self.rank_jitter, self.rank_jitter)
            # Stable per-domain bias keeps a domain's neighborhood stable
            # across snapshots while still reshuffling locally.
            bias = 1.0 + (domain_fingerprint(domain, "rankbias") % 1000) / 10_000.0
            scored.append((base_rank * jitter * bias, domain))

        churners = int(len(self._stable) * self.churn_rate / (1 - self.churn_rate))
        max_rank = max((rank for rank, _domain in self._stable), default=1)
        for index in range(churners):
            name = f"{synth_label(rng)}-{snapshot_index}x{index}.com"
            scored.append((rng.uniform(1, max_rank * 1.2), name))

        scored.sort()
        return [
            ToplistEntry(rank=position + 1, domain=domain)
            for position, (_score, domain) in enumerate(scored)
        ]

    def all_snapshots(self) -> list[list[ToplistEntry]]:
        return [self.snapshot(index) for index in range(NUM_SNAPSHOTS)]


def stable_domains(toplists: list[list[ToplistEntry]]) -> list[str]:
    """Domains present on *every* list (the paper's stability filter)."""
    if not toplists:
        return []
    present = set(entry.domain for entry in toplists[0])
    for entries in toplists[1:]:
        present &= {entry.domain for entry in entries}
    return sorted(present)


@dataclass(frozen=True)
class CorpusFunnel:
    """The §4.1 corpus-construction funnel for the Alexa list."""

    union_domains: int          # ever seen on any snapshot's list
    list_stable: int            # on the list at every snapshot
    mx_stable: int              # ...and publishing MX at every snapshot
    corpus: tuple[str, ...]     # the final study corpus

    @property
    def churn_loss(self) -> int:
        return self.union_domains - self.list_stable

    @property
    def mx_loss(self) -> int:
        return self.list_stable - self.mx_stable


def build_study_corpus(
    world: World,
    openintel: OpenINTELPlatform,
    churn_rate: float = 0.25,
    seed: int = 2021,
) -> CorpusFunnel:
    """Apply the paper's full corpus recipe: list-stable ∩ MX-stable."""
    simulator = ToplistSimulator(world, churn_rate=churn_rate, seed=seed)
    toplists = simulator.all_snapshots()
    union: set[str] = set()
    for entries in toplists:
        union |= {entry.domain for entry in entries}
    list_stable = stable_domains(toplists)
    mx_stable = openintel.stable_domains(list_stable)
    return CorpusFunnel(
        union_domains=len(union),
        list_stable=len(list_stable),
        mx_stable=len(mx_stable),
        corpus=tuple(mx_stable),
    )
