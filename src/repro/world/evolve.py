"""Longitudinal category assignment: who serves each domain at each snapshot.

Given a segment's share table (category → trajectory), this module assigns
every domain in the segment a category *per snapshot* such that:

* per-snapshot category counts match the trajectory targets exactly
  (largest-remainder apportionment),
* domains are sticky — net share drift is realized by moving the minimum
  number of domains, picked at random,
* an additional seeded swap volume creates the bidirectional gross churn the
  paper's Sankey diagram (Figure 7) shows: providers both gain and lose
  domains even when their net share rises.

Categories are company slugs plus the ``SELF`` / ``NONE`` sentinels and the
``OTHERS`` residual; OTHERS is resolved to a stable per-domain small
provider so the long tail is made of concrete companies.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from .entities import ProvisioningStyle
from .population import NONE, NUM_SNAPSHOTS, OTHERS, SELF, ShareTable, snapshot_fraction


def domain_fingerprint(domain: str, salt: str = "") -> int:
    """Stable, unsalted 32-bit fingerprint of a domain name."""
    return zlib.crc32(f"{salt}|{domain}".encode())


def apportion(total: int, shares: dict[str, float]) -> dict[str, int]:
    """Largest-remainder apportionment of *total* items across categories.

    Shares must sum to at most 1 (a tiny float fringe is tolerated); the
    shortfall goes to ``OTHERS``.  Deterministic: ties break by category
    name.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    share_sum = sum(shares.values())
    if share_sum > 1.0 + 1e-9:
        raise ValueError(f"shares sum to {share_sum:.4f} > 1")
    quotas = {name: total * share for name, share in shares.items()}
    counts = {name: int(quota) for name, quota in quotas.items()}
    assigned = sum(counts.values())
    remainders = sorted(
        quotas, key=lambda name: (quotas[name] - counts[name], name), reverse=True
    )
    leftover = total - assigned
    # Top up fractional parts only as far as the table's own mass; the
    # rest of the leftover is the OTHERS residual.
    others_quota = total - min(total, round(sum(quotas.values())))
    for name in remainders:
        if leftover <= others_quota:
            break
        counts[name] += 1
        leftover -= 1
    counts[OTHERS] = counts.get(OTHERS, 0) + leftover
    return counts


@dataclass
class SegmentAssignment:
    """Per-domain category sequences for one segment."""

    domains: list[str]
    categories: dict[str, list[str]]  # domain -> category per snapshot

    def at(self, domain: str, snapshot_index: int) -> str:
        return self.categories[domain][snapshot_index]


class SegmentEvolver:
    """Assigns categories across snapshots for one segment of domains."""

    def __init__(
        self,
        table: ShareTable,
        rng: random.Random,
        others_pool: tuple[str, ...],
        swap_rate: float = 0.015,
        num_snapshots: int = NUM_SNAPSHOTS,
    ):
        if not others_pool:
            raise ValueError("others_pool must contain at least one slug")
        self.table = table
        self.rng = rng
        self.others_pool = others_pool
        self.swap_rate = swap_rate
        self.num_snapshots = num_snapshots

    def _targets(self, total: int, snapshot_index: int) -> dict[str, int]:
        t = snapshot_fraction(snapshot_index)
        shares = {name: trajectory.at(t) for name, trajectory in self.table.items()}
        return apportion(total, shares)

    def _resolve_others(self, domain: str) -> str:
        """Stable small-provider choice for a domain in the OTHERS residual."""
        index = domain_fingerprint(domain, "others") % len(self.others_pool)
        return self.others_pool[index]

    def assign(self, domains: list[str]) -> SegmentAssignment:
        total = len(domains)
        sequences: dict[str, list[str]] = {domain: [] for domain in domains}
        if total == 0:
            return SegmentAssignment(domains=[], categories={})

        # Snapshot 0: random permutation sliced by target counts.
        order = list(domains)
        self.rng.shuffle(order)
        targets = self._targets(total, 0)
        current: dict[str, str] = {}
        cursor = 0
        for category in sorted(targets):
            count = targets[category]
            for domain in order[cursor:cursor + count]:
                current[domain] = category
            cursor += count
        assert cursor == total

        self._record(sequences, current)

        for snapshot_index in range(1, self.num_snapshots):
            targets = self._targets(total, snapshot_index)
            self._drift_to_targets(current, targets)
            self._swap_churn(current, total)
            self._record(sequences, current)

        # Resolve the OTHERS residual in place — a second full
        # domain→sequence mapping would double the segment's footprint
        # for the duration of every build at large REPRO_SCALE.
        for domain, sequence in sequences.items():
            for index, category in enumerate(sequence):
                if category == OTHERS:
                    sequence[index] = self._resolve_others(domain)
        return SegmentAssignment(domains=list(domains), categories=sequences)

    def _record(self, sequences: dict[str, list[str]], current: dict[str, str]) -> None:
        for domain, category in current.items():
            sequences[domain].append(category)

    def _drift_to_targets(self, current: dict[str, str], targets: dict[str, int]) -> None:
        members: dict[str, list[str]] = {category: [] for category in targets}
        for domain, category in current.items():
            members.setdefault(category, []).append(domain)

        pool: list[str] = []
        for category in sorted(members):
            surplus = len(members[category]) - targets.get(category, 0)
            if surplus > 0:
                bucket = sorted(members[category])
                self.rng.shuffle(bucket)
                pool.extend(bucket[:surplus])

        self.rng.shuffle(pool)
        cursor = 0
        for category in sorted(targets):
            deficit = targets[category] - len(members.get(category, []))
            for domain in pool[cursor:cursor + max(deficit, 0)]:
                current[domain] = category
            cursor += max(deficit, 0)
        assert cursor == len(pool), "drift bookkeeping mismatch"

    def _swap_churn(self, current: dict[str, str], total: int) -> None:
        """Swap categories between random domain pairs (gross churn)."""
        swaps = int(round(self.swap_rate * total))
        if swaps == 0:
            return
        domains = sorted(current)
        for _ in range(swaps):
            left = self.rng.choice(domains)
            right = self.rng.choice(domains)
            if current[left] != current[right]:
                current[left], current[right] = current[right], current[left]


# ---------------------------------------------------------------------------
# Provisioning styles
# ---------------------------------------------------------------------------

# How domains wire themselves to each kind of assignment, as cumulative
# probability tables keyed on a stable per-domain fingerprint, so a domain
# keeps its style while it stays with a category.
_SELF_STYLES: tuple[tuple[float, ProvisioningStyle], ...] = (
    (0.80, ProvisioningStyle.SELF_HOSTED),
    (0.90, ProvisioningStyle.SELF_ON_VPS),
    (0.92, ProvisioningStyle.SELF_SPOOFED),
    (1.00, ProvisioningStyle.SELF_MISCONFIGURED),
)

_NONE_STYLES: tuple[tuple[float, ProvisioningStyle], ...] = (
    (0.70, ProvisioningStyle.NO_SMTP),
    (1.00, ProvisioningStyle.DANGLING_MX),
)

# Fraction of provider customers who keep a customer-named MX in front of
# the provider (the gsipartners.com situation).
CUSTOMER_NAMED_FRACTION = 0.10


def pick_style(
    domain: str,
    category: str,
    default_mx_is_customer_named: bool = False,
) -> ProvisioningStyle:
    """Deterministic provisioning style for (domain, category)."""
    roll = (domain_fingerprint(domain, f"style|{category}") % 10_000) / 10_000.0
    if category == SELF:
        for ceiling, style in _SELF_STYLES:
            if roll < ceiling:
                return style
    if category == NONE:
        for ceiling, style in _NONE_STYLES:
            if roll < ceiling:
                return style
    if default_mx_is_customer_named:
        return ProvisioningStyle.HOSTING_DEFAULT
    if roll < CUSTOMER_NAMED_FRACTION:
        return ProvisioningStyle.CUSTOMER_NAMED
    return ProvisioningStyle.PROVIDER_NAMED
