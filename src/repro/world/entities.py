"""World entity model: companies, mail infrastructure, domain configurations.

These are the *ground truth* objects of the synthetic Internet.  The
measurement substrates observe projections of them (DNS records, SMTP
banners, certificates); the inference pipeline tries to recover the company
behind each domain; the world keeps the answer key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..netsim.registry import AddressBlock
from ..smtp.banner import BannerStyle
from ..smtp.server import SMTPServerConfig
from ..tls.cert import Certificate


class CompanyKind(enum.Enum):
    """What business a company is in (drives analysis groupings)."""

    MAILBOX = "mailbox"          # full mail hosting (Google, Microsoft, Yandex)
    SECURITY = "security"        # e-mail security filtering (ProofPoint, Mimecast)
    HOSTING = "hosting"          # web hosting with bundled mail (GoDaddy, OVH)
    CLOUD = "cloud"              # IaaS whose IPs host third parties (Google Cloud)
    AGENCY = "agency"            # government agencies operating shared mail (hhs.gov)
    OTHER = "other"              # long-tail small providers


@dataclass(frozen=True)
class ASNSpec:
    """One AS a company announces from."""

    number: int
    name: str
    country: str = "US"

    def __post_init__(self) -> None:
        if not 0 < self.number < 2**32:
            raise ValueError(f"bad AS number: {self.number}")


@dataclass(frozen=True)
class CompanySpec:
    """Static description of a company in the catalog.

    ``provider_ids`` are the registered domains under which the company's
    mail infrastructure identifies itself (certificates, banners, MX names);
    the first entry is the canonical one.  ``vps_cert_domain`` is set for
    hosting companies that let rented VPS machines obtain certificates under
    a company domain (the GoDaddy ``secureserver.net`` situation), and
    ``vps_host_pattern``/``dedicated_host_pattern`` are the hostname shapes
    step 4 of the methodology uses to tell them apart.
    """

    slug: str
    display_name: str
    kind: CompanyKind
    country: str
    asns: tuple[ASNSpec, ...]
    provider_ids: tuple[str, ...]
    mx_host_count: int = 2
    ips_per_host: int = 1
    banner_style: BannerStyle = BannerStyle.FQDN
    has_valid_cert: bool = True
    censys_coverage: float = 1.0
    vps_cert_domain: str | None = None
    vps_host_pattern: str | None = None
    dedicated_host_pattern: str | None = None
    default_mx_is_customer_named: bool = False
    # Explicit MX host FQDNs (overrides the mx{i}.<provider-id> default).
    mx_fqdns: tuple[str, ...] = ()
    # Subject CN of a single shared certificate covering all hosts.  When
    # unset and the company spans several registered domains, each domain
    # group gets its own certificate (the ProofPoint / Microsoft-regional
    # structure behind Table 5).
    cert_cn: str | None = None
    # Extra SAN entries on the shared certificate (Gmail's certificate
    # lists mx1.smtp.goog alongside the googlemail.com names, Section 2.3).
    cert_extra_sans: tuple[str, ...] = ()
    # Customers get an individual MX name rendered from this template
    # ("{label}" = customer-derived label, "{hash4}"/"{hash8}" = hex
    # fingerprints, "{pid}" = a per-customer provider-ID choice) that
    # resolves to the shared infrastructure.
    customer_mx_template: str | None = None
    # Fraction of template customers that instead use a shared regional
    # host directly (Microsoft's sovereign-cloud MXes).
    regional_shared_fraction: float = 0.0
    # Fraction of customers whose dedicated endpoint presents the
    # *customer's* certificate instead of the provider's (the utexas.edu /
    # Ironport situation, Section 3.1.4).
    customer_cert_fraction: float = 0.0

    @property
    def canonical_provider_id(self) -> str:
        return self.provider_ids[0]

    @property
    def primary_asn(self) -> int:
        return self.asns[0].number


@dataclass
class MailHost:
    """One deployed MTA endpoint: an FQDN, its addresses, its server config."""

    fqdn: str
    addresses: list[str]
    server: SMTPServerConfig
    owner_slug: str


@dataclass
class CompanyInfra:
    """A company's deployed mail infrastructure."""

    spec: CompanySpec
    mx_hosts: list[MailHost] = field(default_factory=list)
    shared_certificate: Certificate | None = None
    # CIDR prefixes for the company's published SPF policy (_spf.<pid>).
    spf_prefixes: list[str] = field(default_factory=list)
    # Spare address space for per-customer machines: rented VPS boxes
    # (hosting companies) and dedicated filtering relays (security vendors).
    vps_block: "AddressBlock | None" = None
    dedicated_block: "AddressBlock | None" = None
    # Round-robin cursor for assigning customers to MX hosts.
    _cursor: int = 0

    def next_mx_host(self) -> MailHost:
        if not self.mx_hosts:
            raise RuntimeError(f"{self.spec.slug} has no MX hosts deployed")
        host = self.mx_hosts[self._cursor % len(self.mx_hosts)]
        self._cursor += 1
        return host


class ProvisioningStyle(enum.Enum):
    """How a domain's MX is wired to its actual provider.

    The style determines what each evidence source (MX name, ASN, banner,
    certificate) will say, and therefore which inference approaches succeed.
    """

    PROVIDER_NAMED = "provider_named"      # MX names the provider (netflix.com case)
    CUSTOMER_NAMED = "customer_named"      # MX under own name, A → provider (gsipartners case)
    HOSTING_DEFAULT = "hosting_default"    # mx.<domain> → hosting company infra
    SELF_HOSTED = "self_hosted"            # runs own MTA on own address space
    SELF_ON_VPS = "self_on_vps"            # own MTA on a rented VPS (cert under host domain)
    SELF_SPOOFED = "self_spoofed"          # own MTA, banner claims a big provider
    SELF_MISCONFIGURED = "self_misconfigured"  # own MTA, localhost/IP-style banner
    NO_SMTP = "no_smtp"                    # MX resolves, nothing listens on 25
    DANGLING_MX = "dangling_mx"            # MX name does not resolve


# Ground-truth label for a domain at one snapshot: a company slug, or one of
# these sentinel strings.
TRUTH_SELF = "SELF"
TRUTH_NONE = "NONE"  # no working mail service


@dataclass
class DomainAssignment:
    """Ground truth for one domain at one snapshot."""

    company_slug: str | None          # None for SELF/NONE sentinels
    truth: str                        # company slug, TRUTH_SELF, or TRUTH_NONE
    style: ProvisioningStyle
    # Occasionally a domain publishes two equally preferred MX records at
    # different providers; step 5 of the methodology splits credit.
    secondary_slug: str | None = None
    # For customers of filtering (security) services: the mailbox provider
    # the filter forwards to.  The MX only reveals the first hop (the
    # paper's Section 3.4 limitation); SPF records can reveal this one.
    eventual_slug: str | None = None

    @property
    def is_self_hosted(self) -> bool:
        return self.truth == TRUTH_SELF

    @property
    def has_provider(self) -> bool:
        return self.truth not in (TRUTH_SELF, TRUTH_NONE)


class DatasetTag(enum.Enum):
    """Which paper corpus a domain belongs to."""

    ALEXA = "alexa"
    COM = "com"
    GOV = "gov"


@dataclass
class DomainEntity:
    """One registered domain in a corpus, with its per-snapshot ground truth."""

    name: str
    dataset: DatasetTag
    alexa_rank: int | None = None          # ALEXA only
    cctld: str | None = None               # e.g. "ru"; None for gTLDs
    is_federal: bool = False               # GOV only
    assignments: list[DomainAssignment] = field(default_factory=list)

    def assignment_at(self, snapshot_index: int) -> DomainAssignment:
        return self.assignments[snapshot_index]
