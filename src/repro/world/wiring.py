"""Per-domain materialization: turn ground-truth assignments into DNS + hosts.

The :class:`DomainWirer` owns every per-domain artifact the measurement
layer can observe: MX records, glue A records, self-hosted / VPS / spoofed
/ misconfigured endpoints and their certificates.  Endpoints are created
once per (domain, flavor) and cached so a domain keeps the same server and
addresses across snapshots; only the DNS changes as domains churn.

All randomness is derived from stable per-domain fingerprints
(:func:`~repro.world.evolve.domain_fingerprint`), so wiring is reproducible
and independent of iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnscore import ZoneDB, a as a_record, mx as mx_record, spf as spf_record
from ..dnscore.psl import PublicSuffixList
from ..netsim.registry import AddressBlock
from ..smtp.banner import BannerStyle
from ..smtp.server import SMTPHostTable, SMTPServerConfig
from ..tls.ca import CertificateAuthority, self_signed
from .entities import (
    CompanyInfra,
    DomainAssignment,
    DomainEntity,
    MailHost,
    ProvisioningStyle,
)
from .evolve import domain_fingerprint


@dataclass
class Endpoint:
    """One per-domain MTA endpoint (self-hosted box, VPS, dedicated relay)."""

    mx_target: str          # FQDN the MX record should point at
    glue_name: str          # name that carries the A record
    addresses: list[str]
    owner_zone: str         # zone apex owning the glue A record


def _roll(domain: str, salt: str) -> float:
    """Deterministic uniform [0,1) roll for (domain, salt)."""
    return (domain_fingerprint(domain, salt) % 100_000) / 100_000.0


def _label_of(domain: str) -> str:
    return domain.split(".")[0]


@dataclass
class DomainWirer:
    """Creates DNS records and endpoints for domains, one snapshot at a time."""

    companies: dict[str, CompanyInfra]
    host_table: SMTPHostTable
    ca: CertificateAuthority
    psl: PublicSuffixList
    transit_blocks: list[AddressBlock]
    vps_hosting_slugs: tuple[str, ...] = ("godaddy", "ovh")
    small_vps_slugs: tuple[str, ...] = ()   # "unpopular" hosts; misses in Fig 4
    cloud_block: AddressBlock | None = None
    # Domains forced into specific corner-case paths (showcase examples).
    force_cloud_nosmtp: frozenset[str] = frozenset()
    force_customer_cert: frozenset[str] = frozenset()

    _endpoints: dict[tuple[str, str], Endpoint] = field(default_factory=dict)
    _customer_mx: dict[tuple[str, str], str] = field(default_factory=dict)
    _vps_serial: int = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def wire(
        self,
        zdb: ZoneDB,
        entity: DomainEntity,
        assignment: DomainAssignment,
    ) -> None:
        """Install *entity*'s records for one snapshot into *zdb*."""
        zdb.ensure_zone(entity.name)
        self._publish_spf(zdb, entity, assignment)
        style = assignment.style
        if style is ProvisioningStyle.PROVIDER_NAMED:
            self._wire_provider_named(zdb, entity, assignment)
        elif style is ProvisioningStyle.CUSTOMER_NAMED:
            self._wire_customer_named(zdb, entity, assignment)
        elif style is ProvisioningStyle.HOSTING_DEFAULT:
            self._wire_hosting_default(zdb, entity, assignment)
        elif style is ProvisioningStyle.SELF_HOSTED:
            self._wire_endpoint(zdb, entity, self._self_hosted_endpoint(entity))
        elif style is ProvisioningStyle.SELF_ON_VPS:
            self._wire_endpoint(zdb, entity, self._vps_endpoint(entity))
        elif style is ProvisioningStyle.SELF_SPOOFED:
            self._wire_endpoint(zdb, entity, self._spoofed_endpoint(entity))
        elif style is ProvisioningStyle.SELF_MISCONFIGURED:
            self._wire_endpoint(zdb, entity, self._misconfigured_endpoint(entity))
        elif style is ProvisioningStyle.NO_SMTP:
            self._wire_no_smtp(zdb, entity)
        elif style is ProvisioningStyle.DANGLING_MX:
            zdb.add(mx_record(entity.name, f"mail.{entity.name}", preference=10))
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled style {style}")

    # ------------------------------------------------------------------
    # sender policy (SPF) publication
    # ------------------------------------------------------------------

    def _publish_spf(
        self, zdb: ZoneDB, entity: DomainEntity, assignment: DomainAssignment
    ) -> None:
        """Publish the domain's SPF policy (a minority publish none).

        Filtering-service customers commonly authorize *both* the filter
        and the mailbox provider behind it — which is what makes SPF a
        useful signal for the eventual provider (Section 3.4).
        """
        if _roll(entity.name, "nospf") < 0.20:
            return
        style = assignment.style
        if style in (
            ProvisioningStyle.PROVIDER_NAMED,
            ProvisioningStyle.CUSTOMER_NAMED,
            ProvisioningStyle.HOSTING_DEFAULT,
        ):
            assert assignment.company_slug is not None
            includes = []
            if assignment.eventual_slug is not None:
                eventual = self._infra(assignment.eventual_slug)
                includes.append(f"include:_spf.{eventual.spec.canonical_provider_id}")
            front = self._infra(assignment.company_slug)
            includes.append(f"include:_spf.{front.spec.canonical_provider_id}")
            if assignment.secondary_slug is not None:
                secondary = self._infra(assignment.secondary_slug)
                includes.append(
                    f"include:_spf.{secondary.spec.canonical_provider_id}"
                )
            zdb.add(spf_record(entity.name, " ".join(includes) + " ~all"))
        elif style in (
            ProvisioningStyle.SELF_HOSTED,
            ProvisioningStyle.SELF_ON_VPS,
            ProvisioningStyle.SELF_SPOOFED,
            ProvisioningStyle.SELF_MISCONFIGURED,
        ):
            zdb.add(spf_record(entity.name, "a mx ~all"))
        # NO_SMTP / DANGLING_MX domains publish no policy.

    # ------------------------------------------------------------------
    # provider-backed wiring
    # ------------------------------------------------------------------

    def _infra(self, slug: str | None) -> CompanyInfra:
        if slug is None or slug not in self.companies:
            raise KeyError(f"unknown company slug: {slug!r}")
        return self.companies[slug]

    def _pick_hosts(self, entity: DomainEntity, infra: CompanyInfra, count: int) -> list[MailHost]:
        hosts = infra.mx_hosts
        if not hosts:
            raise RuntimeError(f"{infra.spec.slug} has no MX hosts")
        start = domain_fingerprint(entity.name, f"host|{infra.spec.slug}") % len(hosts)
        return [hosts[(start + i) % len(hosts)] for i in range(min(count, len(hosts)))]

    def _wire_provider_named(
        self, zdb: ZoneDB, entity: DomainEntity, assignment: DomainAssignment
    ) -> None:
        infra = self._infra(assignment.company_slug)
        spec = infra.spec
        use_template = spec.customer_mx_template is not None and not (
            spec.regional_shared_fraction > 0
            and _roll(entity.name, f"regional|{spec.slug}") < spec.regional_shared_fraction
        )
        if use_template:
            mx_name = self._customer_specific_mx(zdb, entity, infra)
            zdb.add(mx_record(entity.name, mx_name, preference=10))
        else:
            primary, *rest = self._pick_hosts(entity, infra, 2)
            zdb.add(mx_record(entity.name, primary.fqdn, preference=10))
            for backup in rest:
                zdb.add(mx_record(entity.name, backup.fqdn, preference=20))
        self._maybe_add_split_mx(zdb, entity, assignment)

    def _maybe_add_split_mx(
        self, zdb: ZoneDB, entity: DomainEntity, assignment: DomainAssignment
    ) -> None:
        """Occasionally add a second, equally preferred MX at another provider."""
        if assignment.secondary_slug is None:
            return
        infra = self._infra(assignment.secondary_slug)
        if infra.spec.customer_mx_template:
            mx_name = self._customer_specific_mx(zdb, entity, infra)
        else:
            mx_name = self._pick_hosts(entity, infra, 1)[0].fqdn
        zdb.add(mx_record(entity.name, mx_name, preference=10))

    def _customer_pid(self, entity: DomainEntity, infra: CompanyInfra) -> str:
        """Per-customer provider-ID choice for ``{pid}`` templates.

        Limited to provider IDs with deployed MX hosts; the canonical ID is
        favored, the rest split the remainder evenly.
        """
        eligible = []
        for provider_id in infra.spec.provider_ids:
            if any(
                self.psl.registered_domain(host.fqdn) == provider_id
                for host in infra.mx_hosts
            ):
                eligible.append(provider_id)
        if not eligible:
            return infra.spec.canonical_provider_id
        roll = _roll(entity.name, f"pid|{infra.spec.slug}")
        if roll < 0.70 or len(eligible) == 1:
            return eligible[0]
        index = domain_fingerprint(entity.name, f"pidpick|{infra.spec.slug}") % (
            len(eligible) - 1
        )
        return eligible[1 + index]

    def _customer_specific_mx(
        self, zdb: ZoneDB, entity: DomainEntity, infra: CompanyInfra
    ) -> str:
        """Create (once) and publish a per-customer MX name for *entity*."""
        spec = infra.spec
        key = (entity.name, spec.slug)
        if key not in self._customer_mx:
            fingerprint = domain_fingerprint(entity.name, f"custmx|{spec.slug}")
            label = _label_of(entity.name).replace("_", "-")
            assert spec.customer_mx_template is not None
            self._customer_mx[key] = spec.customer_mx_template.format(
                label=label,
                hash4=f"{fingerprint & 0xFFFF:04x}",
                hash8=f"{fingerprint:08x}",
                pid=self._customer_pid(entity, infra),
            )
        mx_name = self._customer_mx[key]
        endpoint_addresses = self._customer_endpoint_addresses(entity, infra, mx_name)
        for address in endpoint_addresses:
            zdb.add(a_record(mx_name, address))
        return mx_name

    def _customer_endpoint_addresses(
        self, entity: DomainEntity, infra: CompanyInfra, mx_name: str
    ) -> list[str]:
        """Addresses behind a customer-specific MX name.

        Usually the provider's shared hosts (under the MX name's own
        provider ID when one matches); for providers with a
        ``customer_cert_fraction`` some customers get a dedicated relay that
        presents the *customer's* certificate (utexas.edu-style).
        """
        spec = infra.spec
        if entity.name in self.force_customer_cert or (
            spec.customer_cert_fraction > 0
            and _roll(entity.name, f"custcert|{spec.slug}") < spec.customer_cert_fraction
        ):
            endpoint = self._dedicated_customer_cert_endpoint(entity, infra)
            return endpoint.addresses
        mx_registered = self.psl.registered_domain(mx_name)
        matching = [
            host for host in infra.mx_hosts
            if self.psl.registered_domain(host.fqdn) == mx_registered
        ]
        if matching:
            index = domain_fingerprint(entity.name, f"host|{spec.slug}") % len(matching)
            return matching[index].addresses
        return self._pick_hosts(entity, infra, 1)[0].addresses

    def _dedicated_customer_cert_endpoint(
        self, entity: DomainEntity, infra: CompanyInfra
    ) -> Endpoint:
        key = (entity.name, f"dedicated|{infra.spec.slug}")
        if key in self._endpoints:
            return self._endpoints[key]
        block = infra.dedicated_block or self._transit_block(entity)
        address = str(block.allocate_address())
        relay_identity = f"esa.{_label_of(entity.name)}.{infra.spec.canonical_provider_id}"
        customer_cert = self.ca.issue(f"inbound.mail.{entity.name}")
        self.host_table.bind(
            address,
            SMTPServerConfig(
                identity=relay_identity,
                banner_style=BannerStyle.FQDN,
                starttls=True,
                certificate=customer_cert,
            ),
        )
        endpoint = Endpoint(
            mx_target=relay_identity,
            glue_name=relay_identity,
            addresses=[address],
            owner_zone=infra.spec.canonical_provider_id,
        )
        self._endpoints[key] = endpoint
        return endpoint

    def _wire_customer_named(
        self, zdb: ZoneDB, entity: DomainEntity, assignment: DomainAssignment
    ) -> None:
        """MX under the customer's own name, pointing at provider IPs."""
        infra = self._infra(assignment.company_slug)
        host = self._pick_hosts(entity, infra, 1)[0]
        glue = f"mailhost.{entity.name}"
        zdb.add(mx_record(entity.name, glue, preference=10))
        for address in host.addresses:
            zdb.add(a_record(glue, address))

    def _wire_hosting_default(
        self, zdb: ZoneDB, entity: DomainEntity, assignment: DomainAssignment
    ) -> None:
        """The hosting-company default: mx.<domain> → hosting company IPs."""
        infra = self._infra(assignment.company_slug)
        host = self._pick_hosts(entity, infra, 1)[0]
        glue = f"mx.{entity.name}"
        zdb.add(mx_record(entity.name, glue, preference=0))
        for address in host.addresses:
            zdb.add(a_record(glue, address))

    # ------------------------------------------------------------------
    # self-operated endpoints
    # ------------------------------------------------------------------

    def _transit_block(self, entity: DomainEntity) -> AddressBlock:
        index = domain_fingerprint(entity.name, "transit") % len(self.transit_blocks)
        return self.transit_blocks[index]

    def _wire_endpoint(self, zdb: ZoneDB, entity: DomainEntity, endpoint: Endpoint) -> None:
        zdb.add(mx_record(entity.name, endpoint.mx_target, preference=10))
        if endpoint.owner_zone != entity.name:
            zdb.ensure_zone(endpoint.owner_zone)
        for address in endpoint.addresses:
            zdb.add(a_record(endpoint.glue_name, address))

    def _self_hosted_endpoint(self, entity: DomainEntity) -> Endpoint:
        key = (entity.name, "self")
        if key in self._endpoints:
            return self._endpoints[key]
        address = str(self._transit_block(entity).allocate_address())
        identity = f"mx.{entity.name}"
        roll = _roll(entity.name, "selfcert")
        if roll < 0.55:
            certificate, starttls = self.ca.issue(identity), True
        elif roll < 0.80:
            certificate, starttls = self_signed(identity), True
        else:
            certificate, starttls = None, False
        self.host_table.bind(
            address,
            SMTPServerConfig(
                identity=identity,
                banner_style=BannerStyle.FQDN,
                starttls=starttls,
                certificate=certificate,
            ),
        )
        endpoint = Endpoint(
            mx_target=identity, glue_name=identity,
            addresses=[address], owner_zone=entity.name,
        )
        self._endpoints[key] = endpoint
        return endpoint

    def _vps_endpoint(self, entity: DomainEntity) -> Endpoint:
        """Self-hosting on a rented VPS: cert and banner under the host's domain."""
        key = (entity.name, "vps")
        if key in self._endpoints:
            return self._endpoints[key]
        # 70% rent from a well-known host (step 4 heuristics recover these);
        # the rest from unpopular hosts (the paper's residual error cases).
        use_small = (
            bool(self.small_vps_slugs)
            and _roll(entity.name, "vpshost") < 0.30
        )
        pool = self.small_vps_slugs if use_small else self.vps_hosting_slugs
        slug = pool[domain_fingerprint(entity.name, "vpspick") % len(pool)]
        infra = self._infra(slug)
        self._vps_serial += 1
        serial = self._vps_serial
        vps_domain = infra.spec.vps_cert_domain or infra.spec.canonical_provider_id
        if slug == "godaddy":
            vps_host = f"s{serial % 97}-{serial % 251}-{serial % 13}.{vps_domain}"
        elif slug == "ovh":
            vps_host = f"vps-{domain_fingerprint(entity.name, 'ovh'):08x}.vps.{vps_domain}"
        else:
            vps_host = f"vps{serial}.{vps_domain}"
        block = infra.vps_block or self._transit_block(entity)
        address = str(block.allocate_address())
        certificate = self.ca.issue(vps_host)
        self.host_table.bind(
            address,
            SMTPServerConfig(
                identity=vps_host,
                banner_style=BannerStyle.FQDN,
                starttls=True,
                certificate=certificate,
            ),
        )
        glue = f"mx.{entity.name}"
        endpoint = Endpoint(
            mx_target=glue, glue_name=glue,
            addresses=[address], owner_zone=entity.name,
        )
        self._endpoints[key] = endpoint
        return endpoint

    def _spoofed_endpoint(self, entity: DomainEntity) -> Endpoint:
        """Self-hosted box whose banner falsely claims to be Google."""
        key = (entity.name, "spoof")
        if key in self._endpoints:
            return self._endpoints[key]
        address = str(self._transit_block(entity).allocate_address())
        self.host_table.bind(
            address,
            SMTPServerConfig(
                identity="mx.google.com",
                banner_style=BannerStyle.SPOOFED,
                starttls=True,
                certificate=self_signed("mx.google.com"),
            ),
        )
        glue = f"mx.{entity.name}"
        endpoint = Endpoint(
            mx_target=glue, glue_name=glue,
            addresses=[address], owner_zone=entity.name,
        )
        self._endpoints[key] = endpoint
        return endpoint

    def _misconfigured_endpoint(self, entity: DomainEntity) -> Endpoint:
        """Self-hosted box with a useless banner (localhost / IP-1-2-3-4)."""
        key = (entity.name, "misconf")
        if key in self._endpoints:
            return self._endpoints[key]
        address = str(self._transit_block(entity).allocate_address())
        style = (
            BannerStyle.LOCALHOST
            if _roll(entity.name, "misconf") < 0.5
            else BannerStyle.DECORATED_IP
        )
        self.host_table.bind(
            address,
            SMTPServerConfig(
                identity=None,
                banner_style=style,
                starttls=False,
                certificate=None,
            ),
        )
        glue = f"mx.{entity.name}"
        endpoint = Endpoint(
            mx_target=glue, glue_name=glue,
            addresses=[address], owner_zone=entity.name,
        )
        self._endpoints[key] = endpoint
        return endpoint

    def _cloud_web_endpoint(self) -> Endpoint:
        """The shared Google web-hosting frontend (no SMTP listener).

        The jeniustoto.net case: an MX naming ``ghs.google.com`` resolves to
        Google web-hosting address space where nothing answers on port 25.
        """
        key = ("__shared__", "cloud_web")
        if key not in self._endpoints:
            assert self.cloud_block is not None
            address = str(self.cloud_block.allocate_address())
            self._endpoints[key] = Endpoint(
                mx_target="ghs.google.com",
                glue_name="ghs.google.com",
                addresses=[address],
                owner_zone="google.com",
            )
        return self._endpoints[key]

    def _wire_no_smtp(self, zdb: ZoneDB, entity: DomainEntity) -> None:
        """MX resolves to an address where nothing listens on port 25."""
        use_cloud = self.cloud_block is not None and (
            entity.name in self.force_cloud_nosmtp or _roll(entity.name, "nosmtp") < 0.30
        )
        if use_cloud:
            self._wire_endpoint(zdb, entity, self._cloud_web_endpoint())
            return
        key = (entity.name, "nosmtp")
        if key not in self._endpoints:
            address = str(self._transit_block(entity).allocate_address())
            glue = f"mx.{entity.name}"
            self._endpoints[key] = Endpoint(
                mx_target=glue, glue_name=glue,
                addresses=[address], owner_zone=entity.name,
            )
        self._wire_endpoint(zdb, entity, self._endpoints[key])
