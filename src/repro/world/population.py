"""Domain corpora and market-share trajectories.

This module encodes *what the synthetic Internet should look like over
time*: for each corpus segment (Alexa rank buckets, Alexa ccTLD slices,
random ``.com``, federal / non-federal ``.gov``), the share of domains using
each company, as a piecewise-linear trajectory over the study window.

The trajectories are calibrated to the paper's reported figures (Figure 5,
Figure 6, Figure 8, Table 6): Google/Microsoft rising everywhere, security
companies rising, hosting companies falling or flat, self-hosting falling,
GoDaddy dominating random ``.com``, Microsoft leading ``.gov``, Yandex and
Tencent essentially confined to ``.ru`` and ``.cn``.  Absolute values are
approximate reads of the paper's plots; the *shape* relations are what the
reproduction must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

# The nine semi-annual measurement snapshots (Section 4, June 2017–June 2021).
SNAPSHOT_DATES: tuple[date, ...] = (
    date(2017, 6, 8), date(2017, 12, 8),
    date(2018, 6, 8), date(2018, 12, 8),
    date(2019, 6, 8), date(2019, 12, 8),
    date(2020, 6, 8), date(2020, 12, 8),
    date(2021, 6, 8),
)
NUM_SNAPSHOTS = len(SNAPSHOT_DATES)

# OpenINTEL has no .gov coverage before June 2018 (Section 4.1), so .gov
# measurements exist for seven snapshots only.
GOV_FIRST_SNAPSHOT = 2

# Category sentinels used alongside company slugs in share tables.
SELF = "SELF"
NONE = "NONE"
OTHERS = "OTHERS"


def snapshot_fraction(index: int) -> float:
    """Position of snapshot *index* in [0, 1] across the study window."""
    return index / (NUM_SNAPSHOTS - 1)


@dataclass(frozen=True)
class Trajectory:
    """Piecewise-linear share curve over normalized time [0, 1]."""

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("trajectory needs at least one breakpoint")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise ValueError("trajectory breakpoints must be time-ordered")
        for _, share in self.points:
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"share out of range: {share}")

    def at(self, t: float) -> float:
        """Interpolated share at normalized time *t* (clamped to [0, 1])."""
        t = min(max(t, 0.0), 1.0)
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        for (t0, s0), (t1, s1) in zip(points, points[1:]):
            if t <= t1:
                if t1 == t0:
                    return s1
                return s0 + (s1 - s0) * (t - t0) / (t1 - t0)
        return points[-1][1]


def traj(start: float, end: float | None = None, *mid: tuple[float, float]) -> Trajectory:
    """Shorthand: linear from *start* to *end* with optional midpoints."""
    if end is None:
        return Trajectory(points=((0.0, start),))
    points = [(0.0, start), *mid, (1.0, end)]
    return Trajectory(points=tuple(sorted(points)))


# A share table maps category (company slug / SELF / NONE) to a trajectory.
ShareTable = dict[str, Trajectory]


def table_total_at(table: ShareTable, t: float) -> float:
    return sum(trajectory.at(t) for trajectory in table.values())


def validate_table(table: ShareTable) -> None:
    """Ensure a table never allocates more than 100% at any snapshot."""
    for index in range(NUM_SNAPSHOTS):
        total = table_total_at(table, snapshot_fraction(index))
        if total > 0.98:
            raise ValueError(f"share table exceeds capacity at snapshot {index}: {total:.3f}")


# ---------------------------------------------------------------------------
# Alexa gTLD rank-bucket tables (Figure 5 left half, Figure 6 a–c)
# ---------------------------------------------------------------------------

ALEXA_GTLD_TOP1K: ShareTable = {
    "google": traj(0.300, 0.320),
    "microsoft": traj(0.130, 0.160),
    "proofpoint": traj(0.055, 0.075),
    "mimecast": traj(0.030, 0.045),
    "ironport": traj(0.020, 0.022),
    "barracuda": traj(0.010, 0.011),
    "messagelabs": traj(0.012, 0.008),
    "rackspace": traj(0.012, 0.010),
    "godaddy": traj(0.004, 0.003),
    "zoho": traj(0.002, 0.003),
    "yandex": traj(0.004, 0.004),
    SELF: traj(0.160, 0.110),
    NONE: traj(0.020, 0.020),
}

ALEXA_GTLD_1K_10K: ShareTable = {
    "google": traj(0.300, 0.320),
    "microsoft": traj(0.110, 0.140),
    "proofpoint": traj(0.040, 0.055),
    "mimecast": traj(0.022, 0.033),
    "ironport": traj(0.013, 0.014),
    "barracuda": traj(0.008, 0.009),
    "messagelabs": traj(0.009, 0.006),
    "rackspace": traj(0.011, 0.010),
    "godaddy": traj(0.008, 0.006),
    "zoho": traj(0.004, 0.006),
    "yandex": traj(0.006, 0.006),
    SELF: traj(0.150, 0.100),
    NONE: traj(0.030, 0.030),
}

ALEXA_GTLD_10K_100K: ShareTable = {
    "google": traj(0.290, 0.310),
    "microsoft": traj(0.090, 0.120),
    "proofpoint": traj(0.020, 0.030),
    "mimecast": traj(0.010, 0.018),
    "ironport": traj(0.008, 0.009),
    "barracuda": traj(0.006, 0.007),
    "rackspace": traj(0.010, 0.009),
    "godaddy": traj(0.015, 0.011),
    "unitedinternet": traj(0.006, 0.005),
    "zoho": traj(0.007, 0.011),
    "yandex": traj(0.010, 0.011),
    "mail_ru": traj(0.004, 0.004),
    "tencent": traj(0.004, 0.006),
    SELF: traj(0.130, 0.090),
    NONE: traj(0.050, 0.050),
}

ALEXA_GTLD_TAIL: ShareTable = {
    "google": traj(0.260, 0.280),
    "microsoft": traj(0.060, 0.090),
    "proofpoint": traj(0.008, 0.013),
    "mimecast": traj(0.005, 0.009),
    "ironport": traj(0.005, 0.006),
    "barracuda": traj(0.004, 0.005),
    "rackspace": traj(0.008, 0.007),
    "godaddy": traj(0.030, 0.020),
    "unitedinternet": traj(0.009, 0.007),
    "ovh": traj(0.006, 0.006),
    "namecheap": traj(0.003, 0.004),
    "zoho": traj(0.009, 0.014),
    "yandex": traj(0.020, 0.022),
    "mail_ru": traj(0.007, 0.007),
    "tencent": traj(0.007, 0.010),
    "beget": traj(0.005, 0.005),
    "ukraine_ua": traj(0.004, 0.004),
    SELF: traj(0.110, 0.075),
    NONE: traj(0.070, 0.070),
}

# Alexa rank buckets: (low rank, high rank, corpus fraction, gTLD table,
# ccTLD fraction of the bucket).
ALEXA_BUCKETS: tuple[tuple[int, int, float, ShareTable, float], ...] = (
    (1, 1_000, 0.01, ALEXA_GTLD_TOP1K, 0.25),
    (1_001, 10_000, 0.09, ALEXA_GTLD_1K_10K, 0.30),
    (10_001, 100_000, 0.30, ALEXA_GTLD_10K_100K, 0.35),
    (100_001, 1_000_000, 0.60, ALEXA_GTLD_TAIL, 0.45),
)

@dataclass(frozen=True)
class AlexaBucket:
    """One sized Alexa rank bucket, ready for corpus generation."""

    low: int
    high: int
    count: int
    table: ShareTable
    cc_fraction: float
    cc_weights: dict[str, float]


def iter_alexa_buckets(alexa_size: int):
    """Yield the sized Alexa rank buckets one at a time.

    A generator rather than a list: the builder consumes each bucket
    (and its member entities) before the next one is sized, so scaling
    ``alexa_size`` up never materializes an all-buckets intermediate.
    The yield order is the ``ALEXA_BUCKETS`` declaration order — RNG
    consumers depend on it for reproducibility.
    """
    for bucket_index, (low, high, fraction, table, cc_fraction) in enumerate(
        ALEXA_BUCKETS
    ):
        yield AlexaBucket(
            low=low,
            high=high,
            count=max(1, round(fraction * alexa_size)),
            table=table,
            cc_fraction=cc_fraction,
            cc_weights=(
                CCTLD_WEIGHTS_HEAD if bucket_index < 2 else CCTLD_WEIGHTS_TAIL
            ),
        )


# Relative weights of the fifteen ccTLDs (Section 5.4) inside a bucket's
# ccTLD slice, per bucket (the long tail skews Russian/Chinese, which is
# what pushes Yandex into the full-Alexa top three).
CCTLD_WEIGHTS_HEAD: dict[str, float] = {
    "ru": 0.13, "de": 0.11, "uk": 0.10, "br": 0.08, "jp": 0.09, "fr": 0.08,
    "it": 0.06, "in": 0.06, "es": 0.05, "ca": 0.06, "au": 0.06, "cn": 0.04,
    "ar": 0.03, "ro": 0.03, "sg": 0.02,
}
CCTLD_WEIGHTS_TAIL: dict[str, float] = {
    "ru": 0.25, "de": 0.09, "uk": 0.07, "br": 0.08, "jp": 0.07, "fr": 0.06,
    "it": 0.05, "in": 0.06, "es": 0.04, "ca": 0.04, "au": 0.04, "cn": 0.07,
    "ar": 0.03, "ro": 0.03, "sg": 0.02,
}


def _cctld_table(
    google: float, microsoft: float, yandex: float = 0.002, tencent: float = 0.001,
    self_share: float = 0.12, extra: dict[str, Trajectory] | None = None,
) -> ShareTable:
    """Build a ccTLD share table from June-2021 targets for the big four.

    Google and Microsoft start at 80% of their final share (steady growth);
    Yandex/Tencent are flat.
    """
    table: ShareTable = {
        "google": traj(google * 0.8, google),
        "microsoft": traj(microsoft * 0.8, microsoft),
        "yandex": traj(yandex, yandex),
        "tencent": traj(tencent, tencent),
        SELF: traj(self_share, self_share * 0.7),
        NONE: traj(0.06, 0.06),
    }
    if extra:
        table.update(extra)
    return table


# June-2021 Google/Microsoft/Yandex/Tencent targets per ccTLD (Figure 8).
ALEXA_CCTLD_TABLES: dict[str, ShareTable] = {
    "br": _cctld_table(0.50, 0.15),
    "ar": _cctld_table(0.45, 0.12),
    "uk": _cctld_table(0.30, 0.25, extra={"mimecast": traj(0.02, 0.035)}),
    "fr": _cctld_table(0.28, 0.15, extra={"ovh": traj(0.09, 0.08)}),
    "de": _cctld_table(0.18, 0.15, extra={"unitedinternet": traj(0.11, 0.09), "strato": traj(0.05, 0.045)}),
    "it": _cctld_table(0.22, 0.16, extra={"aruba": traj(0.08, 0.07)}),
    "es": _cctld_table(0.25, 0.18),
    "ro": _cctld_table(0.30, 0.12),
    "ca": _cctld_table(0.35, 0.20),
    "au": _cctld_table(0.30, 0.25),
    "ru": _cctld_table(
        0.13, 0.05, yandex=0.28, tencent=0.002, self_share=0.12,
        extra={"mail_ru": traj(0.09, 0.10), "beget": traj(0.05, 0.05)},
    ),
    "cn": _cctld_table(0.02, 0.05, yandex=0.002, tencent=0.26, self_share=0.15),
    "jp": _cctld_table(0.25, 0.15),
    "in": _cctld_table(0.40, 0.15),
    "sg": _cctld_table(0.35, 0.22),
}
# Yandex in .ru grows (Figure 8 counts are June 2021; growth keeps the
# full-Alexa Yandex series rising as in Figure 6a).
ALEXA_CCTLD_TABLES["ru"]["yandex"] = traj(0.24, 0.28)
ALEXA_CCTLD_TABLES["cn"]["tencent"] = traj(0.22, 0.26)

# ---------------------------------------------------------------------------
# Random .com table (Figure 5 bottom, Figure 6 d–f, Table 6 COM column)
# ---------------------------------------------------------------------------

COM_TABLE: ShareTable = {
    "godaddy": traj(0.330, 0.290),
    "google": traj(0.075, 0.094),
    "microsoft": traj(0.042, 0.058),
    "unitedinternet": traj(0.055, 0.046),
    "eig": traj(0.017, 0.015),
    "ovh": traj(0.013, 0.013),
    "namecheap": traj(0.009, 0.011),
    "tucows": traj(0.011, 0.010),
    "strato": traj(0.010, 0.009),
    "rackspace": traj(0.009, 0.0085),
    "webcom": traj(0.008, 0.007),
    "aruba": traj(0.0075, 0.0066),
    "yahoo": traj(0.007, 0.0063),
    "siteground": traj(0.005, 0.006),
    "tencent": traj(0.005, 0.0059),
    "yandex": traj(0.004, 0.004),
    "mail_ru": traj(0.003, 0.003),
    "zoho": traj(0.006, 0.008),
    "proofpoint": traj(0.002, 0.004),
    "mimecast": traj(0.001, 0.003),
    "barracuda": traj(0.001, 0.002),
    "ironport": traj(0.001, 0.002),
    "appriver": traj(0.0005, 0.001),
    SELF: traj(0.004, 0.0032),
    NONE: traj(0.110, 0.110),
}

# ---------------------------------------------------------------------------
# .gov tables (Figure 5 right, Figure 6 g–i, Table 6 GOV column)
# ---------------------------------------------------------------------------

GOV_FEDERAL_TABLE: ShareTable = {
    "microsoft": traj(0.200, 0.330),
    # Google rises then falls in .gov (footnote 10: domains moved to Microsoft).
    "google": Trajectory(points=((0.0, 0.090), (0.55, 0.105), (1.0, 0.080))),
    "barracuda": traj(0.050, 0.070),
    "proofpoint": traj(0.030, 0.050),
    "mimecast": traj(0.015, 0.030),
    "appriver": traj(0.012, 0.017),
    "hhs": traj(0.018, 0.016),
    "treasury": traj(0.015, 0.013),
    "ironport": traj(0.013, 0.014),
    "intermedia": traj(0.007, 0.007),
    SELF: traj(0.180, 0.110),
    NONE: traj(0.050, 0.050),
}

GOV_NONFEDERAL_TABLE: ShareTable = {
    "microsoft": traj(0.200, 0.310),
    "google": Trajectory(points=((0.0, 0.100), (0.55, 0.120), (1.0, 0.096))),
    "barracuda": traj(0.065, 0.085),
    "proofpoint": traj(0.020, 0.040),
    "mimecast": traj(0.010, 0.022),
    "appriver": traj(0.012, 0.017),
    "rackspace": traj(0.016, 0.014),
    "ironport": traj(0.013, 0.014),
    "godaddy": traj(0.013, 0.010),
    "sophos": traj(0.007, 0.008),
    "solarwinds": traj(0.008, 0.008),
    "intermedia": traj(0.007, 0.007),
    "trendmicro": traj(0.006, 0.006),
    SELF: traj(0.130, 0.085),
    NONE: traj(0.070, 0.070),
}

GOV_FEDERAL_FRACTION = 0.35


def all_share_tables() -> dict[str, ShareTable]:
    """Every table, keyed by a diagnostic name (used by validation tests)."""
    tables: dict[str, ShareTable] = {
        "alexa_gtld_top1k": ALEXA_GTLD_TOP1K,
        "alexa_gtld_1k_10k": ALEXA_GTLD_1K_10K,
        "alexa_gtld_10k_100k": ALEXA_GTLD_10K_100K,
        "alexa_gtld_tail": ALEXA_GTLD_TAIL,
        "com": COM_TABLE,
        "gov_federal": GOV_FEDERAL_TABLE,
        "gov_nonfederal": GOV_NONFEDERAL_TABLE,
    }
    for cctld, table in ALEXA_CCTLD_TABLES.items():
        tables[f"alexa_cctld_{cctld}"] = table
    return tables


# Word fragments for deterministic synthetic domain names.
_NAME_SYLLABLES = (
    "al", "an", "ar", "ba", "bel", "bo", "ca", "cen", "cor", "da", "del",
    "do", "el", "en", "fa", "fin", "ga", "gen", "go", "ha", "hel", "in",
    "ka", "kin", "la", "lek", "ma", "mar", "mo", "na", "nor", "or", "pa",
    "pel", "po", "ra", "rin", "ro", "sa", "sol", "ta", "tel", "to", "ur",
    "va", "ven", "vo", "wa", "win", "za",
)


def synth_label(rng, min_syllables: int = 2, max_syllables: int = 4) -> str:
    """Generate one pronounceable DNS label from a seeded RNG."""
    count = rng.randint(min_syllables, max_syllables)
    label = "".join(rng.choice(_NAME_SYLLABLES) for _ in range(count))
    if rng.random() < 0.15:
        label += str(rng.randint(2, 99))
    return label
