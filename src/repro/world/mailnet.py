"""Mail-delivery view of the world: who accepts mail for whom.

Builds a :class:`~repro.smtp.delivery.MailNetwork` for one snapshot by
walking every domain's ground-truth assignment and registering its domain
at the MTA endpoints its MX records point to — so a
:class:`~repro.smtp.delivery.SendingMTA` can relay real messages through
the simulated Internet and they land in the operating company's mailbox
store (one store per company; per-domain stores for self-hosters).
"""

from __future__ import annotations

from ..dnscore.resolver import Resolver
from ..smtp.delivery import MailNetwork, SendingMTA
from .build import World
from .entities import TRUTH_NONE


def build_mail_network(world: World, snapshot_index: int) -> MailNetwork:
    """Register every domain's accepted-mail endpoints for one snapshot."""
    network = MailNetwork(hosts=world.host_table)
    resolver = Resolver(db=world.snapshot_zones[snapshot_index])
    for entity in world.all_entities():
        assignment = entity.assignment_at(snapshot_index)
        if assignment.truth == TRUTH_NONE:
            continue  # nothing operational to register
        store_key = assignment.company_slug or entity.name
        for record in resolver.resolve_mx(entity.name):
            for address in resolver.resolve_a(record.rdata):
                if world.host_table.get(address) is not None:
                    network.serve(address, {entity.name}, store_key=store_key)
    return network


def sending_mta(
    world: World, snapshot_index: int, helo_name: str = "out.sender.example"
) -> SendingMTA:
    """A ready-to-use outbound MTA for one snapshot of the world."""
    return SendingMTA(
        resolver=Resolver(db=world.snapshot_zones[snapshot_index]),
        network=build_mail_network(world, snapshot_index),
        helo_name=helo_name,
    )
