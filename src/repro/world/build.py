"""World builder: assemble the complete synthetic Internet.

:func:`build_world` produces a :class:`World` — companies with deployed mail
infrastructure, three domain corpora with per-snapshot ground truth, and one
materialized DNS view per measurement snapshot — fully determined by a
:class:`WorldConfig` (seed + corpus sizes).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from datetime import date

from ..dnscore import ZoneDB, a as a_record, spf as spf_record
from ..dnscore.psl import PublicSuffixList
from ..netsim.asn import PrefixToASTable
from ..netsim.registry import AddressBlock, AddressRegistry
from ..smtp.banner import BannerStyle
from ..smtp.server import SMTPHostTable, SMTPServerConfig
from ..tls.ca import CertificateAuthority, TrustStore, self_signed
from .catalog import CATALOG, catalog_by_slug
from .entities import (
    ASNSpec,
    CompanyInfra,
    CompanyKind,
    CompanySpec,
    DatasetTag,
    DomainAssignment,
    DomainEntity,
    MailHost,
    ProvisioningStyle,
    TRUTH_NONE,
    TRUTH_SELF,
)
from .evolve import SegmentEvolver, domain_fingerprint, pick_style
from .population import (
    ALEXA_CCTLD_TABLES,
    COM_TABLE,
    GOV_FEDERAL_FRACTION,
    GOV_FEDERAL_TABLE,
    GOV_NONFEDERAL_TABLE,
    NONE,
    NUM_SNAPSHOTS,
    SELF,
    SNAPSHOT_DATES,
    ShareTable,
    iter_alexa_buckets,
    synth_label,
)
from .wiring import DomainWirer

# Fraction of provider-named mailbox customers that publish a second,
# equally preferred MX at another provider (exercises credit splitting).
SPLIT_MX_FRACTION = 0.005

# Baseline Censys coverage for address space without a company-specific
# override (Section 4.2.2 lists the reasons scans miss hosts).
DEFAULT_CENSYS_COVERAGE = 0.97

SHOWCASE_DOMAINS = (
    "netflix.com", "gsipartners.com", "beats24-7.com", "jeniustoto.net", "utexas.edu",
)


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the synthetic Internet.  Everything is derived from these."""

    seed: int = 7
    alexa_size: int = 1200
    com_size: int = 1500
    gov_size: int = 300
    num_other_providers: int = 50
    swap_rate: float = 0.015
    transit_as_count: int = 8

    def scaled(self, factor: float) -> "WorldConfig":
        """A config with corpus sizes multiplied by *factor*."""
        return WorldConfig(
            seed=self.seed,
            alexa_size=max(1, int(self.alexa_size * factor)),
            com_size=max(1, int(self.com_size * factor)),
            gov_size=max(1, int(self.gov_size * factor)),
            num_other_providers=self.num_other_providers,
            swap_rate=self.swap_rate,
            transit_as_count=self.transit_as_count,
        )


@dataclass
class World:
    """The assembled synthetic Internet plus its ground truth."""

    config: WorldConfig
    psl: PublicSuffixList
    trust_store: TrustStore
    registry: AddressRegistry
    host_table: SMTPHostTable
    companies: dict[str, CompanyInfra]
    domains: dict[str, DomainEntity]
    showcase: dict[str, DomainEntity]
    snapshot_zones: list[ZoneDB]
    snapshot_dates: tuple[date, ...] = SNAPSHOT_DATES
    _coverage_by_asn: dict[int, float] = field(default_factory=dict)

    # -- lookup helpers ----------------------------------------------------

    @property
    def prefix2as(self) -> PrefixToASTable:
        return self.registry.table

    def domains_in(self, dataset: DatasetTag) -> list[DomainEntity]:
        return [entity for entity in self.domains.values() if entity.dataset is dataset]

    def entity(self, name: str) -> DomainEntity:
        if name in self.domains:
            return self.domains[name]
        return self.showcase[name]

    def all_entities(self) -> list[DomainEntity]:
        return list(self.domains.values()) + list(self.showcase.values())

    def ground_truth(self, name: str, snapshot_index: int) -> dict[str, float]:
        """Truth attribution for a domain at a snapshot: label → weight.

        Labels are company slugs or the TRUTH_SELF / TRUTH_NONE sentinels.
        Split-MX domains attribute half credit to each provider.
        """
        assignment = self.entity(name).assignment_at(snapshot_index)
        if assignment.secondary_slug is not None and assignment.company_slug is not None:
            return {assignment.company_slug: 0.5, assignment.secondary_slug: 0.5}
        return {assignment.truth: 1.0}

    def company_display(self, slug: str) -> str:
        if slug in self.companies:
            return self.companies[slug].spec.display_name
        return slug

    def censys_coverage_for(self, address: str) -> float:
        asn = self.registry.lookup_asn(address)
        if asn is None:
            return DEFAULT_CENSYS_COVERAGE
        return self._coverage_by_asn.get(asn, DEFAULT_CENSYS_COVERAGE)

    def provider_id_to_company(self) -> dict[str, str]:
        """The curated provider-ID → company-slug map (Section 4.4)."""
        mapping: dict[str, str] = {}
        for slug, infra in self.companies.items():
            for provider_id in infra.spec.provider_ids:
                mapping.setdefault(provider_id, slug)
        return mapping


def build_world(config: WorldConfig | None = None) -> World:
    """Assemble a complete world from a config (fully deterministic)."""
    config = config or WorldConfig()
    builder = _WorldBuilder(config)
    return builder.build()


class _WorldBuilder:
    def __init__(self, config: WorldConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        # Each world owns its PSL instance so per-context cache toggles
        # (EngineOptions.memoize) never leak across StudyContexts.
        self.psl = PublicSuffixList.default()
        self.ca = CertificateAuthority("Simulated CA")
        self.trust_store = TrustStore()
        self.registry = AddressRegistry()
        self.host_table = SMTPHostTable()
        self.companies: dict[str, CompanyInfra] = {}
        self.coverage_by_asn: dict[int, float] = {}
        self.transit_blocks: list[AddressBlock] = []
        self.cloud_block: AddressBlock | None = None
        self.used_names: set[str] = set()
        self.provider_a_records: list[tuple[str, str]] = []  # (fqdn, address)
        self.provider_zone_apexes: set[str] = set()

    # -- infrastructure ----------------------------------------------------

    def build(self) -> World:
        specs = list(CATALOG) + self._generate_other_specs()
        self._register_asns(specs)
        self._allocate_transit()
        for spec in specs:
            self._deploy_company(spec)

        wirer = DomainWirer(
            companies=self.companies,
            host_table=self.host_table,
            ca=self.ca,
            psl=self.psl,
            transit_blocks=self.transit_blocks,
            small_vps_slugs=self._small_vps_slugs(),
            cloud_block=self.cloud_block,
            force_cloud_nosmtp=frozenset({"jeniustoto.net"}),
            force_customer_cert=frozenset({"utexas.edu"}),
        )

        domains = self._generate_corpora()
        showcase = self._showcase_entities()

        snapshot_zones = [self._base_zonedb() for _ in range(NUM_SNAPSHOTS)]
        for snapshot_index, zdb in enumerate(snapshot_zones):
            for entity in itertools.chain(domains.values(), showcase.values()):
                wirer.wire(zdb, entity, entity.assignment_at(snapshot_index))

        return World(
            config=self.config,
            psl=self.psl,
            trust_store=self.trust_store,
            registry=self.registry,
            host_table=self.host_table,
            companies=self.companies,
            domains=domains,
            showcase=showcase,
            snapshot_zones=snapshot_zones,
            _coverage_by_asn=self.coverage_by_asn,
        )

    def _register_asns(self, specs: list[CompanySpec]) -> None:
        seen: set[int] = set()
        for spec in specs:
            for asn_spec in spec.asns:
                if asn_spec.number not in seen:
                    self.registry.register_as(asn_spec.number, asn_spec.name, asn_spec.country)
                    seen.add(asn_spec.number)
                # Company-specific Censys coverage attaches to the AS; the
                # most restrictive company wins (EIG's flakiness).
                current = self.coverage_by_asn.get(asn_spec.number, DEFAULT_CENSYS_COVERAGE)
                self.coverage_by_asn[asn_spec.number] = min(current, spec.censys_coverage)

    def _allocate_transit(self) -> None:
        for index in range(self.config.transit_as_count):
            number = 210_001 + index
            self.registry.register_as(number, f"Transit ISP {index + 1}", "US")
            self.transit_blocks.append(self.registry.allocate_block(number, 16))

    def _generate_other_specs(self) -> list[CompanySpec]:
        """The long tail: small regional providers filling the OTHERS residual."""
        specs = []
        countries = ("US", "US", "US", "DE", "FR", "NL", "UK", "RU", "JP", "BR", "IN", "CA")
        for index in range(self.config.num_other_providers):
            label = synth_label(self.rng, 2, 3)
            tld = self.rng.choice(("com", "net", "io"))
            provider_domain = f"{label}mail.{tld}"
            while provider_domain in self.used_names:
                provider_domain = f"{synth_label(self.rng, 2, 3)}mail.{tld}"
            self.used_names.add(provider_domain)
            roll = self.rng.random()
            specs.append(
                CompanySpec(
                    slug=f"other{index:03d}",
                    display_name=label.capitalize() + " Mail",
                    kind=CompanyKind.OTHER,
                    country=self.rng.choice(countries),
                    asns=(ASNSpec(220_001 + index, f"{label.capitalize()} Networks"),),
                    provider_ids=(provider_domain,),
                    mx_host_count=self.rng.choice((1, 1, 2)),
                    has_valid_cert=roll >= 0.35,
                    # A slice of the long tail runs servers with valid
                    # certificates but useless banner text (Table 4's
                    # "No Valid Banner/EHLO" row).
                    banner_style=(
                        BannerStyle.DECORATED_IP if roll >= 0.92 else BannerStyle.FQDN
                    ),
                )
            )
        return specs

    def _deploy_company(self, spec: CompanySpec) -> None:
        infra = CompanyInfra(spec=spec)
        self.companies[spec.slug] = infra
        for provider_id in spec.provider_ids:
            self.used_names.add(provider_id)
        if spec.mx_host_count == 0:
            if spec.kind is CompanyKind.CLOUD:
                self.cloud_block = self.registry.allocate_block(spec.primary_asn, 18)
            return

        blocks = [self.registry.allocate_block(asn.number, 20) for asn in spec.asns]
        infra.spf_prefixes = [str(block.prefix) for block in blocks]
        fqdns = list(spec.mx_fqdns) or [
            f"mx{i + 1}.{spec.provider_ids[i % len(spec.provider_ids)]}"
            for i in range(spec.mx_host_count)
        ]

        cert_for = self._company_certificates(spec, fqdns)

        for index, fqdn in enumerate(fqdns):
            block = blocks[index % len(blocks)]
            addresses = [str(block.allocate_address()) for _ in range(spec.ips_per_host)]
            certificate = cert_for.get(fqdn)
            server = SMTPServerConfig(
                identity=fqdn if spec.banner_style is BannerStyle.FQDN else None,
                banner_style=spec.banner_style,
                starttls=certificate is not None,
                certificate=certificate,
            )
            for address in addresses:
                self.host_table.bind(address, server)
            infra.mx_hosts.append(
                MailHost(fqdn=fqdn, addresses=addresses, server=server, owner_slug=spec.slug)
            )
            self.provider_zone_apexes.add(self.psl.registered_domain(fqdn) or fqdn)
            for address in addresses:
                self.provider_a_records.append((fqdn, address))

        for provider_id in spec.provider_ids:
            self.provider_zone_apexes.add(provider_id)

        if spec.vps_cert_domain:
            infra.vps_block = self.registry.allocate_block(spec.primary_asn, 20)
        if spec.customer_cert_fraction > 0:
            infra.dedicated_block = self.registry.allocate_block(spec.primary_asn, 20)

    def _company_certificates(self, spec: CompanySpec, fqdns: list[str]) -> dict[str, "object"]:
        """Certificates per MX host.

        With an explicit ``cert_cn`` the company uses one shared certificate
        for everything (Google).  Otherwise hosts are grouped by registered
        domain and each group gets its own certificate — which is what makes
        several provider IDs observable for one company (Table 5).
        """
        cert_for: dict[str, object] = {}
        if spec.has_valid_cert:
            if spec.cert_cn:
                sans = tuple(fqdns) + spec.cert_extra_sans
                shared = self.ca.issue(spec.cert_cn, sans=sans)
                return {fqdn: shared for fqdn in fqdns}
            by_domain: dict[str, list[str]] = {}
            for fqdn in fqdns:
                registered = self.psl.registered_domain(fqdn) or fqdn
                by_domain.setdefault(registered, []).append(fqdn)
            for members in by_domain.values():
                cert = self.ca.issue(members[0], sans=tuple(members[1:]))
                for fqdn in members:
                    cert_for[fqdn] = cert
            return cert_for
        if self.rng.random() < 0.5:
            shared = self_signed(spec.cert_cn or fqdns[0])
            return {fqdn: shared for fqdn in fqdns}
        return {}

    def _small_vps_slugs(self) -> tuple[str, ...]:
        """Unpopular hosting companies whose VPS customers evade step 4."""
        return tuple(
            slug for slug in sorted(self.companies)
            if self.companies[slug].spec.kind is CompanyKind.OTHER
        )[:6]

    def _base_zonedb(self) -> ZoneDB:
        """A fresh ZoneDB pre-populated with all provider-side records."""
        zdb = ZoneDB()
        for apex in sorted(self.provider_zone_apexes):
            zdb.ensure_zone(apex)
        for fqdn, address in self.provider_a_records:
            zdb.add(a_record(fqdn, address))
        # Published sender policies: customers reference these via
        # "include:_spf.<provider-id>".
        for infra in self.companies.values():
            if not infra.spf_prefixes:
                continue
            mechanisms = " ".join(f"ip4:{prefix}" for prefix in infra.spf_prefixes)
            for provider_id in infra.spec.provider_ids:
                if zdb.zone_for(f"_spf.{provider_id}") is not None:
                    zdb.add(spf_record(f"_spf.{provider_id}", f"{mechanisms} ~all"))
        return zdb

    # -- corpora -----------------------------------------------------------

    def _fresh_domain(self, tld: str) -> str:
        while True:
            name = f"{synth_label(self.rng)}.{tld}"
            if name not in self.used_names and name not in SHOWCASE_DOMAINS:
                self.used_names.add(name)
                return name

    def _weighted_choice(self, weights: dict[str, float]) -> str:
        total = sum(weights.values())
        roll = self.rng.random() * total
        cumulative = 0.0
        for key, weight in weights.items():
            cumulative += weight
            if roll < cumulative:
                return key
        return next(reversed(weights))  # pragma: no cover - float fringe

    def _generate_corpora(self) -> dict[str, DomainEntity]:
        entities: dict[str, DomainEntity] = {}
        segments: list[tuple[ShareTable, list[DomainEntity]]] = []

        # Alexa: rank buckets split into a gTLD segment per bucket plus one
        # segment per ccTLD (ccTLD provider mix does not vary with rank).
        cctld_members: dict[str, list[DomainEntity]] = {cc: [] for cc in ALEXA_CCTLD_TABLES}
        gtld_tlds = ("com", "com", "com", "net", "org", "io", "info")
        for bucket in iter_alexa_buckets(self.config.alexa_size):
            members: list[DomainEntity] = []
            for _ in range(bucket.count):
                rank = self.rng.randint(bucket.low, bucket.high)
                if self.rng.random() < bucket.cc_fraction:
                    cctld = self._weighted_choice(bucket.cc_weights)
                    name = self._fresh_domain(cctld)
                    entity = DomainEntity(
                        name=name, dataset=DatasetTag.ALEXA, alexa_rank=rank, cctld=cctld
                    )
                    cctld_members[cctld].append(entity)
                else:
                    name = self._fresh_domain(self.rng.choice(gtld_tlds))
                    entity = DomainEntity(
                        name=name, dataset=DatasetTag.ALEXA, alexa_rank=rank
                    )
                    members.append(entity)
                entities[entity.name] = entity
            segments.append((bucket.table, members))
        for cctld, members in cctld_members.items():
            segments.append((ALEXA_CCTLD_TABLES[cctld], members))

        # Random .com corpus.
        com_members = []
        for _ in range(self.config.com_size):
            entity = DomainEntity(name=self._fresh_domain("com"), dataset=DatasetTag.COM)
            entities[entity.name] = entity
            com_members.append(entity)
        segments.append((COM_TABLE, com_members))

        # .gov corpus, split federal / non-federal.
        federal_members, nonfederal_members = [], []
        for _ in range(self.config.gov_size):
            is_federal = self.rng.random() < GOV_FEDERAL_FRACTION
            entity = DomainEntity(
                name=self._fresh_domain("gov"), dataset=DatasetTag.GOV, is_federal=is_federal
            )
            entities[entity.name] = entity
            (federal_members if is_federal else nonfederal_members).append(entity)
        segments.append((GOV_FEDERAL_TABLE, federal_members))
        segments.append((GOV_NONFEDERAL_TABLE, nonfederal_members))

        others_pool = tuple(
            slug for slug, infra in sorted(self.companies.items())
            if infra.spec.kind is CompanyKind.OTHER
        )
        for table, members in segments:
            self._assign_segment(table, members, others_pool)
        return entities

    def _assign_segment(
        self,
        table: ShareTable,
        members: list[DomainEntity],
        others_pool: tuple[str, ...],
    ) -> None:
        evolver = SegmentEvolver(
            table=table,
            rng=random.Random(self.rng.getrandbits(32)),
            others_pool=others_pool,
            swap_rate=self.config.swap_rate,
        )
        assignment = evolver.assign([entity.name for entity in members])
        for entity in members:
            for category in assignment.categories[entity.name]:
                entity.assignments.append(
                    self._materialize_assignment(entity.name, category)
                )

    def _materialize_assignment(self, name: str, category: str) -> DomainAssignment:
        if category == SELF:
            return DomainAssignment(
                company_slug=None, truth=TRUTH_SELF, style=pick_style(name, SELF)
            )
        if category == NONE:
            return DomainAssignment(
                company_slug=None, truth=TRUTH_NONE, style=pick_style(name, NONE)
            )
        spec = self.companies[category].spec
        style = pick_style(name, category, spec.default_mx_is_customer_named)
        secondary = None
        if (
            style is ProvisioningStyle.PROVIDER_NAMED
            and spec.kind is CompanyKind.MAILBOX
            and (domain_fingerprint(name, "splitmx") % 10_000) / 10_000.0 < SPLIT_MX_FRACTION
        ):
            secondary = "google" if category != "google" else "microsoft"
        # Filtering customers forward to a mailbox provider behind the
        # filter; most reveal it in SPF (the Section 3.4 multi-hop case).
        eventual = None
        if spec.kind is CompanyKind.SECURITY:
            roll = (domain_fingerprint(name, "eventual") % 10_000) / 10_000.0
            if roll < 0.70:
                eventual = "microsoft" if roll < 0.40 else "google"
        return DomainAssignment(
            company_slug=category, truth=category, style=style,
            secondary_slug=secondary, eventual_slug=eventual,
        )

    def _showcase_entities(self) -> dict[str, DomainEntity]:
        """The paper's worked examples (Tables 1 and 2), pinned in every snapshot."""
        def fixed(entity: DomainEntity, assignment: DomainAssignment) -> DomainEntity:
            entity.assignments = [assignment] * NUM_SNAPSHOTS
            return entity

        showcase = {
            "netflix.com": fixed(
                DomainEntity(name="netflix.com", dataset=DatasetTag.ALEXA, alexa_rank=25),
                DomainAssignment("google", "google", ProvisioningStyle.PROVIDER_NAMED),
            ),
            "gsipartners.com": fixed(
                DomainEntity(name="gsipartners.com", dataset=DatasetTag.COM),
                DomainAssignment("google", "google", ProvisioningStyle.CUSTOMER_NAMED),
            ),
            "beats24-7.com": fixed(
                DomainEntity(name="beats24-7.com", dataset=DatasetTag.COM),
                DomainAssignment(
                    "mailspamprotection", "mailspamprotection", ProvisioningStyle.PROVIDER_NAMED
                ),
            ),
            "jeniustoto.net": fixed(
                DomainEntity(name="jeniustoto.net", dataset=DatasetTag.ALEXA, alexa_rank=500_000),
                DomainAssignment(None, TRUTH_NONE, ProvisioningStyle.NO_SMTP),
            ),
            "utexas.edu": fixed(
                DomainEntity(name="utexas.edu", dataset=DatasetTag.ALEXA, alexa_rank=3_000),
                DomainAssignment("ironport", "ironport", ProvisioningStyle.PROVIDER_NAMED),
            ),
        }
        return showcase
