"""Eventual-provider analysis (extension of Section 3.4).

Quantifies how much the MX-only view of "who's got your mail" understates
the mailbox duopoly: for every domain whose MX points at a filtering
service, the SPF heuristic recovers the mailbox provider behind the filter
and re-attributes the domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.companies import CompanyMap
from ..core.spf import EventualInference, EventualProviderAnalyzer
from ..core.types import DomainInference, DomainStatus
from ..measure.dataset import DomainMeasurement
from ..world.entities import CompanyKind


@dataclass
class EventualProviderReport:
    """Results of the SPF sweep over one corpus."""

    inferences: dict[str, EventualInference]
    filtered_total: int          # domains fronted by a security company
    revealed: int                # ... whose SPF reveals the mailbox provider
    eventual_counts: dict[str, int]  # mailbox slug → domains behind filters

    @property
    def reveal_rate(self) -> float:
        return self.revealed / self.filtered_total if self.filtered_total else 0.0


def eventual_provider_report(
    measurements: dict[str, DomainMeasurement],
    inferences: dict[str, DomainInference],
    company_map: CompanyMap,
) -> EventualProviderReport:
    """Run the SPF eventual-provider heuristic over a corpus."""
    analyzer = EventualProviderAnalyzer(company_map=company_map, psl=company_map.psl)
    results: dict[str, EventualInference] = {}
    eventual_counts: dict[str, int] = {}
    filtered_total = 0
    revealed = 0

    for domain, inference in inferences.items():
        if inference.status is not DomainStatus.INFERRED:
            continue
        resolved = company_map.resolve_attributions(domain, inference.attributions)
        front = max(resolved, key=lambda label: (resolved[label], label))
        if company_map.kind(front) is not CompanyKind.SECURITY:
            continue
        filtered_total += 1
        measurement = measurements.get(domain)
        spf_texts = measurement.spf_records if measurement is not None else ()
        result = analyzer.analyze(domain, spf_texts, front)
        results[domain] = result
        if result.hides_mailbox_provider:
            revealed += 1
            assert result.eventual_slug is not None
            eventual_counts[result.eventual_slug] = (
                eventual_counts.get(result.eventual_slug, 0) + 1
            )

    return EventualProviderReport(
        inferences=results,
        filtered_total=filtered_total,
        revealed=revealed,
        eventual_counts=eventual_counts,
    )


def adjusted_mailbox_counts(
    report: EventualProviderReport,
    base_counts: dict[str, float],
) -> dict[str, float]:
    """Mailbox-provider counts with filtered domains re-attributed.

    ``base_counts`` are the MX-level company weights; domains whose SPF
    reveals a mailbox provider behind a filter are added to that provider.
    """
    adjusted = dict(base_counts)
    for slug, count in report.eventual_counts.items():
        adjusted[slug] = adjusted.get(slug, 0.0) + count
    return adjusted
