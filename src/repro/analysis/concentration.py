"""Market-concentration metrics (extension).

The paper's motivation is the *centralization* of mail service (Section 1:
"such centralization can bring both economies of scale and shared failure
risk").  This module quantifies it with the standard concentration
measures — the Herfindahl–Hirschman Index and CR-k concentration ratios —
computed over the inferred provider market, per snapshot, so the
consolidation trend of Figure 6 becomes a single rising curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.companies import SELF_LABEL, CompanyMap
from ..core.types import DomainInference
from .market_share import MarketShare, compute_market_share


@dataclass(frozen=True)
class ConcentrationPoint:
    """Concentration measures for one corpus at one snapshot."""

    hhi: float                 # 0..10_000 (monopoly)
    cr1: float                 # share of the largest provider (0..1)
    cr4: float
    cr10: float
    effective_providers: float  # 1 / sum(share^2): "numbers equivalent"
    attributed_domains: float


def market_concentration(
    share: MarketShare, treat_self_as_distinct: bool = True
) -> ConcentrationPoint:
    """Concentration of the provider market behind a share computation.

    Shares are normalized over *attributed* mass (domains with a working,
    identified provider).  When ``treat_self_as_distinct`` each self-hosting
    domain is its own one-domain provider — the decentralized baseline —
    rather than one aggregate "SELF" pseudo-provider.
    """
    weights = dict(share.weights)
    self_mass = weights.pop(SELF_LABEL, 0.0)
    total = sum(weights.values()) + self_mass
    if total <= 0:
        return ConcentrationPoint(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    shares = sorted((weight / total for weight in weights.values()), reverse=True)
    sum_squares = sum(value * value for value in shares)
    if self_mass > 0:
        if treat_self_as_distinct:
            # n one-domain providers, each with share (1/total).
            sum_squares += self_mass * (1.0 / total) ** 2
            # CR-k is unaffected: single domains never reach the top.
        else:
            shares.append(self_mass / total)
            shares.sort(reverse=True)
            sum_squares += (self_mass / total) ** 2

    def cr(k: int) -> float:
        return sum(shares[:k])

    return ConcentrationPoint(
        hhi=10_000.0 * sum_squares,
        cr1=cr(1),
        cr4=cr(4),
        cr10=cr(10),
        effective_providers=1.0 / sum_squares if sum_squares else math.inf,
        attributed_domains=total,
    )


def concentration_series(
    per_snapshot_inferences: list[dict[str, DomainInference] | None],
    domains: list[str],
    company_map: CompanyMap,
) -> list[ConcentrationPoint | None]:
    """Concentration at every snapshot (None where coverage is missing)."""
    series: list[ConcentrationPoint | None] = []
    for inferences in per_snapshot_inferences:
        if inferences is None:
            series.append(None)
            continue
        share = compute_market_share(inferences, domains, company_map)
        series.append(market_concentration(share))
    return series
