"""Company market share (Section 5.1, Figure 5; Appendix Table 6).

Resolves per-domain attributions to companies and ranks them.  Percentages
use the full corpus as denominator (domains without working mail service
simply contribute to no company), matching the paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.companies import SELF_LABEL, CompanyMap
from ..core.types import DomainInference, DomainStatus


@dataclass(frozen=True)
class ShareRow:
    """One company's standing in one corpus."""

    rank: int
    label: str          # company slug, SELF, or a raw provider ID
    display: str
    count: float        # weighted domain count (split-MX domains count 0.5)
    percent: float


@dataclass
class MarketShare:
    """Weighted company attribution over a set of domains."""

    weights: dict[str, float]
    total_domains: int

    def share_of(self, label: str) -> float:
        return self.weights.get(label, 0.0) / self.total_domains if self.total_domains else 0.0

    def count_of(self, label: str) -> float:
        return self.weights.get(label, 0.0)

    def top(self, k: int, exclude: tuple[str, ...] = (SELF_LABEL,)) -> list[ShareRow]:
        """The top *k* companies (self-hosting excluded by default)."""
        entries = [
            (label, weight)
            for label, weight in self.weights.items()
            if label not in exclude
        ]
        entries.sort(key=lambda item: (-item[1], item[0]))
        return [
            ShareRow(
                rank=index + 1,
                label=label,
                display=label,
                count=weight,
                percent=100.0 * weight / self.total_domains if self.total_domains else 0.0,
            )
            for index, (label, weight) in enumerate(entries[:k])
        ]


def compute_market_share(
    inferences: dict[str, DomainInference],
    domains: list[str],
    company_map: CompanyMap,
) -> MarketShare:
    """Aggregate inferences for *domains* into company-level weights."""
    weights: dict[str, float] = {}
    for domain in domains:
        inference = inferences.get(domain)
        if inference is None or inference.status is not DomainStatus.INFERRED:
            continue
        resolved = company_map.resolve_attributions(domain, inference.attributions)
        for label, weight in resolved.items():
            weights[label] = weights.get(label, 0.0) + weight
    return MarketShare(weights=weights, total_domains=len(domains))


def top_rows_with_display(
    share: MarketShare, company_map: CompanyMap, k: int
) -> list[ShareRow]:
    """Top-k rows with human-readable company names filled in."""
    return [
        ShareRow(
            rank=row.rank,
            label=row.label,
            display=company_map.display(row.label),
            count=row.count,
            percent=row.percent,
        )
        for row in share.top(k)
    ]


def self_hosted_count(share: MarketShare) -> float:
    """Weighted count of self-hosting domains (Section 5.2.1's criterion)."""
    return share.count_of(SELF_LABEL)
