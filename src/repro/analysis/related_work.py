"""Related-work comparison: hostname-level provider estimation (§2.4).

The paper notes that Durumeric et al. [13] estimated top mail providers as
a side result, but that "their methodology may underestimate the influence
of major providers (notably Microsoft)".  The mechanism is observable in
any MX dataset: ranking by *exact MX hostname* fragments providers that
hand every customer an individual MX name (Microsoft's
``<customer>.mail.protection.outlook.com``, ProofPoint's
``mx0a-<id>.pphosted.com``), while providers with shared hostnames
(Google's ``aspmx.l.google.com``) aggregate naturally.

This module implements the hostname-level estimator and the comparison
against company-level attribution, reproducing that underestimation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.companies import CompanyMap
from ..measure.dataset import DomainMeasurement


@dataclass(frozen=True)
class HostnameRankRow:
    """One entry of the hostname-level top list."""

    rank: int
    mx_name: str
    domains: int
    company: str | None  # resolved post-hoc, for the comparison


def top_mx_hostnames(
    measurements: dict[str, DomainMeasurement],
    company_map: CompanyMap,
    k: int = 10,
) -> list[HostnameRankRow]:
    """The Durumeric-style estimate: rank exact primary-MX hostnames."""
    counts: Counter = Counter()
    for measurement in measurements.values():
        for mx in measurement.primary_mx:
            counts[mx.name] += 1
    rows = []
    for rank, (name, count) in enumerate(counts.most_common(k), start=1):
        registered = company_map.psl.registered_domain(name)
        company = (
            company_map.slug_for_provider_id(registered) if registered else None
        )
        rows.append(
            HostnameRankRow(rank=rank, mx_name=name, domains=count, company=company)
        )
    return rows


@dataclass(frozen=True)
class UnderestimationReport:
    """How badly hostname-level counting understates one company."""

    company: str
    true_domains: float          # company-level attribution
    best_single_hostname: int    # largest count any one of its MXes gets
    distinct_hostnames: int      # how many MX names its customers spread over

    @property
    def fragmentation(self) -> float:
        """true count / best hostname count — 1.0 means no fragmentation."""
        if self.best_single_hostname == 0:
            return float("inf") if self.true_domains else 1.0
        return self.true_domains / self.best_single_hostname


def underestimation_of(
    company_slug: str,
    measurements: dict[str, DomainMeasurement],
    company_weights: dict[str, float],
    company_map: CompanyMap,
) -> UnderestimationReport:
    """Quantify hostname fragmentation for one company."""
    per_hostname: Counter = Counter()
    for measurement in measurements.values():
        for mx in measurement.primary_mx:
            registered = company_map.psl.registered_domain(mx.name)
            if registered and company_map.slug_for_provider_id(registered) == company_slug:
                per_hostname[mx.name] += 1
    best = max(per_hostname.values(), default=0)
    return UnderestimationReport(
        company=company_slug,
        true_domains=company_weights.get(company_slug, 0.0),
        best_single_hostname=best,
        distinct_hostnames=len(per_hostname),
    )
