"""Approach-accuracy evaluation (Section 3.3, Figure 4).

Samples evaluation sets from each corpus — 200 random domains with SMTP
servers, and 200 such domains with *unique* MX records — and scores the
four approaches against ground truth.  The priority-based approach also
reports how many domains step 4 examined (Figure 4's dark-green bars).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.baselines import (
    ALL_APPROACHES,
    APPROACH_BANNER,
    APPROACH_CERT,
    APPROACH_MX_ONLY,
    APPROACH_PRIORITY,
)
from ..core.companies import NONE_LABEL, SELF_LABEL, CompanyMap
from ..core.types import DomainInference, DomainStatus
from ..measure.dataset import DomainMeasurement
from ..world.entities import TRUTH_NONE, TRUTH_SELF

DEFAULT_SAMPLE_SIZE = 200


def truth_labels(ground_truth: dict[str, float]) -> set[str]:
    """Normalize a world ground-truth dict to analysis labels."""
    labels = set()
    for label in ground_truth:
        if label == TRUTH_SELF:
            labels.add(SELF_LABEL)
        elif label == TRUTH_NONE:
            labels.add(NONE_LABEL)
        else:
            labels.add(label)
    return labels


def inference_labels(inference: DomainInference, company_map: CompanyMap) -> set[str]:
    """The label set an inference asserts (company slugs / SELF / NONE)."""
    if inference.status in (
        DomainStatus.NO_SMTP, DomainStatus.NO_MX_IP, DomainStatus.NO_MX,
    ):
        return {NONE_LABEL}
    resolved = company_map.resolve_attributions(
        inference.domain, inference.attributions
    )
    return set(resolved)


def is_correct(
    inference: DomainInference,
    ground_truth: dict[str, float],
    company_map: CompanyMap,
) -> bool:
    """Does an inference agree with ground truth (exact label-set match)?"""
    return inference_labels(inference, company_map) == truth_labels(ground_truth)


def unique_mx_domains(measurements: dict[str, DomainMeasurement]) -> list[str]:
    """Domains whose primary MX names appear for no other domain."""
    owners: dict[str, set[str]] = {}
    for domain, measurement in measurements.items():
        for mx in measurement.primary_mx:
            owners.setdefault(mx.name, set()).add(domain)
    unique = []
    for domain, measurement in measurements.items():
        names = [mx.name for mx in measurement.primary_mx]
        if names and all(len(owners[name]) == 1 for name in names):
            unique.append(domain)
    return unique


def sample_with_smtp(
    measurements: dict[str, DomainMeasurement],
    candidates: list[str],
    size: int,
    rng: random.Random,
) -> list[str]:
    """Sample domains that actually run an SMTP server (footnote 4)."""
    eligible = sorted(
        domain for domain in candidates if measurements[domain].has_smtp_server
    )
    if len(eligible) <= size:
        return eligible
    return rng.sample(eligible, size)


@dataclass(frozen=True)
class AccuracyCell:
    """One bar of Figure 4: an approach on one evaluation set."""

    sample_set: str
    approach: str
    correct: int
    total: int
    examined: int = 0  # step-4 candidates inside the sample (priority only)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


@dataclass
class AccuracyEvaluation:
    """Figure 4 for one corpus: plain and unique-MX samples × 4 approaches."""

    cells: list[AccuracyCell]

    def cell(self, sample_set: str, approach: str) -> AccuracyCell:
        for cell in self.cells:
            if cell.sample_set == sample_set and cell.approach == approach:
                return cell
        raise KeyError((sample_set, approach))


def evaluate_approaches(
    dataset_name: str,
    measurements: dict[str, DomainMeasurement],
    inferences_by_approach: dict[str, dict[str, DomainInference]],
    ground_truth_of: "callable",
    company_map: CompanyMap,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 1729,
) -> AccuracyEvaluation:
    """Build Figure 4 cells for one corpus.

    ``inferences_by_approach`` maps approach names (see
    :mod:`repro.core.baselines`) to full-corpus inference dicts;
    ``ground_truth_of`` maps a domain name to its truth attribution.
    """
    missing = set(ALL_APPROACHES) - set(inferences_by_approach)
    if missing:
        raise ValueError(f"missing approaches: {sorted(missing)}")

    rng = random.Random(seed)
    all_domains = sorted(measurements)
    samples = {
        f"{dataset_name}": sample_with_smtp(measurements, all_domains, sample_size, rng),
        f"{dataset_name} w/Unique MX": sample_with_smtp(
            measurements, unique_mx_domains(measurements), sample_size, rng
        ),
    }

    cells = []
    for sample_name, sample in samples.items():
        for approach in (
            APPROACH_MX_ONLY, APPROACH_CERT, APPROACH_BANNER, APPROACH_PRIORITY,
        ):
            inferences = inferences_by_approach[approach]
            correct = sum(
                1
                for domain in sample
                if is_correct(inferences[domain], ground_truth_of(domain), company_map)
            )
            examined = 0
            if approach == APPROACH_PRIORITY:
                examined = sum(
                    1 for domain in sample if inferences[domain].examined
                )
            cells.append(
                AccuracyCell(
                    sample_set=sample_name,
                    approach=approach,
                    correct=correct,
                    total=len(sample),
                    examined=examined,
                )
            )
    return AccuracyEvaluation(cells=cells)
