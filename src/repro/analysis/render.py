"""Plain-text renderers for tables and figure data.

Every experiment prints its output through these helpers so benchmark runs
regenerate paper-shaped artifacts (rows of Table 6, series of Figure 6, …)
as readable monospace tables.
"""

from __future__ import annotations

import math
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[index]) for index, value in enumerate(values)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_percent(value: float, decimals: int = 1) -> str:
    if math.isnan(value):
        return "-"
    return f"{value:.{decimals}f}%"


def format_count_percent(count: float, percent: float) -> str:
    """The paper's "26,697 (28.5%)" cell format."""
    return f"{count:,.0f} ({format_percent(percent)})"


def sparkline(values: Sequence[float]) -> str:
    """Tiny inline trend for a series (NaN renders as a gap)."""
    blocks = "▁▂▃▄▅▆▇█"
    measured = [value for value in values if not math.isnan(value)]
    if not measured:
        return ""
    low, high = min(measured), max(measured)
    span = (high - low) or 1.0
    out = []
    for value in values:
        if math.isnan(value):
            out.append(" ")
        else:
            index = int((value - low) / span * (len(blocks) - 1))
            out.append(blocks[index])
    return "".join(out)
