"""Longitudinal market-share trends (Section 5.2, Figure 6).

Given one inference run per snapshot, produces per-company time series of
weighted domain counts and corpus percentages — the curves of Figures
6a–6i — plus the self-hosted series and category totals (the "Top5 Total"
and security/hosting "Total" lines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.companies import SELF_LABEL, CompanyMap
from ..core.types import DomainInference
from .market_share import MarketShare, compute_market_share


@dataclass(frozen=True)
class TrendSeries:
    """One curve: a label and its value at every snapshot (NaN = no data)."""

    label: str
    display: str
    counts: tuple[float, ...]
    percents: tuple[float, ...]

    def delta_percent(self) -> float:
        """Change from the first to the last *measured* snapshot."""
        measured = [p for p in self.percents if not math.isnan(p)]
        if len(measured) < 2:
            return 0.0
        return measured[-1] - measured[0]

    @property
    def first_measured(self) -> float:
        for value in self.percents:
            if not math.isnan(value):
                return value
        return math.nan

    @property
    def last_measured(self) -> float:
        for value in reversed(self.percents):
            if not math.isnan(value):
                return value
        return math.nan


@dataclass
class LongitudinalResult:
    """All series for one corpus across the study window."""

    series: dict[str, TrendSeries]
    snapshots: int

    def __getitem__(self, label: str) -> TrendSeries:
        return self.series[label]

    def total_series(self, labels: list[str], display: str = "Total") -> TrendSeries:
        """Sum of several series (e.g. "Top5 Total")."""
        counts, percents = [], []
        for index in range(self.snapshots):
            values = [self.series[label].percents[index] for label in labels]
            if any(math.isnan(value) for value in values):
                counts.append(math.nan)
                percents.append(math.nan)
            else:
                counts.append(sum(self.series[label].counts[index] for label in labels))
                percents.append(sum(values))
        return TrendSeries(
            label="total",
            display=display,
            counts=tuple(counts),
            percents=tuple(percents),
        )


def market_share_over_time(
    per_snapshot_inferences: list[dict[str, DomainInference] | None],
    domains: list[str],
    company_map: CompanyMap,
    labels: list[str],
    include_self_hosted: bool = True,
) -> LongitudinalResult:
    """Build trend series for *labels* over the snapshots.

    ``per_snapshot_inferences`` may contain None entries for snapshots
    without measurement coverage (the pre-2018 ``.gov`` gap); those yield
    NaN points.
    """
    wanted = list(labels)
    if include_self_hosted and SELF_LABEL not in wanted:
        wanted.append(SELF_LABEL)

    shares: list[MarketShare | None] = []
    for inferences in per_snapshot_inferences:
        if inferences is None:
            shares.append(None)
        else:
            shares.append(compute_market_share(inferences, domains, company_map))

    series = {}
    for label in wanted:
        counts, percents = [], []
        for share in shares:
            if share is None:
                counts.append(math.nan)
                percents.append(math.nan)
            else:
                counts.append(share.count_of(label))
                percents.append(100.0 * share.share_of(label))
        display = "Self-Hosted" if label == SELF_LABEL else company_map.display(label)
        series[label] = TrendSeries(
            label=label,
            display=display,
            counts=tuple(counts),
            percents=tuple(percents),
        )
    return LongitudinalResult(series=series, snapshots=len(per_snapshot_inferences))
