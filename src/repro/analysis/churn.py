"""Provider churn between snapshots (Section 5.3, Figure 7).

Buckets every domain into a Sankey category at the first and last snapshot
and counts the flows between categories.  Categories follow the paper:
the top three third-party mail hosting providers individually, the rest of
the top-100 providers, self-hosted domains, all other providers, and the
residual with no responding SMTP server.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.companies import SELF_LABEL, CompanyMap
from ..core.types import DomainInference, DomainStatus
from .market_share import compute_market_share

CATEGORY_SELF = "Self-Hosted"
CATEGORY_TOP100 = "Top100"
CATEGORY_OTHERS = "Others"
CATEGORY_NO_SMTP = "No SMTP"


@dataclass
class ChurnMatrix:
    """Flows between Sankey categories from one snapshot to another."""

    categories: list[str]
    flows: Counter  # (from_category, to_category) -> domain count

    def flow(self, source: str, target: str) -> int:
        return self.flows.get((source, target), 0)

    def outgoing(self, source: str) -> int:
        """Domains that left *source* for any other category."""
        return sum(
            count for (s, t), count in self.flows.items() if s == source and t != source
        )

    def incoming(self, target: str) -> int:
        """Domains that arrived at *target* from any other category."""
        return sum(
            count for (s, t), count in self.flows.items() if t == target and s != target
        )

    def stayed(self, category: str) -> int:
        return self.flow(category, category)

    def total_from(self, source: str) -> int:
        return sum(count for (s, _t), count in self.flows.items() if s == source)

    def total_to(self, target: str) -> int:
        return sum(count for (_s, t), count in self.flows.items() if t == target)

    @property
    def total(self) -> int:
        return sum(self.flows.values())

    def to_sankey(self, first_label: str = "first", last_label: str = "last") -> dict:
        """Node/link structure for a Sankey renderer (Figure 7's format).

        Nodes are category names suffixed with the snapshot label; links
        carry the inter-category flow counts (zero flows omitted).
        """
        nodes = [
            {"id": f"{category} {first_label}"} for category in self.categories
        ] + [
            {"id": f"{category} {last_label}"} for category in self.categories
        ]
        links = [
            {
                "source": f"{source} {first_label}",
                "target": f"{target} {last_label}",
                "value": count,
            }
            for (source, target), count in sorted(self.flows.items())
            if count > 0
        ]
        return {"nodes": nodes, "links": links}


def domain_category(
    domain: str,
    inference: DomainInference | None,
    company_map: CompanyMap,
    top3: list[str],
    top100: set[str],
) -> str:
    """Sankey category of one domain at one snapshot."""
    if inference is None or inference.status in (
        DomainStatus.NO_SMTP, DomainStatus.NO_MX_IP, DomainStatus.NO_MX,
    ):
        return CATEGORY_NO_SMTP
    resolved = company_map.resolve_attributions(domain, inference.attributions)
    # Deterministic pick: the heaviest label, ties broken by name.
    label = min(resolved, key=lambda item: (-resolved[item], item))
    if label == SELF_LABEL:
        return CATEGORY_SELF
    if label in top3:
        return company_map.display(label)
    if label in top100:
        return CATEGORY_TOP100
    return CATEGORY_OTHERS


def top_provider_labels(
    inferences: dict[str, DomainInference],
    domains: list[str],
    company_map: CompanyMap,
    k: int,
) -> list[str]:
    """The top-k provider labels by weighted count (SELF excluded)."""
    share = compute_market_share(inferences, domains, company_map)
    return [row.label for row in share.top(k)]


def churn_matrix(
    first: dict[str, DomainInference],
    last: dict[str, DomainInference],
    domains: list[str],
    company_map: CompanyMap,
    top3_count: int = 3,
    top100_count: int = 100,
) -> ChurnMatrix:
    """Figure 7's flow matrix between the first and last snapshots.

    Top-3 / top-100 membership is fixed from the *first* snapshot's ranking,
    as in the paper's category definition.
    """
    ranked = top_provider_labels(first, domains, company_map, top100_count)
    top3 = ranked[:top3_count]
    top100 = set(ranked[top3_count:])

    display_top3 = [company_map.display(label) for label in top3]
    categories = display_top3 + [
        CATEGORY_TOP100, CATEGORY_SELF, CATEGORY_OTHERS, CATEGORY_NO_SMTP,
    ]

    flows: Counter = Counter()
    for domain in domains:
        source = domain_category(domain, first.get(domain), company_map, top3, top100)
        target = domain_category(domain, last.get(domain), company_map, top3, top100)
        flows[(source, target)] += 1
    return ChurnMatrix(categories=categories, flows=flows)
