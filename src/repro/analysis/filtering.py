"""Data-availability breakdown (Section 4.3, Table 4).

Partitions a corpus's measurements into the paper's exclusive waterfall
categories: the first missing layer of the evidence stack claims the
domain.

1. **No MX IP** — no MX name resolves to an address.
2. **No Censys** — addresses resolve, but Censys has no data for any.
3. **No Port 25 Data** — scan data exists, but no address accepts SMTP.
4. **No Valid SSL Cert.** — SMTP answers, but no server presents a
   browser-trusted certificate.
5. **No Valid Banner/EHLO** — a valid certificate exists, but no usable
   banner/EHLO identity.
6. **No Missing Data** — everything available.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement
from ..smtp.banner import identity_from_message
from ..tls.ca import TrustStore

CATEGORY_NO_MX_IP = "No MX IP"
CATEGORY_NO_CENSYS = "No Censys"
CATEGORY_NO_PORT25 = "No Port 25 Data"
CATEGORY_NO_VALID_CERT = "No Valid SSL Cert."
CATEGORY_NO_VALID_BANNER = "No Valid Banner/EHLO"
CATEGORY_COMPLETE = "No Missing Data"

CATEGORIES = (
    CATEGORY_NO_MX_IP,
    CATEGORY_NO_CENSYS,
    CATEGORY_NO_PORT25,
    CATEGORY_NO_VALID_CERT,
    CATEGORY_NO_VALID_BANNER,
    CATEGORY_COMPLETE,
)


@dataclass
class AvailabilityBreakdown:
    """Table 4 for one corpus: category → domain count."""

    counts: dict[str, int]
    total: int

    def fraction(self, category: str) -> float:
        return self.counts.get(category, 0) / self.total if self.total else 0.0


def classify_domain(
    measurement: DomainMeasurement,
    trust_store: TrustStore,
    psl: PublicSuffixList | None = None,
) -> str:
    """Assign one domain to its Table 4 waterfall category."""
    psl = psl or default_psl()
    ips = [ip for mx in measurement.primary_mx for ip in mx.ips]
    if not ips:
        return CATEGORY_NO_MX_IP

    scans = [ip.scan for ip in ips if ip.scan is not None]
    if not scans:
        return CATEGORY_NO_CENSYS

    open_scans = [scan for scan in scans if scan.has_smtp]
    if not open_scans:
        return CATEGORY_NO_PORT25

    has_valid_cert = any(
        scan.certificate is not None
        and trust_store.is_valid(scan.certificate, on=measurement.measured_on)
        for scan in open_scans
    )
    if not has_valid_cert:
        return CATEGORY_NO_VALID_CERT

    has_valid_banner = any(
        (scan.banner and identity_from_message(scan.banner, psl).usable)
        or (scan.ehlo and identity_from_message(scan.ehlo, psl).usable)
        for scan in open_scans
    )
    if not has_valid_banner:
        return CATEGORY_NO_VALID_BANNER
    return CATEGORY_COMPLETE


def availability_breakdown(
    measurements: dict[str, DomainMeasurement],
    trust_store: TrustStore,
    psl: PublicSuffixList | None = None,
) -> AvailabilityBreakdown:
    """Table 4 over a full corpus."""
    psl = psl or default_psl()
    counts = {category: 0 for category in CATEGORIES}
    for measurement in measurements.values():
        counts[classify_domain(measurement, trust_store, psl)] += 1
    return AvailabilityBreakdown(counts=counts, total=len(measurements))
