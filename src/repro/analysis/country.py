"""Mail-provider preference by country (Section 5.4, Figure 8).

For each ccTLD of interest and each of the four focal providers (Google,
Microsoft, Tencent, Yandex — the dominant US, Chinese and Russian mail
services), compute the share of that ccTLD's domains hosted by the
provider.  The ccTLD is used as a proxy for the registrant's nationality,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.companies import CompanyMap
from ..core.types import DomainInference
from .market_share import compute_market_share

FOCAL_PROVIDERS = ("google", "microsoft", "tencent", "yandex")

CCTLDS = (
    "br", "ar", "uk", "fr", "de", "it", "es", "ro",
    "ca", "au", "ru", "cn", "jp", "in", "sg",
)

# Home country of each focal provider's legal jurisdiction.
PROVIDER_HOME = {"google": "us", "microsoft": "us", "tencent": "cn", "yandex": "ru"}


@dataclass(frozen=True)
class CountryCell:
    """One heatmap cell of Figure 8."""

    cctld: str
    provider: str
    count: float
    percent: float
    total_domains: int


@dataclass
class CountryPreferences:
    """Figure 8: ccTLD × provider usage matrix."""

    cells: dict[tuple[str, str], CountryCell]
    cctlds: tuple[str, ...]
    providers: tuple[str, ...]

    def cell(self, cctld: str, provider: str) -> CountryCell:
        return self.cells[(cctld, provider)]

    def percent(self, cctld: str, provider: str) -> float:
        return self.cells[(cctld, provider)].percent

    def us_share(self, cctld: str) -> float:
        """Combined Google + Microsoft share (the US-jurisdiction share)."""
        return self.percent(cctld, "google") + self.percent(cctld, "microsoft")

    def dominant_cctld(self, provider: str) -> str:
        """The ccTLD where *provider* has its largest share."""
        return max(self.cctlds, key=lambda cc: self.percent(cc, provider))


def country_preferences(
    inferences: dict[str, DomainInference],
    domains_by_cctld: dict[str, list[str]],
    company_map: CompanyMap,
    providers: tuple[str, ...] = FOCAL_PROVIDERS,
) -> CountryPreferences:
    """Compute the Figure 8 matrix from per-ccTLD domain lists."""
    cells = {}
    cctlds = tuple(sorted(domains_by_cctld))
    for cctld, domains in domains_by_cctld.items():
        share = compute_market_share(inferences, domains, company_map)
        for provider in providers:
            cells[(cctld, provider)] = CountryCell(
                cctld=cctld,
                provider=provider,
                count=share.count_of(provider),
                percent=100.0 * share.share_of(provider),
                total_domains=len(domains),
            )
    return CountryPreferences(cells=cells, cctlds=cctlds, providers=tuple(providers))
