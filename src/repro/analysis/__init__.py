"""The paper's analyses: accuracy, availability, market share, trends,
churn, and national preferences."""

from .accuracy import (
    AccuracyCell,
    AccuracyEvaluation,
    evaluate_approaches,
    inference_labels,
    is_correct,
    sample_with_smtp,
    truth_labels,
    unique_mx_domains,
)
from .churn import (
    CATEGORY_NO_SMTP,
    CATEGORY_OTHERS,
    CATEGORY_SELF,
    CATEGORY_TOP100,
    ChurnMatrix,
    churn_matrix,
    domain_category,
    top_provider_labels,
)
from .country import (
    CCTLDS,
    FOCAL_PROVIDERS,
    CountryCell,
    CountryPreferences,
    country_preferences,
)
from .filtering import (
    CATEGORIES,
    AvailabilityBreakdown,
    availability_breakdown,
    classify_domain,
)
from .longitudinal import LongitudinalResult, TrendSeries, market_share_over_time
from .related_work import (
    HostnameRankRow,
    UnderestimationReport,
    top_mx_hostnames,
    underestimation_of,
)
from .concentration import ConcentrationPoint, concentration_series, market_concentration
from .eventual import EventualProviderReport, adjusted_mailbox_counts, eventual_provider_report
from .market_share import (
    MarketShare,
    ShareRow,
    compute_market_share,
    self_hosted_count,
    top_rows_with_display,
)
from .render import format_count_percent, format_percent, format_table, sparkline

__all__ = [
    "AccuracyCell",
    "AccuracyEvaluation",
    "AvailabilityBreakdown",
    "CATEGORIES",
    "CATEGORY_NO_SMTP",
    "CATEGORY_OTHERS",
    "CATEGORY_SELF",
    "CATEGORY_TOP100",
    "CCTLDS",
    "ChurnMatrix",
    "ConcentrationPoint",
    "CountryCell",
    "EventualProviderReport",
    "HostnameRankRow",
    "UnderestimationReport",
    "adjusted_mailbox_counts",
    "concentration_series",
    "eventual_provider_report",
    "market_concentration",
    "top_mx_hostnames",
    "underestimation_of",
    "CountryPreferences",
    "FOCAL_PROVIDERS",
    "LongitudinalResult",
    "MarketShare",
    "ShareRow",
    "TrendSeries",
    "availability_breakdown",
    "churn_matrix",
    "classify_domain",
    "compute_market_share",
    "country_preferences",
    "domain_category",
    "evaluate_approaches",
    "format_count_percent",
    "format_percent",
    "format_table",
    "inference_labels",
    "is_correct",
    "market_share_over_time",
    "sample_with_smtp",
    "self_hosted_count",
    "sparkline",
    "top_provider_labels",
    "top_rows_with_display",
    "truth_labels",
    "unique_mx_domains",
]
