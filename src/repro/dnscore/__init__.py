"""DNS substrate: names, the Public Suffix List, records, zones, resolution."""

from .names import (
    extract_fqdn,
    is_subdomain_of,
    is_valid_fqdn,
    is_valid_hostname,
    normalize,
)
from .psl import PublicSuffixList, default_psl, registered_domain
from .records import Record, RRset, RRType, a, cname, mx, ns, spf, txt
from .resolver import Answer, Rcode, Resolver
from .zone import Zone, ZoneConflictError, ZoneDB

__all__ = [
    "Answer",
    "PublicSuffixList",
    "Rcode",
    "Record",
    "Resolver",
    "RRType",
    "RRset",
    "Zone",
    "ZoneConflictError",
    "ZoneDB",
    "a",
    "cname",
    "default_psl",
    "extract_fqdn",
    "is_subdomain_of",
    "is_valid_fqdn",
    "is_valid_hostname",
    "mx",
    "normalize",
    "ns",
    "registered_domain",
    "spf",
    "txt",
]
