"""DNS zone storage.

A :class:`Zone` owns the records below one apex; a :class:`ZoneDB` is the
flat namespace the resolver queries.  The simulator does not model
delegation-chasing between authoritative servers — OpenINTEL-style platforms
see the DNS through a recursive resolver, so a single authoritative store
with CNAME indirection reproduces the observable behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .names import is_subdomain_of, normalize
from .records import Record, RRset, RRType


class ZoneConflictError(ValueError):
    """Raised when a record insertion violates DNS data rules."""


@dataclass
class Zone:
    """Records under a single apex name.

    Enforces the CNAME exclusivity rule (RFC 1034 section 3.6.2): a name
    owning a CNAME may own no other data.
    """

    apex: str
    _store: dict[tuple[str, RRType], list[Record]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.apex = normalize(self.apex)

    def add(self, record: Record) -> None:
        if not is_subdomain_of(record.name, self.apex):
            raise ZoneConflictError(
                f"record {record.name} does not belong to zone {self.apex}"
            )
        self._check_cname_exclusivity(record)
        self._store.setdefault((record.name, record.rtype), [])
        bucket = self._store[(record.name, record.rtype)]
        if record not in bucket:
            bucket.append(record)

    def _check_cname_exclusivity(self, record: Record) -> None:
        has_cname = (record.name, RRType.CNAME) in self._store
        if record.rtype is RRType.CNAME:
            other_types = [
                rtype
                for (name, rtype) in self._store
                if name == record.name and rtype is not RRType.CNAME
            ]
            if other_types:
                raise ZoneConflictError(
                    f"{record.name}: CNAME cannot coexist with {other_types}"
                )
            existing = self._store.get((record.name, RRType.CNAME), [])
            if existing and existing[0].rdata != record.rdata:
                raise ZoneConflictError(f"{record.name}: conflicting CNAME targets")
        elif has_cname:
            raise ZoneConflictError(
                f"{record.name}: name owns a CNAME, cannot add {record.rtype}"
            )

    def remove(self, name: str, rtype: RRType) -> None:
        """Drop the whole RRset for (name, type); silent if absent."""
        self._store.pop((normalize(name), rtype), None)

    def lookup(self, name: str, rtype: RRType) -> list[Record]:
        return list(self._store.get((normalize(name), rtype), []))

    def names(self) -> set[str]:
        return {name for (name, _rtype) in self._store}

    def all_records(self) -> list[Record]:
        return [record for bucket in self._store.values() for record in bucket]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._store.values())


@dataclass
class ZoneDB:
    """The authoritative view of the simulated DNS namespace.

    Zones are keyed by apex; lookups route to the most specific enclosing
    zone (longest-suffix match), mirroring how delegations partition the
    namespace.
    """

    _zones: dict[str, Zone] = field(default_factory=dict)
    _by_tld: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))

    def ensure_zone(self, apex: str) -> Zone:
        apex = normalize(apex)
        if apex not in self._zones:
            self._zones[apex] = Zone(apex=apex)
            self._by_tld[apex.rsplit(".", 1)[-1]].add(apex)
        return self._zones[apex]

    def zone_for(self, name: str) -> Zone | None:
        """Most specific zone whose apex encloses *name*."""
        name = normalize(name)
        candidate = name
        while candidate:
            if candidate in self._zones:
                return self._zones[candidate]
            if "." not in candidate:
                return None
            candidate = candidate.split(".", 1)[1]
        return None

    def add(self, record: Record) -> None:
        zone = self.zone_for(record.name)
        if zone is None:
            raise ZoneConflictError(f"no zone encloses {record.name}")
        zone.add(record)

    def lookup(self, name: str, rtype: RRType) -> RRset:
        """Authoritative lookup — no CNAME chasing (the resolver does that)."""
        zone = self.zone_for(name)
        records = zone.lookup(name, rtype) if zone else []
        return RRset(name=normalize(name), rtype=rtype, records=tuple(records))

    def zone_apexes(self) -> list[str]:
        return sorted(self._zones)

    def zones_under_tld(self, tld: str) -> list[str]:
        return sorted(self._by_tld.get(normalize(tld), set()))

    def __contains__(self, apex: str) -> bool:
        return normalize(apex) in self._zones

    def __len__(self) -> int:
        return len(self._zones)
