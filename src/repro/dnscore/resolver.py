"""Recursive-resolver behaviour over a :class:`~repro.dnscore.zone.ZoneDB`.

Implements the observable surface an active-measurement platform sees:
query a (name, type), follow CNAME chains with loop/length protection, and
report one of the standard outcomes (NOERROR with data, NODATA, NXDOMAIN,
SERVFAIL on broken chains).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .names import normalize
from .records import Record, RRType
from .zone import ZoneDB

MAX_CNAME_CHAIN = 8


class Rcode(enum.Enum):
    """Resolution outcome, collapsed to what measurement pipelines record."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    NODATA = "NODATA"
    SERVFAIL = "SERVFAIL"


@dataclass(frozen=True)
class Answer:
    """Result of a resolution.

    ``chain`` lists the CNAME hops traversed (query name first), and
    ``records`` holds the final RRset of the requested type (empty unless
    rcode is NOERROR).
    """

    qname: str
    qtype: RRType
    rcode: Rcode
    records: tuple[Record, ...] = ()
    chain: tuple[str, ...] = ()

    @property
    def rdatas(self) -> list[str]:
        return [record.rdata for record in self.records]

    def __bool__(self) -> bool:
        return self.rcode is Rcode.NOERROR and bool(self.records)


@dataclass
class Resolver:
    """A caching stub resolver over an authoritative :class:`ZoneDB`.

    ``faults`` (a :class:`~repro.faults.FaultInjector`, or None) perturbs
    answers on the way out — SERVFAIL, retried-then-exhausted timeouts,
    partial-zone record dropout — keyed by ``fault_scope`` (the snapshot
    date) so the same name can fail on one measurement day and resolve on
    the next.  Faulted answers are pure in (plan, scope, name, type) and
    cache exactly like real ones.
    """

    db: ZoneDB
    enable_cache: bool = True
    faults: object | None = None
    fault_scope: str = ""
    _cache: dict[tuple[str, RRType], Answer] = field(default_factory=dict)

    def resolve(self, name: str, rtype: RRType) -> Answer:
        """Resolve (name, type), chasing CNAMEs for non-CNAME queries."""
        name = normalize(name)
        key = (name, rtype)
        if self.enable_cache and key in self._cache:
            return self._cache[key]
        answer = self._resolve_uncached(name, rtype)
        if self.faults is not None:
            answer = self.faults.perturb_dns(self.fault_scope, answer)
        if self.enable_cache:
            self._cache[key] = answer
        return answer

    def _resolve_uncached(self, name: str, rtype: RRType) -> Answer:
        chain: list[str] = []
        current = name
        seen: set[str] = set()
        for _hop in range(MAX_CNAME_CHAIN + 1):
            if current in seen:
                return Answer(name, rtype, Rcode.SERVFAIL, chain=tuple(chain))
            seen.add(current)
            chain.append(current)

            rrset = self.db.lookup(current, rtype)
            if rrset.records:
                return Answer(
                    name, rtype, Rcode.NOERROR,
                    records=tuple(rrset.records), chain=tuple(chain),
                )
            if rtype is not RRType.CNAME:
                cname_set = self.db.lookup(current, RRType.CNAME)
                if cname_set.records:
                    current = cname_set.records[0].rdata
                    continue
            if self._name_exists(current):
                return Answer(name, rtype, Rcode.NODATA, chain=tuple(chain))
            return Answer(name, rtype, Rcode.NXDOMAIN, chain=tuple(chain))
        return Answer(name, rtype, Rcode.SERVFAIL, chain=tuple(chain))

    def _name_exists(self, name: str) -> bool:
        zone = self.db.zone_for(name)
        if zone is None:
            return False
        return any(owner == name for owner in zone.names())

    def resolve_a(self, name: str) -> list[str]:
        """Convenience: the IPv4 addresses of *name* ([] on any failure)."""
        answer = self.resolve(name, RRType.A)
        return answer.rdatas if answer else []

    def resolve_aaaa(self, name: str) -> list[str]:
        """Convenience: the IPv6 addresses of *name* ([] on any failure)."""
        answer = self.resolve(name, RRType.AAAA)
        return answer.rdatas if answer else []

    def resolve_mx(self, name: str) -> list[Record]:
        """Convenience: MX records of *name*, best preference first."""
        answer = self.resolve(name, RRType.MX)
        if not answer:
            return []
        return sorted(answer.records, key=lambda r: (r.preference, r.rdata))

    def clear_cache(self) -> None:
        self._cache.clear()
