"""Domain-name model: parsing, validation, and normalization.

DNS names in this library are represented as plain lowercase strings without
a trailing dot (``"mx1.example.com"``).  This module centralizes the syntax
rules (RFC 1035 preferred name syntax, relaxed per RFC 2181 where the
measurement reality demands it) so every other layer can rely on a single
notion of "valid hostname".

The paper's methodology repeatedly asks one question of free-form text found
in SMTP banners and EHLO messages: *does this look like a valid fully
qualified domain name?* (Section 3.1.3).  :func:`is_valid_fqdn` implements
that check, and :func:`extract_fqdn` pulls candidate names out of arbitrary
banner text.
"""

from __future__ import annotations

import re
from typing import Iterator

MAX_NAME_LENGTH = 253
MAX_LABEL_LENGTH = 63

# An LDH (letters-digits-hyphen) label: starts and ends alphanumeric.
_LABEL_RE = re.compile(r"^(?!-)[a-z0-9-]{1,63}(?<!-)$")

# Candidate FQDN tokens inside free text (used for banner parsing).
_FQDN_TOKEN_RE = re.compile(
    r"\b([a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?"
    r"(?:\.[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?)+)\b",
    re.IGNORECASE,
)

# Labels that frequently appear in misconfigured banners but never denote a
# usable public name.  ``localhost`` and friends are the poster children the
# paper calls out ("poorly configured servers with Banner/EHLO messages
# containing strings like localhost").
_BOGUS_NAMES = frozenset(
    {
        "localhost",
        "localhost.localdomain",
        "localdomain",
        "example.com",
        "example.net",
        "example.org",
        "mail.local",
        "local",
    }
)


class NameError_(ValueError):
    """Raised when a string cannot be interpreted as a DNS name."""


def normalize(name: str) -> str:
    """Normalize a DNS name: lowercase, strip one trailing dot and whitespace.

    Raises :class:`NameError_` if the result is empty.
    """
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    if not name:
        raise NameError_("empty DNS name")
    return name


def labels(name: str) -> list[str]:
    """Split a normalized name into its labels, left to right."""
    return normalize(name).split(".")


def is_valid_hostname(name: str) -> bool:
    """Return True if *name* is syntactically a valid DNS hostname.

    Accepts single-label names (``localhost``); use :func:`is_valid_fqdn`
    when at least two labels are required.
    """
    try:
        name = normalize(name)
    except NameError_:
        return False
    if len(name) > MAX_NAME_LENGTH:
        return False
    parts = name.split(".")
    return all(_LABEL_RE.match(part) for part in parts)


def is_valid_fqdn(name: str) -> bool:
    """Return True if *name* is a plausible fully qualified domain name.

    A plausible FQDN, for the purposes of provider inference, must:

    * be syntactically valid,
    * contain at least two labels (a bare host like ``mailserver`` carries
      no provider information),
    * have an alphabetic top-level label (rules out embedded IPv4 addresses
      such as ``1.2.3.4`` and decorated reverse names like ``IP-1-2-3-4``
      whose final token is numeric),
    * not be a well-known bogus name (``localhost`` et al.).
    """
    if not is_valid_hostname(name):
        return False
    name = normalize(name)
    if name in _BOGUS_NAMES:
        return False
    parts = name.split(".")
    if len(parts) < 2:
        return False
    tld = parts[-1]
    if not tld.isalpha():
        return False
    return True


def iter_fqdn_candidates(text: str) -> Iterator[str]:
    """Yield candidate FQDNs embedded in arbitrary text, in order.

    Candidates are syntactic matches only; callers should filter with
    :func:`is_valid_fqdn`.
    """
    for match in _FQDN_TOKEN_RE.finditer(text):
        yield match.group(1).lower()


def extract_fqdn(text: str) -> str | None:
    """Extract the first valid FQDN from free-form text, or None.

    This is the primitive used to interpret SMTP banner and EHLO messages:
    ``"220 mx.google.com ESMTP ready"`` yields ``"mx.google.com"``, while
    ``"220 IP-1-2-3-4"`` and ``"220 localhost ESMTP"`` yield ``None``.
    """
    for candidate in iter_fqdn_candidates(text):
        if is_valid_fqdn(candidate):
            return candidate
    return None


def is_subdomain_of(name: str, ancestor: str) -> bool:
    """Return True if *name* equals or is a subdomain of *ancestor*."""
    name = normalize(name)
    ancestor = normalize(ancestor)
    return name == ancestor or name.endswith("." + ancestor)


def parent(name: str) -> str | None:
    """Return the immediate parent of *name*, or None for a TLD."""
    parts = labels(name)
    if len(parts) <= 1:
        return None
    return ".".join(parts[1:])
