"""Public Suffix List: registered-domain extraction.

The methodology extracts "the registered domain part" of FQDNs at several
points (certificate grouping, banner interpretation, MX fallback).  The paper
uses the Mozilla Public Suffix List [21]; we implement the full PSL
algorithm — normal rules, wildcard rules (``*.ck``) and exception rules
(``!www.ck``) — over an embedded snapshot of the suffixes relevant to our
synthetic world plus the common real-world entries that appear in the paper
(gTLDs, the fifteen ccTLDs of Section 5.4, and layered suffixes like
``co.uk`` and ``com.cn``).

The algorithm follows https://publicsuffix.org/list/:

1. Match domain labels against all rules; among matching rules, exception
   rules beat all others, otherwise the longest (most labels) rule wins.
2. If no rule matches, the prevailing rule is ``*`` (TLD is public).
3. The public suffix is the matched rule's span; the registered domain is
   the public suffix plus one more label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .names import NameError_, normalize

# Embedded PSL snapshot.  Multi-label entries reproduce the structures that
# matter for mail-provider inference: second-level ccTLD registrations and a
# few provider-owned private suffixes.
DEFAULT_SUFFIXES: tuple[str, ...] = (
    # Generic TLDs.
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "io",
    "co", "me", "tv", "cc", "app", "dev", "cloud", "online", "site", "email",
    "goog", "xyz", "us",
    # ccTLDs from Section 5.4 and their common second-level registries.
    "br", "com.br", "net.br", "org.br", "gov.br",
    "ar", "com.ar", "org.ar",
    "uk", "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk",
    "fr", "de", "it", "es", "ro",
    "ca", "au", "com.au", "net.au", "org.au", "gov.au",
    "ru", "com.ru", "org.ru",
    "cn", "com.cn", "net.cn", "org.cn", "gov.cn",
    "jp", "co.jp", "ne.jp", "or.jp", "ac.jp",
    "in", "co.in", "net.in", "org.in", "gov.in",
    "sg", "com.sg", "net.sg", "org.sg", "gov.sg",
    "ua", "com.ua", "net.ua",
    "nl", "se", "ch", "at", "be", "pl", "cz", "tw", "com.tw", "kr", "co.kr",
    "mx", "com.mx", "nz", "co.nz", "za", "co.za",
    # Wildcard + exception structure (exercise rules 2 and 3).
    "*.ck", "!www.ck",
    "*.bd", "*.kawasaki.jp", "!city.kawasaki.jp",
)


@dataclass(frozen=True)
class _Rule:
    labels: tuple[str, ...]
    is_exception: bool

    @property
    def depth(self) -> int:
        return len(self.labels)


_MISS = object()  # cache sentinel: None is a legitimate cached value


@dataclass
class PublicSuffixList:
    """PSL matcher over a rule set.

    Extraction results are memoized per instance (the same MX names,
    banner FQDNs, and certificate names recur across an entire corpus);
    ``set_cache(False)`` restores uncached rule scans.

    >>> psl = PublicSuffixList.default()
    >>> psl.registered_domain("mx1.provider.com")
    'provider.com'
    >>> psl.registered_domain("foo.bar.co.uk")
    'bar.co.uk'
    """

    rules: dict[tuple[str, ...], _Rule] = field(default_factory=dict)
    _suffix_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _registered_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _cache_enabled: bool = field(default=True, repr=False, compare=False)

    def set_cache(self, enabled: bool) -> None:
        """Enable/disable extraction memoization (flushes on any change)."""
        self._cache_enabled = enabled
        self.cache_clear()

    def cache_clear(self) -> None:
        self._suffix_cache.clear()
        self._registered_cache.clear()

    @classmethod
    def from_suffixes(cls, suffixes: tuple[str, ...] | list[str]) -> "PublicSuffixList":
        psl = cls()
        for entry in suffixes:
            psl.add_rule(entry)
        return psl

    @classmethod
    def default(cls) -> "PublicSuffixList":
        return cls.from_suffixes(DEFAULT_SUFFIXES)

    def add_rule(self, entry: str) -> None:
        """Add one PSL entry (possibly ``*.``-wildcard or ``!``-exception)."""
        entry = entry.strip().lower()
        if not entry:
            raise ValueError("empty PSL entry")
        is_exception = entry.startswith("!")
        if is_exception:
            entry = entry[1:]
        key = tuple(entry.split("."))
        self.rules[key] = _Rule(labels=key, is_exception=is_exception)
        self.cache_clear()

    def _matching_rule(self, parts: list[str]) -> _Rule | None:
        """Find the prevailing rule for a label sequence (leftmost first)."""
        best: _Rule | None = None
        for rule in self.rules.values():
            if self._rule_matches(rule, parts):
                if rule.is_exception:
                    return rule
                if best is None or rule.depth > best.depth:
                    best = rule
        return best

    @staticmethod
    def _rule_matches(rule: _Rule, parts: list[str]) -> bool:
        if len(rule.labels) > len(parts):
            return False
        # Rules match right-aligned; '*' matches any single label.
        for rule_label, part in zip(reversed(rule.labels), reversed(parts)):
            if rule_label != "*" and rule_label != part:
                return False
        return True

    def public_suffix(self, name: str) -> str:
        """Return the public suffix of *name* (always non-empty)."""
        if self._cache_enabled:
            cached = self._suffix_cache.get(name, _MISS)
            if cached is not _MISS:
                return cached
            suffix = self._public_suffix_uncached(name)
            self._suffix_cache[name] = suffix
            return suffix
        return self._public_suffix_uncached(name)

    def _public_suffix_uncached(self, name: str) -> str:
        parts = normalize(name).split(".")
        rule = self._matching_rule(parts)
        if rule is None:
            # Prevailing rule is '*': the TLD alone is public.
            return parts[-1]
        if rule.is_exception:
            # Exception rules: the public suffix is the rule minus its
            # leftmost label.
            depth = rule.depth - 1
        else:
            depth = rule.depth
        depth = min(depth, len(parts))
        return ".".join(parts[-depth:]) if depth else parts[-1]

    def registered_domain(self, name: str) -> str | None:
        """Return the registered (registrable) domain of *name*.

        None when *name* is itself a public suffix (e.g. ``"com"``) —
        such names cannot identify a provider.
        """
        if self._cache_enabled:
            cached = self._registered_cache.get(name, _MISS)
            if cached is not _MISS:
                return cached
            registered = self._registered_domain_uncached(name)
            self._registered_cache[name] = registered
            return registered
        return self._registered_domain_uncached(name)

    def _registered_domain_uncached(self, name: str) -> str | None:
        try:
            name = normalize(name)
        except NameError_:
            return None
        suffix = self.public_suffix(name)
        if name == suffix:
            return None
        parts = name.split(".")
        suffix_depth = len(suffix.split("."))
        return ".".join(parts[-(suffix_depth + 1):])

    def is_public_suffix(self, name: str) -> bool:
        return self.public_suffix(name) == normalize(name)


_DEFAULT: PublicSuffixList | None = None


def default_psl() -> PublicSuffixList:
    """Process-wide shared default PSL instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList.default()
    return _DEFAULT


def registered_domain(name: str) -> str | None:
    """Shorthand for ``default_psl().registered_domain(name)``."""
    return default_psl().registered_domain(name)
