"""DNS resource-record model.

A deliberately small but faithful subset of the DNS data model: the record
types the measurement pipeline consumes (A, AAAA, CNAME, MX, NS, TXT) with
typed rdata, TTLs, and RRset semantics.  Records are immutable value objects
so they can live in sets and serve as dictionary keys throughout the
snapshotting machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .names import is_valid_hostname, normalize


class RRType(enum.Enum):
    """Resource-record types understood by the simulator."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    MX = "MX"
    NS = "NS"
    TXT = "TXT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Record:
    """One DNS resource record.

    ``rdata`` is the type-specific payload rendered in zone-file style:
    an IPv4 dotted quad for A, a target name for CNAME/NS, the exchange
    name for MX (preference lives in ``preference``), free text for TXT.
    """

    name: str
    rtype: RRType = field(compare=False)
    rdata: str
    ttl: int = field(default=3600, compare=False)
    preference: int = 0  # MX only; 0 otherwise.

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize(self.name))
        if self.rtype in (RRType.CNAME, RRType.NS, RRType.MX):
            object.__setattr__(self, "rdata", normalize(self.rdata))
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")
        if self.preference < 0 or self.preference > 65535:
            raise ValueError("MX preference must fit in 16 bits")
        if self.preference and self.rtype is not RRType.MX:
            raise ValueError("preference is only meaningful for MX records")

    def to_zone_line(self) -> str:
        """Render in conventional zone-file presentation order."""
        if self.rtype is RRType.MX:
            return f"{self.name}. {self.ttl} IN MX {self.preference} {self.rdata}."
        if self.rtype in (RRType.CNAME, RRType.NS):
            return f"{self.name}. {self.ttl} IN {self.rtype} {self.rdata}."
        if self.rtype is RRType.TXT:
            return f'{self.name}. {self.ttl} IN TXT "{self.rdata}"'
        return f"{self.name}. {self.ttl} IN {self.rtype} {self.rdata}"


def a(name: str, address: str, ttl: int = 3600) -> Record:
    """Construct an A record."""
    return Record(name=name, rtype=RRType.A, rdata=address, ttl=ttl)


def cname(name: str, target: str, ttl: int = 3600) -> Record:
    """Construct a CNAME record."""
    return Record(name=name, rtype=RRType.CNAME, rdata=target, ttl=ttl)


def mx(name: str, exchange: str, preference: int = 10, ttl: int = 3600) -> Record:
    """Construct an MX record.

    The exchange must be a hostname (RFC 7505 "null MX" uses the root name,
    which we model as the literal ``"."``-less empty exchange via
    :func:`null_mx`).
    """
    if not is_valid_hostname(exchange):
        raise ValueError(f"MX exchange is not a valid hostname: {exchange!r}")
    return Record(name=name, rtype=RRType.MX, rdata=exchange, ttl=ttl, preference=preference)


def ns(name: str, target: str, ttl: int = 86400) -> Record:
    """Construct an NS record."""
    return Record(name=name, rtype=RRType.NS, rdata=target, ttl=ttl)


def txt(name: str, text: str, ttl: int = 3600) -> Record:
    """Construct a TXT record."""
    return Record(name=name, rtype=RRType.TXT, rdata=text, ttl=ttl)


def spf(name: str, directives: str, ttl: int = 3600) -> Record:
    """Construct an SPF policy published as TXT (RFC 7208)."""
    return txt(name, f"v=spf1 {directives}", ttl=ttl)


@dataclass(frozen=True)
class RRset:
    """All records of one (name, type) pair, as returned by a query."""

    name: str
    rtype: RRType
    records: tuple[Record, ...]

    def __post_init__(self) -> None:
        for record in self.records:
            if record.name != normalize(self.name) or record.rtype is not self.rtype:
                raise ValueError("RRset members must share name and type")

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def rdatas(self) -> list[str]:
        return [record.rdata for record in self.records]

    def sorted_by_preference(self) -> list[Record]:
        """MX helper: records ordered best-preference (lowest) first."""
        return sorted(self.records, key=lambda record: (record.preference, record.rdata))

    def best_preference(self) -> int | None:
        """The smallest (most preferred) MX preference, or None if empty."""
        if not self.records:
            return None
        return min(record.preference for record in self.records)

    def most_preferred(self) -> list[Record]:
        """All records tied at the best preference (the "primary" MX set)."""
        best = self.best_preference()
        if best is None:
            return []
        return [record for record in self.records if record.preference == best]
