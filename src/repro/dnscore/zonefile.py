"""Zone-file serialization: dump and parse RFC 1035 presentation format.

The measurement platforms in this package work on live :class:`ZoneDB`
objects; real pipelines exchange zone data as text.  This module renders
zones in conventional master-file syntax and parses it back, covering the
record types the simulator uses (A, AAAA, CNAME, MX, NS, TXT), ``$ORIGIN``
handling, relative names, comments, and quoted TXT data.
"""

from __future__ import annotations

import re
from typing import Iterable

from .names import normalize
from .records import Record, RRType
from .zone import Zone, ZoneDB


class ZoneFileError(ValueError):
    """Raised on unparseable zone-file content."""


def dump_zone(zone: Zone) -> str:
    """Render one zone in master-file format (sorted, $ORIGIN header)."""
    lines = [f"$ORIGIN {zone.apex}."]
    for record in sorted(
        zone.all_records(), key=lambda r: (r.name, r.rtype.value, r.preference, r.rdata)
    ):
        lines.append(record.to_zone_line())
    return "\n".join(lines) + "\n"


def dump_zonedb(db: ZoneDB) -> str:
    """Render every zone of a :class:`ZoneDB`, apex order."""
    return "\n".join(dump_zone(db.zone_for(apex)) for apex in db.zone_apexes())


_TXT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment (quote-aware for TXT data)."""
    in_quotes = False
    for index, char in enumerate(line):
        if char == '"':
            in_quotes = not in_quotes
        elif char == ";" and not in_quotes:
            return line[:index]
    return line


def _absolute(name: str, origin: str | None) -> str:
    """Resolve a possibly relative name against ``$ORIGIN``."""
    if name == "@":
        if origin is None:
            raise ZoneFileError("'@' used without $ORIGIN")
        return origin
    if name.endswith("."):
        return normalize(name)
    if origin is None:
        raise ZoneFileError(f"relative name {name!r} without $ORIGIN")
    return normalize(f"{name}.{origin}")


def parse_zone_file(text: str) -> list[Record]:
    """Parse master-file text into records.

    Supports ``$ORIGIN`` and ``$TTL`` directives, optional TTL and class
    fields per record, relative owner names, and ``;`` comments.
    """
    records: list[Record] = []
    origin: str | None = None
    default_ttl = 3600

    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.upper().startswith("$ORIGIN"):
            origin = normalize(line.split()[1])
            continue
        if line.upper().startswith("$TTL"):
            try:
                default_ttl = int(line.split()[1])
            except (IndexError, ValueError) as error:
                raise ZoneFileError(f"bad $TTL line: {raw_line!r}") from error
            continue
        records.append(_parse_record_line(line, origin, default_ttl))
    return records


def _parse_record_line(line: str, origin: str | None, default_ttl: int) -> Record:
    tokens = line.split()
    if len(tokens) < 3:
        raise ZoneFileError(f"short record line: {line!r}")
    owner = _absolute(tokens[0], origin)
    index = 1

    ttl = default_ttl
    if tokens[index].isdigit():
        ttl = int(tokens[index])
        index += 1
    if index < len(tokens) and tokens[index].upper() == "IN":
        index += 1
    if index >= len(tokens):
        raise ZoneFileError(f"missing record type: {line!r}")

    type_token = tokens[index].upper()
    index += 1
    try:
        rtype = RRType(type_token)
    except ValueError as error:
        raise ZoneFileError(f"unsupported record type {type_token!r}") from error

    rest = tokens[index:]
    if rtype is RRType.MX:
        if len(rest) != 2 or not rest[0].isdigit():
            raise ZoneFileError(f"bad MX rdata: {line!r}")
        return Record(
            name=owner, rtype=rtype, ttl=ttl,
            preference=int(rest[0]), rdata=_absolute(rest[1], origin),
        )
    if rtype in (RRType.CNAME, RRType.NS):
        if len(rest) != 1:
            raise ZoneFileError(f"bad {rtype} rdata: {line!r}")
        return Record(name=owner, rtype=rtype, ttl=ttl, rdata=_absolute(rest[0], origin))
    if rtype is RRType.TXT:
        remainder = line.split(None, index)[-1]
        match = _TXT_RE.search(remainder)
        if not match:
            raise ZoneFileError(f"TXT rdata must be quoted: {line!r}")
        return Record(
            name=owner, rtype=rtype, ttl=ttl,
            rdata=match.group(1).replace('\\"', '"'),
        )
    # A / AAAA: the address literal verbatim.
    if len(rest) != 1:
        raise ZoneFileError(f"bad {rtype} rdata: {line!r}")
    return Record(name=owner, rtype=rtype, ttl=ttl, rdata=rest[0])


def load_zonedb(text: str, apexes: Iterable[str] = ()) -> ZoneDB:
    """Build a :class:`ZoneDB` from master-file text.

    Zones are created for every ``$ORIGIN`` encountered plus any extra
    *apexes*; records route to the most specific enclosing zone.
    """
    db = ZoneDB()
    for apex in apexes:
        db.ensure_zone(apex)
    for line in text.splitlines():
        stripped = _strip_comment(line).strip()
        if stripped.upper().startswith("$ORIGIN"):
            db.ensure_zone(stripped.split()[1])
    for record in parse_zone_file(text):
        if db.zone_for(record.name) is None:
            db.ensure_zone(record.name)
        db.add(record)
    return db
