"""Out-of-core measure path: batched gathers, shared tables, spill/merge.

``repro.stream`` keeps the measure path's peak RSS near-flat as
``REPRO_SCALE`` grows: domains are gathered in bounded contiguous
batches whose results live on the heap as *encoded* codec payloads
(the PR 2 wire format doubles as the in-flight representation), with
overflow spilled through :mod:`repro.store` and merged back in
deterministic batch order.  Read-only snapshot tables are published
once through ``multiprocessing.shared_memory`` and mapped zero-copy
by forked workers instead of being rebuilt per shard.

Batching is an engine *optimization*, never a semantic switch: every
output — stdout, artifacts, store digests — is byte-identical across
``--batch-domains``, ``--jobs``, and executors (see
``tests/stream/test_stream_equivalence.py``).
"""

from .batching import (
    BATCH_ENV,
    STREAM_KEEP_ENV,
    BatchPlan,
    env_batch,
    env_stream_keep,
    resolve_batch,
)
from .canon import canonicalize_measurements, merge_payloads
from .gather import stream_gather
from .shm import SharedBlob, SharedPrefix2AS, SharedWorldTables
from .spill import MEM_BUDGET_ENV, BatchSpiller, env_budget_bytes

__all__ = [
    "BATCH_ENV",
    "MEM_BUDGET_ENV",
    "BatchPlan",
    "BatchSpiller",
    "SharedBlob",
    "SharedPrefix2AS",
    "SharedWorldTables",
    "STREAM_KEEP_ENV",
    "canonicalize_measurements",
    "env_batch",
    "env_budget_bytes",
    "env_stream_keep",
    "merge_payloads",
    "resolve_batch",
    "stream_gather",
]
