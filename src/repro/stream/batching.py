"""Batch plans: how a snapshot's domain list splits into bounded gathers.

A :class:`BatchPlan` slices the (sorted) target list into contiguous
fixed-size batches.  Batches are purely an engine knob: they bound how
many decoded measurements are alive at once, and they must never change
what a run produces.  Contiguity in sorted-domain order is what makes
the later in-order merge reproduce the serial iteration order exactly.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

BATCH_ENV = "REPRO_BATCH"
STREAM_KEEP_ENV = "REPRO_STREAM_KEEP"
DEFAULT_STREAM_KEEP = 3

_OFF_VALUES = {"", "0", "off", "none", "unbatched"}


def env_stream_keep(default: int = DEFAULT_STREAM_KEEP) -> int:
    """Decoded-snapshot LRU capacity from ``REPRO_STREAM_KEEP`` (min 1)."""
    raw = os.environ.get(STREAM_KEEP_ENV)
    if raw is None:
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {STREAM_KEEP_ENV}={raw!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, value)


def env_batch(default: int | None = None) -> int | None:
    """Default batch size from ``REPRO_BATCH`` (warn-and-fall-back on garbage)."""
    raw = os.environ.get(BATCH_ENV)
    if raw is None:
        return default
    text = raw.strip().lower()
    if text in _OFF_VALUES:
        return None
    try:
        value = int(text)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {BATCH_ENV}={raw!r}", RuntimeWarning, stacklevel=2
        )
        return default
    if value <= 0:
        return None
    return value


def resolve_batch(batch_domains: int | None) -> int | None:
    """Resolve an explicit ``--batch-domains`` against the environment.

    ``None`` defers to ``REPRO_BATCH``; zero or negative means unbatched.
    """
    if batch_domains is None:
        return env_batch()
    if batch_domains <= 0:
        return None
    return batch_domains


@dataclass(frozen=True)
class BatchPlan:
    """A resolved batching decision for one snapshot gather."""

    batch_domains: int | None = None

    @property
    def active(self) -> bool:
        return self.batch_domains is not None

    def batch_count(self, total: int) -> int:
        if not self.active or total == 0:
            return 1 if total else 0
        size = self.batch_domains
        return (total + size - 1) // size

    def batch_sizes(self, total: int) -> list[int]:
        """Length of each batch for ``total`` targets, in batch order."""
        if not self.active:
            return [total] if total else []
        size = self.batch_domains
        return [
            min(size, total - start) for start in range(0, total, size)
        ]

    def split(self, targets: Sequence[T]) -> Iterator[tuple[int, Sequence[T]]]:
        """Yield ``(batch_index, batch)`` contiguous slices in order."""
        total = len(targets)
        if total == 0:
            return
        if not self.active:
            yield 0, targets
            return
        size = self.batch_domains
        for index, start in enumerate(range(0, total, size)):
            yield index, targets[start : start + size]

    def key(self, batch_index: int, total: int) -> tuple[int, int, int]:
        """Checkpoint-key component: ``(index, count, size)``.

        Per-shard checkpoints and spill entries embed this so a resumed
        run only reuses state produced under the *same* batch plan.
        """
        size = self.batch_domains if self.active else total
        return (batch_index, self.batch_count(total), size)
