"""The streamed gather loop: batch → parallel gather → encode → spill.

``stream_gather`` is the out-of-core twin of
:func:`repro.engine.parallel.parallel_gather`: it walks the batch plan's
contiguous slices, gathers each one through the ordinary parallel
engine (so per-shard supervision, fault rolls, and executor fallback
behave exactly as unbatched runs), hands the result straight to the
spiller as an encoded payload, and trims the gatherer's memo caches
between batches.  The final merge restores the canonical identity
topology, so the return value is byte-for-byte what an unbatched gather
would have produced — batching is invisible to every consumer.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Sequence

from ..engine.parallel import parallel_gather
from ..engine.stats import STATS, sample_peak_rss
from .batching import BatchPlan
from .spill import BatchSpiller

CACHE_TRIM_ENV = "REPRO_STREAM_CACHE"
DEFAULT_CACHE_ENTRIES = 250_000


def env_cache_entries(default: int = DEFAULT_CACHE_ENTRIES) -> int:
    """Inter-batch memo-cache cap from ``REPRO_STREAM_CACHE``."""
    raw = os.environ.get(CACHE_TRIM_ENV)
    if raw is None:
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {CACHE_TRIM_ENV}={raw!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return value if value > 0 else default


def stream_gather(
    gatherer,
    targets: Sequence[str],
    snapshot_index: int,
    *,
    plan: BatchPlan,
    spiller: BatchSpiller,
    jobs: int | None = None,
    executor: str | None = None,
    supervision_factory: Callable[[int, int], object] | None = None,
    cache_entries: int | None = None,
):
    """Gather *targets* batch by batch; returns the canonical merged dict."""
    cache_cap = env_cache_entries() if cache_entries is None else cache_entries
    batch_count = plan.batch_count(len(targets))
    with STATS.timer("gather.stream"):
        for batch_index, batch in plan.split(targets):
            if spiller.restore(batch_index):
                continue
            supervision = (
                supervision_factory(batch_index, batch_count)
                if supervision_factory is not None
                else None
            )
            gathered = parallel_gather(
                gatherer,
                batch,
                snapshot_index,
                jobs=jobs,
                executor=executor,
                supervision=supervision,
            )
            spiller.add(batch_index, gathered)
            del gathered
            trimmed = gatherer.trim_caches(cache_cap)
            if trimmed:
                STATS.inc("stream.cache.trimmed", trimmed)
            sample_peak_rss()
        merged = spiller.merge()
    # The merged graph replaces whatever per-batch instances the memo
    # caches hold; adopting it keeps later gathers (showcase domains,
    # churn studies) interning against the canonical objects.
    gatherer.adopt(merged)
    sample_peak_rss()
    return merged
