"""Read-only snapshot tables published once via shared memory.

When the streamed measure path is active, :class:`SharedWorldTables`
packs the prefix→AS routing table into one flat columnar blob inside a
``multiprocessing.shared_memory`` segment.  Forked gather workers map
the segment zero-copy — lookups run over ``memoryview`` casts of the
page, so no per-shard Python object graph is rebuilt (and, unlike a
fork-inherited trie, refcount traffic never dirties the pages).

Lifecycle: the publishing process owns the segment and unlinks it via
``weakref.finalize`` (or an explicit ``close()``); children only map.
Platforms without working POSIX shared memory fall back to an inline
``bytes`` payload — same layout, same lookups, counted under
``stream.shm.fallback`` — so batching never becomes load-bearing on
``/dev/shm``.

Layout of the prefix2as blob (all little-endian u32 unless noted):

    magic ``RSP2`` | n_prefixes | n_as | min_length | blob_len
    networks[n]  sorted ascending (ties broken by length)
    lengths[n]
    asns[n]
    as_numbers[m]  sorted ascending
    name_off[m+1]  offsets into the string blob
    country_off[m+1]
    string blob (UTF-8: all names, then all countries)

Duplicate ``(network, length)`` announcements keep the *last* origin,
matching the live trie's overwrite semantics.
"""

from __future__ import annotations

import os
import struct
import weakref
from bisect import bisect_right

from ..engine.stats import STATS
from ..measure.caida import ASInfo, Prefix2ASDataset
from ..netsim.ip import parse_ipv4

_MAGIC = b"RSP2"
_HEADER = struct.Struct("<4sIIII")


class SharedBlob:
    """One published read-only byte payload, shared-memory backed if possible.

    Views handed out by :meth:`view` are tracked and released before the
    segment is closed — closing an mmap with exported buffer pointers is
    an error.  Cleanup runs on :meth:`close` or garbage collection; only
    the publishing process unlinks the segment, so forked workers that
    exit (running the same finalizers) merely unmap their copy.
    """

    def __init__(
        self, payload_length: int, shm=None, inline: bytes | None = None,
        owner: bool = False,
    ):
        self._length = payload_length
        self._shm = shm
        self._inline = inline
        self._views: list[memoryview] = []
        if shm is not None:
            self._finalizer = weakref.finalize(
                self, _release_segment, shm, self._views,
                os.getpid() if owner else None,
            )
        else:
            self._finalizer = None

    @classmethod
    def publish(cls, payload: bytes) -> "SharedBlob":
        """Copy *payload* into a fresh shared-memory segment (or inline)."""
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        except Exception:
            STATS.inc("stream.shm.fallback")
            return cls(len(payload), inline=bytes(payload))
        shm.buf[: len(payload)] = payload
        STATS.inc("stream.shm.published")
        STATS.inc("stream.shm.published_bytes", len(payload))
        return cls(len(payload), shm=shm, owner=True)

    @classmethod
    def attach(cls, name: str, payload_length: int) -> "SharedBlob":
        """Map an existing segment by name (spawn-style workers)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        return cls(payload_length, shm=shm, owner=False)

    @property
    def name(self) -> str | None:
        """Segment name for by-name attach, or None for the inline fallback."""
        return self._shm.name if self._shm is not None else None

    def __len__(self) -> int:
        return self._length

    def view(self) -> memoryview:
        if self._inline is not None:
            return memoryview(self._inline)
        view = memoryview(self._shm.buf)[: self._length]
        self._views.append(view)
        return view

    def track(self, view: memoryview) -> memoryview:
        """Register a derived view (slice/cast) for release before close."""
        if self._shm is not None:
            self._views.append(view)
        return view

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()


def _release_segment(shm, views: list[memoryview], owner_pid: int | None) -> None:
    # Derived views were appended after their parents; release in reverse.
    for view in reversed(views):
        try:
            view.release()
        except Exception:
            pass
    views.clear()
    try:
        shm.close()
    except (BufferError, OSError):
        pass
    if owner_pid is not None and owner_pid == os.getpid():
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def pack_prefix2as(dataset: Prefix2ASDataset, as_index) -> bytes:
    """Flatten a prefix2as snapshot into the columnar blob format."""
    deduped: dict[tuple[int, int], int] = {}
    for prefix, asn in dataset.rows():
        deduped[(prefix.network, prefix.length)] = asn
    entries = sorted(deduped.items())
    min_length = min((length for (_, length), _ in entries), default=32)

    numbers = sorted(as_index)
    names = [as_index[number].name for number in numbers]
    countries = [as_index[number].country for number in numbers]
    blob_parts: list[bytes] = []
    name_off = [0]
    for name in names:
        blob_parts.append(name.encode("utf-8"))
        name_off.append(name_off[-1] + len(blob_parts[-1]))
    country_off = [name_off[-1]]
    for country in countries:
        blob_parts.append(country.encode("utf-8"))
        country_off.append(country_off[-1] + len(blob_parts[-1]))
    blob = b"".join(blob_parts)

    def u32s(values) -> bytes:
        return struct.pack(f"<{len(values)}I", *values)

    return b"".join(
        [
            _HEADER.pack(_MAGIC, len(entries), len(numbers), min_length, len(blob)),
            u32s([network for (network, _), _ in entries]),
            u32s([length for (_, length), _ in entries]),
            u32s([asn for _, asn in entries]),
            u32s(numbers),
            u32s(name_off),
            u32s(country_off),
            blob,
        ]
    )


class SharedPrefix2AS:
    """Zero-copy LPM lookups over a packed prefix2as blob.

    Drop-in for :class:`~repro.measure.caida.Prefix2ASDataset` on the
    gather path: ``lookup``/``lookup_asn`` return value-equal results
    for every address (``tests/stream/test_shm.py`` sweeps the space).
    """

    def __init__(self, blob: SharedBlob):
        self._blob = blob
        view = blob.view()
        magic, n, m, min_length, blob_len = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError("not a packed prefix2as blob")
        offset = _HEADER.size
        words = blob.track(
            view[offset : offset + 4 * (3 * n + m + 2 * (m + 1))].cast("I")
        )
        self._networks = blob.track(words[:n])
        self._lengths = blob.track(words[n : 2 * n])
        self._asns = blob.track(words[2 * n : 3 * n])
        self._as_numbers = blob.track(words[3 * n : 3 * n + m])
        self._name_off = blob.track(words[3 * n + m : 3 * n + 2 * m + 1])
        self._country_off = blob.track(words[3 * n + 2 * m + 1 : 3 * n + 3 * m + 2])
        strings_at = offset + 4 * (3 * n + m + 2 * (m + 1))
        self._strings = blob.track(view[strings_at : strings_at + blob_len])
        self._count = n
        # All containing prefixes of an address lie within its /min_length
        # block, which bounds the leftward scan from the bisect point.
        self._min_mask = (
            (0xFFFFFFFF << (32 - min_length)) & 0xFFFFFFFF if min_length else 0
        )
        self._info_memo: dict[int, ASInfo | None] = {}

    @property
    def blob(self) -> SharedBlob:
        return self._blob

    def lookup_asn(self, address: str) -> int | None:
        """Origin ASN of the most specific covering prefix, or None."""
        value = parse_ipv4(address)
        networks = self._networks
        index = bisect_right(networks, value) - 1
        floor = value & self._min_mask
        best_length = -1
        best_asn: int | None = None
        while index >= 0:
            network = networks[index]
            if network < floor:
                break
            length = self._lengths[index]
            if length > best_length and (value >> (32 - length) if length else 0) == (
                network >> (32 - length) if length else 0
            ):
                best_length = length
                best_asn = self._asns[index]
            index -= 1
        return best_asn

    def lookup(self, address: str) -> ASInfo | None:
        asn = self.lookup_asn(address)
        if asn is None:
            return None
        memo = self._info_memo
        if asn not in memo:
            memo[asn] = self._as_info(asn)
        return memo[asn]

    def _as_info(self, asn: int) -> ASInfo | None:
        numbers = self._as_numbers
        index = bisect_right(numbers, asn) - 1
        if index < 0 or numbers[index] != asn:
            return None
        strings = self._strings
        name = bytes(strings[self._name_off[index] : self._name_off[index + 1]])
        country = bytes(
            strings[self._country_off[index] : self._country_off[index + 1]]
        )
        return ASInfo(
            asn=asn, name=name.decode("utf-8"), country=country.decode("utf-8")
        )

    def __len__(self) -> int:
        return self._count


class SharedWorldTables:
    """The streamed run's published read-only tables.

    Today this is the prefix→AS table — the one table the gather path
    hits per address.  The world's other read-only tables (zones, PSL,
    provider catalog) reach forked workers copy-on-write; packing them
    through the same blob mechanism is the path to spawn-safe workers.
    """

    def __init__(self, prefix2as: SharedPrefix2AS):
        self.prefix2as = prefix2as

    @classmethod
    def publish(cls, dataset: Prefix2ASDataset, as_index) -> "SharedWorldTables":
        blob = SharedBlob.publish(pack_prefix2as(dataset, as_index))
        return cls(SharedPrefix2AS(blob))

    @classmethod
    def attach(cls, name: str, payload_length: int) -> "SharedWorldTables":
        return cls(SharedPrefix2AS(SharedBlob.attach(name, payload_length)))

    def close(self) -> None:
        self.prefix2as.blob.close()
