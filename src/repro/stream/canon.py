"""Canonical identity topology for measurement dicts.

Within one snapshot every distinct IP address has exactly one
observation: the gatherer's memo caches guarantee it on the serial
path, but process workers pickle their shard results, so objects that
were shared across shards come back as equal-but-distinct copies.
:func:`canonicalize_measurements` rebuilds a measurement dict so the
object graph is the same no matter how it was produced — one
:class:`~repro.measure.dataset.IPObservation` (and one ``ASInfo`` /
``PortScanRecord``) per address, a fresh :class:`MXData` per
occurrence, domain order untouched.

Because the PR 2 codec interns observations by *identity*, canonical
dicts encode to byte-identical payloads regardless of ``--jobs``,
executor, ``--batch-domains``, or memoization — which is what lets the
store digest acceptance gate hold across every engine setting.
"""

from __future__ import annotations

from typing import Iterable

from ..measure.caida import ASInfo
from ..measure.dataset import DomainMeasurement, IPObservation, MXData
from ..store.codec import decode_measurements


def canonicalize_measurements(
    measurements: dict[str, DomainMeasurement],
) -> dict[str, DomainMeasurement]:
    """Rebuild ``measurements`` with one observation object per address."""
    obs_pool: dict[str, IPObservation] = {}
    output: dict[str, DomainMeasurement] = {}
    for domain, measurement in measurements.items():
        mx_set = tuple(
            MXData(
                name=mx.name,
                preference=mx.preference,
                ips=tuple(_canon_observation(ip, obs_pool) for ip in mx.ips),
            )
            for mx in measurement.mx_set
        )
        output[domain] = DomainMeasurement(
            domain=measurement.domain,
            measured_on=measurement.measured_on,
            mx_set=mx_set,
            txt=measurement.txt,
        )
    return output


def _canon_observation(
    observation: IPObservation, obs_pool: dict[str, IPObservation]
) -> IPObservation:
    cached = obs_pool.get(observation.address)
    if cached is not None:
        return cached
    as_info = observation.as_info
    if as_info is not None:
        # Rebuilt, not reused: some lookup sources (the shared-memory
        # table's per-ASN memo) hand one ASInfo object to many
        # addresses, and the codec interns by identity — per-address
        # instances keep the encoded row layout source-independent.
        as_info = ASInfo(asn=as_info.asn, name=as_info.name, country=as_info.country)
    canon = IPObservation(
        address=observation.address,
        as_info=as_info,
        scan=observation.scan,
    )
    obs_pool[observation.address] = canon
    return canon


def merge_payloads(payloads: Iterable[bytes]) -> dict[str, DomainMeasurement]:
    """Decode encoded batch payloads in order into one canonical dict.

    Batches are contiguous slices of the sorted target list, so a plain
    in-order merge reproduces the serial iteration order; canonicalizing
    across batches restores the cross-batch observation sharing a single
    unbatched gather would have produced.
    """
    merged: dict[str, DomainMeasurement] = {}
    for payload in payloads:
        merged.update(decode_measurements(payload))
    return canonicalize_measurements(merged)
