"""Batch payload lifecycle: hold encoded, spill over budget, merge in order.

The spiller is the streamed gather's working set.  Each finished batch
is immediately encoded with the PR 2 codec and its object graph is
dropped — the *encoded* payload is the in-flight heap representation.
Held payload bytes are bounded by ``REPRO_MEM_BUDGET_MB``: overflow
spills oldest-first through :class:`~repro.store.artifacts.ArtifactStore`
under batch-plan-qualified kinds, and everything is merged back (and
spill entries discarded) in deterministic batch order at the end.

Spill entries double as batch-level checkpoints: a resumed run restores
a completed batch's payload from the store instead of re-gathering it,
which is why resilient runs write every batch through to the store.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING

from ..engine.stats import STATS
from ..store.codec import encode_measurements
from .batching import BatchPlan
from .canon import merge_payloads

if TYPE_CHECKING:
    from ..measure.dataset import DomainMeasurement

MEM_BUDGET_ENV = "REPRO_MEM_BUDGET_MB"
DEFAULT_BUDGET_MB = 256


def env_budget_bytes(default_mb: int = DEFAULT_BUDGET_MB) -> int:
    """Held-payload budget from ``REPRO_MEM_BUDGET_MB`` (warn on garbage)."""
    raw = os.environ.get(MEM_BUDGET_ENV)
    if raw is None:
        return default_mb * 1024 * 1024
    try:
        value = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {MEM_BUDGET_ENV}={raw!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default_mb * 1024 * 1024
    if value <= 0:
        return default_mb * 1024 * 1024
    return value * 1024 * 1024


class BatchSpiller:
    """Holds one snapshot gather's encoded batch payloads, spilling on demand."""

    def __init__(
        self,
        *,
        plan: BatchPlan,
        total: int,
        store=None,
        config=None,
        dataset=None,
        snapshot_index: int = 0,
        faults: str | None = None,
        budget_bytes: int | None = None,
        write_through: bool = False,
    ):
        self.plan = plan
        self.total = total
        self.store = store
        self.config = config
        self.dataset = dataset
        self.snapshot_index = snapshot_index
        self.faults = faults
        self.budget_bytes = (
            env_budget_bytes() if budget_bytes is None else budget_bytes
        )
        self.write_through = write_through and store is not None
        self._held: dict[int, bytes] = {}
        self._spilled: set[int] = set()
        self._held_bytes = 0

    def _batch_args(self, batch_index: int) -> tuple:
        index, count, size = self.plan.key(batch_index, self.total)
        return (
            self.config,
            self.dataset,
            self.snapshot_index,
            index,
            count,
            size,
        )

    def add(self, batch_index: int, measurements: "dict[str, DomainMeasurement]") -> int:
        """Encode a gathered batch; returns the payload size in bytes."""
        payload = encode_measurements(measurements)
        self._held[batch_index] = payload
        self._held_bytes += len(payload)
        STATS.inc("stream.batches")
        STATS.inc("stream.batch_bytes", len(payload))
        if self.write_through:
            self.store.save_batch(
                *self._batch_args(batch_index), payload, faults=self.faults
            )
            self._spilled.add(batch_index)
        self._enforce_budget()
        return len(payload)

    def restore(self, batch_index: int) -> bool:
        """Reload a previously persisted batch payload (resume path)."""
        if self.store is None or batch_index in self._held:
            return batch_index in self._held or batch_index in self._spilled
        payload = self.store.load_batch(
            *self._batch_args(batch_index), faults=self.faults
        )
        if payload is None:
            return False
        self._held[batch_index] = payload
        self._held_bytes += len(payload)
        self._spilled.add(batch_index)
        STATS.inc("stream.batch.restored")
        self._enforce_budget()
        return True

    def _enforce_budget(self) -> None:
        if self.store is None:
            return
        while self._held_bytes > self.budget_bytes and len(self._held) > 1:
            # Oldest-first keeps eviction deterministic for a given plan.
            batch_index = next(iter(self._held))
            payload = self._held.pop(batch_index)
            self._held_bytes -= len(payload)
            if batch_index not in self._spilled:
                self.store.save_batch(
                    *self._batch_args(batch_index), payload, faults=self.faults
                )
                self._spilled.add(batch_index)
                STATS.inc("stream.batch.spilled")
                STATS.inc("stream.spill_bytes", len(payload))

    def _payload(self, batch_index: int) -> bytes:
        payload = self._held.get(batch_index)
        if payload is not None:
            return payload
        payload = self.store.load_batch(
            *self._batch_args(batch_index), faults=self.faults
        )
        if payload is None:
            raise KeyError(f"batch {batch_index} neither held nor spilled")
        return payload

    def merge(self) -> "dict[str, DomainMeasurement]":
        """Decode all batches in order into one canonical measurement dict."""
        batch_count = self.plan.batch_count(self.total)
        merged = merge_payloads(
            self._payload(index) for index in range(batch_count)
        )
        self._discard_spilled()
        return merged

    def held_payloads(self) -> list[bytes]:
        """All payloads in batch order (store-less eviction backing)."""
        batch_count = self.plan.batch_count(self.total)
        return [self._payload(index) for index in range(batch_count)]

    def _discard_spilled(self) -> None:
        if self.store is None:
            return
        for batch_index in sorted(self._spilled):
            self.store.discard_batch(
                *self._batch_args(batch_index), faults=self.faults
            )
        self._spilled.clear()
