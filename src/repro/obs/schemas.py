"""JSON schemas for the observability artifacts, plus a tiny validator.

CI runs a traced sweep and validates the resulting trace, metrics, and
manifest files against these schemas before uploading them as build
artifacts — so a refactor that silently changes an export format fails
the build instead of breaking downstream dashboards.

The validator implements the small JSON-Schema subset the schemas use
(``type``, ``properties``, ``required``, ``items``, ``enum``,
``minItems``) — the container ships no ``jsonschema`` package, and these
documents do not need more.
"""

from __future__ import annotations

import json
import re

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}

TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "ts", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "cat": {"type": "string"},
        "ph": {"type": "string", "enum": ["X", "i", "M"]},
        "ts": {"type": "number"},
        "dur": {"type": "number"},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "args": {"type": "object"},
    },
}

TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "minItems": 1,
            "items": TRACE_EVENT_SCHEMA,
        },
        "displayTimeUnit": {"type": "string"},
        "otherData": {"type": "object"},
    },
}

# Shared by metrics v2 and manifest v2: process peak/current RSS plus
# the streamed measure path's batch and spill counters.
MEMORY_SCHEMA = {
    "type": "object",
    "required": ["peak_rss_bytes", "current_rss_bytes", "batches"],
    "properties": {
        "peak_rss_bytes": {"type": "integer"},
        "current_rss_bytes": {"type": "integer"},
        "batches": {"type": "integer"},
        "spilled_batches": {"type": "integer"},
        "restored_batches": {"type": "integer"},
        "spill_bytes": {"type": "integer"},
        "batch_bytes": {"type": "integer"},
    },
}

# Emitted by the query daemon (metrics "serve" section, manifest ditto):
# per-endpoint latency histograms plus block-cache effectiveness.
SERVE_SECTION_SCHEMA = {
    "type": "object",
    "required": ["endpoints", "block_cache"],
    "properties": {
        "uptime_s": {"type": "number"},
        "endpoints": {"type": "object"},
        "block_cache": {
            "type": "object",
            "required": ["hits", "misses"],
            "properties": {
                "hits": {"type": "integer"},
                "misses": {"type": "integer"},
                "entries": {"type": "integer"},
                "capacity": {"type": "integer"},
            },
        },
        "ingests": {"type": "array"},
        # Present when the daemon runs with resilience features enabled
        # (worker pool, admission control, ingest breaker, WAL journal):
        # queue depth / shed counters and circuit-breaker state.
        "resilience": {
            "type": "object",
            "properties": {
                "ready": {"type": "boolean"},
                "inflight": {"type": "integer"},
                "queue_depth": {"type": "integer"},
                "max_inflight": {"type": "integer"},
                "shed": {"type": "integer"},
                "quarantined": {"type": "integer"},
                "breaker": {"type": "object"},
                "wal": {"type": "object"},
            },
        },
        # Present when live telemetry is on (the default): sliding-window
        # quantiles/qps/error rates, gauges, and the SLO report.
        "live": {
            "type": "object",
            "required": ["schema", "endpoints", "gauges"],
            "properties": {
                "schema": {"type": "integer"},
                "endpoints": {"type": "object"},
                "gauges": {"type": "object"},
                "slo": {},
                "trace_ring_events": {"type": "integer"},
            },
        },
        "degraded": {"type": "boolean"},
    },
}

METRICS_SCHEMA = {
    "type": "object",
    "required": ["schema", "counters", "caches", "memory", "timers", "shards"],
    "properties": {
        "schema": {"type": "integer"},
        "counters": {"type": "object"},
        "caches": {"type": "object"},
        "memory": MEMORY_SCHEMA,
        "timers": {"type": "object"},
        "shards": {"type": "object"},
        # Present only on daemon runs (--metrics-out from `repro serve`).
        "serve": SERVE_SECTION_SCHEMA,
    },
}

# v3: every bench JSON document and each of its rows carries a
# ``bench_schema`` stamp, so trajectory tooling can reject mixed-version
# row sets instead of misreading renamed fields.
# v4: one unified document shape for every sweep script — run-wide knobs
# live under a required ``context`` object and ``failures`` is always
# present — built by :func:`bench_document` so no script hand-rolls the
# envelope (the ad-hoc per-script shapes of v3 are gone).
BENCH_SCHEMA_VERSION = 4

BENCH_SCHEMA = {
    "type": "object",
    "required": ["bench", "bench_schema", "context", "rows", "failures"],
    "properties": {
        "bench": {"type": "string"},
        "bench_schema": {"type": "integer"},
        "context": {"type": "object"},
        "rows": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["bench_schema"],
                "properties": {"bench_schema": {"type": "integer"}},
            },
        },
        "failures": {"type": "array"},
    },
}


def bench_document(
    bench: str,
    rows: list,
    *,
    failures: list | None = None,
    **context,
) -> dict:
    """The unified bench envelope every sweep script writes.

    Rows get their ``bench_schema`` stamp here (existing stamps are
    preserved so callers can't desynchronize a row from its document),
    and run-wide knobs (scale, jobs, gates, ...) land under ``context``.
    """
    return {
        "bench": bench,
        "bench_schema": BENCH_SCHEMA_VERSION,
        "context": {
            key: value for key, value in sorted(context.items())
        },
        "rows": [
            {"bench_schema": BENCH_SCHEMA_VERSION, **row} for row in rows
        ],
        "failures": list(failures or []),
    }


# One line of BENCH_history.jsonl (the cross-run perf timeline): the
# distilled metrics of one recorded sweep run.
HISTORY_EVENT_SCHEMA = {
    "type": "object",
    "required": ["history_schema", "bench", "run", "recorded", "metrics"],
    "properties": {
        "history_schema": {"type": "integer"},
        "bench": {"type": "string"},
        "bench_schema": {"type": "integer"},
        "run": {"type": "string"},
        "source": {},  # a path string, or null for hand-seeded entries
        "recorded": {"type": "number"},
        "metrics": {"type": "object"},
    },
}

MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "schema", "world", "schemas", "experiments", "timing", "runtime", "memory",
    ],
    "properties": {
        "schema": {"type": "integer"},
        "created_at": {"type": "string"},
        "argv": {"type": "array"},
        "memory": MEMORY_SCHEMA,
        "world": {
            "type": "object",
            "required": ["seed", "snapshot_dates"],
            "properties": {
                "seed": {"type": "integer"},
                "snapshot_dates": {"type": "array", "minItems": 1},
            },
        },
        "schemas": {"type": "object"},
        "experiments": {"type": "array"},
        "timing": {"type": "object"},
        "runtime": {"type": "object"},
        # Present only on daemon runs (`repro serve` shutdown manifest).
        "serve": SERVE_SECTION_SCHEMA,
        # Present only on faulted runs (fault-free manifests omit it).
        "faults": {
            "type": "object",
            "required": ["seed", "spec"],
            "properties": {
                "seed": {"type": "integer"},
                "spec": {"type": "string"},
            },
        },
        # Present only on resilient runs (journal + checkpoints active).
        "resilience": {
            "type": "object",
            "required": ["run_id", "run_dir", "status"],
            "properties": {
                "run_id": {"type": "string"},
                "run_dir": {"type": "string"},
                "status": {
                    "type": "string",
                    "enum": ["complete", "interrupted", "failed"],
                },
                "resume_count": {"type": "integer"},
                "lineage": {"type": "object"},
            },
        },
    },
}

JOURNAL_EVENT_SCHEMA = {
    "type": "object",
    "required": ["schema", "event", "run", "ts"],
    "properties": {
        "schema": {"type": "integer"},
        "event": {
            "type": "string",
            "enum": [
                "run.start",
                "run.resume",
                "run.interrupted",
                "run.complete",
                "run.failed",
                "experiment.done",
                "snapshot.done",
                "shard.start",
                "shard.done",
                "shard.restored",
                "shard.crash",
                "shard.hung",
                "shard.quarantined",
                "shard.lease",
                "shard.stolen",
                "shard.lost",
                "host.join",
                "host.lost",
                # Serving layer (repro.serve.resilience): worker-pool
                # lifecycle plus the crash-safe ingest WAL.
                "serve.start",
                "serve.ready",
                "serve.stop",
                "serve.worker.start",
                "serve.worker.lost",
                "serve.worker.restart",
                "serve.request.quarantined",
                "serve.breaker.open",
                "serve.breaker.close",
                "ingest.wal.begin",
                "ingest.wal.commit",
                "ingest.wal.replay",
                "ingest.wal.failed",
            ],
        },
        "run": {"type": "string"},
        "ts": {"type": "number"},
        "corpus": {"type": "string"},
        "snapshot": {"type": "integer"},
        "shard": {"type": "integer"},
        "attempt": {"type": "integer"},
        "attempts": {"type": "integer"},
        "seconds": {"type": "number"},
        "targets": {"type": "integer"},
        "experiment": {"type": "string"},
        "experiments": {"type": "array"},
        "reason": {"type": "string"},
        "reasons": {"type": "array"},
        "signal": {"type": "string"},
        "args": {"type": "object"},
        "config_digest": {"type": "string"},
        "resume": {"type": "integer"},
        # Distributed-executor fields (repro.dist): host/lease lifecycle.
        "host": {"type": "string"},
        "lease": {"type": "integer"},
        "pool": {"type": "integer"},
        "stolen": {"type": "boolean"},
        "victim": {"type": "string"},
        # Serving-layer fields (repro.serve.resilience): worker slots,
        # blamed requests, and WAL intent records.
        "worker": {"type": "integer"},
        "pid": {"type": "integer"},
        "exit": {"type": "integer"},
        "workers": {"type": "integer"},
        "restarts": {"type": "integer"},
        "request": {"type": "string"},
        "op": {"type": "string"},
        "corpora": {"type": "array"},
        "replay": {"type": "boolean"},
        "error": {"type": "string"},
        "failures": {"type": "integer"},
        "socket": {"type": "string"},
        "http": {"type": "string"},
    },
}

# -- distributed executor wire format ------------------------------------

#: Version stamp every repro.dist RPC message carries (field ``v``).
DIST_PROTOCOL_VERSION = 1

#: One line-JSON message on a coordinator/worker connection.  Messages
#: are strict request/response pairs; payloads ride as base64 of the
#: columnar measurement codec (the PR 2/PR 6 on-disk format doubles as
#: the wire format).
DIST_MESSAGE_SCHEMA = {
    "type": "object",
    "required": ["v", "type"],
    "properties": {
        "v": {"type": "integer"},
        "type": {
            "type": "string",
            "enum": [
                "hello",
                "welcome",
                "lease-request",
                "lease",
                "no-work",
                "result",
                "heartbeat",
                "ack",
                "shutdown",
                "error",
            ],
        },
        # hello / lease-request / result / heartbeat
        "host": {"type": "string"},
        "pool": {"type": "integer"},
        "pid": {"type": "integer"},
        # welcome
        "run": {},  # run id string, or null outside resilient runs
        "world": {"type": "object"},
        "faults": {},  # canonical fault spec string, or null
        "heartbeat_interval": {"type": "number"},
        "heartbeat_timeout": {"type": "number"},
        "cache_dir": {},  # shared store path string, or null
        # lease / result
        "gather": {"type": "integer"},
        "lease": {"type": "integer"},
        "shard": {"type": "integer"},
        "shard_count": {"type": "integer"},
        "attempt": {"type": "integer"},
        "snapshot": {"type": "integer"},
        "corpus": {"type": "string"},
        "scope": {"type": "string"},
        "domains": {"type": "array"},
        "stolen": {"type": "boolean"},
        "payload": {"type": "string"},
        "elapsed": {"type": "number"},
        "stats": {"type": "object"},
        "events": {"type": "array"},
        # result failure reporting (worker-level fault met remotely)
        "failed": {"type": "string", "enum": ["crash", "hung"]},
        # no-work
        "idle": {"type": "boolean"},
        "retry_after": {"type": "number"},
        # error
        "reason": {"type": "string"},
    },
}

PROVENANCE_SCHEMA = {
    "type": "object",
    "required": ["schema", "domain", "corpus", "snapshot", "status", "mx"],
    "properties": {
        "schema": {"type": "integer"},
        "domain": {"type": "string"},
        "corpus": {"type": "string", "enum": ["alexa", "com", "gov"]},
        "snapshot": {"type": "integer"},
        "status": {
            "type": "string",
            "enum": ["inferred", "no_mx", "no_mx_ip", "no_smtp"],
        },
        "attributions": {"type": "object"},
        "mx": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "provider_id", "evidence", "ips"],
                "properties": {
                    "name": {"type": "string"},
                    "provider_id": {"type": "string"},
                    "evidence": {"type": "string", "enum": ["cert", "banner", "mx"]},
                    "corrected": {"type": "boolean"},
                    "examined": {"type": "boolean"},
                    "ips": {"type": "array"},
                },
            },
        },
        # Present only on faulted runs with injected evidence loss.
        "evidence_loss": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["lost", "reason"],
                "properties": {
                    "lost": {"type": "array", "minItems": 1},
                    "reason": {"type": "string"},
                },
            },
        },
    },
}


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Errors of *instance* against *schema* (empty list = valid)."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if not isinstance(instance, python_type) or (
            expected in ("integer", "number") and isinstance(instance, bool)
        ):
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required member {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                errors.extend(validate(instance[name], subschema, f"{path}.{name}"))
    if isinstance(instance, list):
        if len(instance) < schema.get("minItems", 0):
            errors.append(
                f"{path}: {len(instance)} items < minItems {schema['minItems']}"
            )
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(instance):
                errors.extend(validate(element, items, f"{path}[{index}]"))
    return errors


def validate_file(path: str, schema: dict) -> list[str]:
    """Load a JSON document and validate it; IO/parse problems are errors."""
    try:
        with open(path) as handle:
            instance = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: unreadable ({error})"]
    return validate(instance, schema, path="$")


_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_SAMPLE = re.compile(
    rf"^({_PROM_NAME})(\{{[^{{}}]*\}})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]?Inf|NaN)$"
)
_PROM_LABELS = re.compile(
    rf'^{_PROM_NAME}="(?:[^"\\]|\\.)*"(?:,{_PROM_NAME}="(?:[^"\\]|\\.)*")*,?$'
)


def validate_prometheus(text: str, path: str = "<prom>") -> list[str]:
    """Errors of a Prometheus text exposition (empty list = valid).

    Checks the subset a scrape endpoint must get right: sample lines
    parse (name, optional label set, float value), label sets are
    well-formed, every ``# TYPE`` names a metric family that then
    appears, and no family is re-declared.
    """
    errors: list[str] = []
    declared: set[str] = set()
    sampled: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family = parts[2]
                if family in declared:
                    errors.append(f"{path}:{number}: duplicate TYPE for {family}")
                declared.add(family)
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                errors.append(f"{path}:{number}: unknown comment {parts[1]!r}")
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            errors.append(f"{path}:{number}: unparseable sample {line!r}")
            continue
        name, labels = match.group(1), match.group(2)
        if labels and not _PROM_LABELS.match(labels[1:-1]):
            errors.append(f"{path}:{number}: malformed labels {labels!r}")
        sampled.add(name)
    for family in sorted(declared):
        # Histogram/summary families sample under _bucket/_sum/_count.
        if family in sampled or any(
            f"{family}{suffix}" in sampled
            for suffix in ("_bucket", "_sum", "_count")
        ):
            continue
        errors.append(f"{path}: TYPE declared but never sampled: {family}")
    return errors


def validate_prometheus_file(path: str) -> list[str]:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    return validate_prometheus(text, path=path)


def validate_jsonl_file(path: str, schema: dict) -> list[str]:
    """Validate every line of a JSONL stream against one event schema."""
    errors: list[str] = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except ValueError as error:
                    errors.append(f"{path}:{number}: bad JSON ({error})")
                    continue
                errors.extend(validate(event, schema, path=f"{path}:{number}"))
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    return errors
