"""Cross-run perf timeline over the repo's bench artifacts.

Every sweep script writes a JSON document (``bench_sweep``,
``serve_sweep``, ``chaos_sweep`` — the unified shape in
:mod:`repro.obs.schemas`); this module folds those one-shot artifacts
into an append-only ``BENCH_history.jsonl`` and compares each new run's
metrics against the **rolling median** of the prior runs of the same
bench, so a perf regression fails CI instead of scrolling past.

One history line per recorded run::

    {"history_schema": 1, "bench": "serve-sweep", "run": "...",
     "recorded": 1754650000.0, "metrics": {"daemon.p99_ms": 1.62, ...}}

Metric *polarity* is inferred from the name: throughput-flavoured
metrics (qps, speedup, accuracy, hit rates) regress when they **drop**;
everything else (latencies, wall clocks, RSS) regresses when it
**rises**.  A metric regresses when its worse-direction ratio against
the rolling median exceeds the threshold (default 1.5×, so an injected
2× latency regression trips the gate with margin for machine noise).
"""

from __future__ import annotations

import json
import os
import statistics
import time

HISTORY_SCHEMA_VERSION = 1
DEFAULT_HISTORY = "BENCH_history.jsonl"
DEFAULT_THRESHOLD = 1.5
DEFAULT_WINDOW = 5

#: Name fragments whose metrics improve upward (drop = regression).
_HIGHER_IS_BETTER = ("qps", "speedup", "accuracy", "hit_rate", "rate")


class TimelineError(ValueError):
    """An unusable bench document or history file."""


def higher_is_better(metric: str) -> bool:
    # Strip any "@<param>" qualifier (it may itself contain dots, e.g.
    # "ingest.speedup@0.1") before isolating the metric's leaf name.
    tail = metric.split("@", 1)[0].rsplit(".", 1)[-1]
    return any(tail.startswith(marker) or marker in tail for marker in _HIGHER_IS_BETTER)


# -- metric extraction ---------------------------------------------------


def extract_metrics(document: dict) -> dict[str, float]:
    """The timeline metrics of one bench document, keyed canonically."""
    bench = document.get("bench")
    rows = document.get("rows")
    if not isinstance(bench, str) or not isinstance(rows, list):
        raise TimelineError(
            "not a bench document (missing 'bench'/'rows'); run the sweep "
            "with --json and pass that file"
        )
    extractor = _EXTRACTORS.get(bench, _extract_generic)
    metrics = extractor(document)
    if not metrics:
        raise TimelineError(f"bench {bench!r}: no timeline metrics found")
    return metrics


def _extract_serve(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for row in document["rows"]:
        phase = row.get("phase")
        if phase == "seed":
            metrics["seed.seconds"] = row["seconds"]
        elif phase == "daemon":
            metrics["daemon.warm_start_s"] = row["warm_start_s"]
            metrics["daemon.p50_ms"] = row["p50_ms"]
            metrics["daemon.p99_ms"] = row["p99_ms"]
            metrics["daemon.qps"] = row["qps"]
            if row.get("telemetry_overhead") is not None:
                metrics["daemon.telemetry_overhead"] = row["telemetry_overhead"]
        elif phase == "ingest":
            churn = row.get("churn")
            metrics[f"ingest.speedup@{churn:g}"] = row["speedup"]
            metrics[f"ingest.seconds@{churn:g}"] = row["ingest_seconds"]
    return metrics


def _extract_sweep(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for row in document["rows"]:
        mode = row.get("mode")
        scale = row.get("scale")
        if mode is None or scale is None:
            continue
        metrics[f"{mode}.wall_s@x{scale:g}"] = row["wall_seconds"]
    for summary in document.get("summaries", []) or document.get(
        "context", {}
    ).get("summaries", []):
        scale = summary.get("scale")
        if scale is not None:
            metrics[f"warm_speedup@x{scale:g}"] = summary["warm_speedup_vs_cold"]
    return metrics


def _extract_smoke(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for row in document["rows"]:
        scale = row.get("scale")
        if scale is None:
            continue
        metrics[f"measure_delta_mb@x{scale:g}"] = row["measure_delta_mb"]
        metrics[f"measure_s@x{scale:g}"] = row["measure_seconds"]
    return metrics


def _extract_chaos(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for row in document["rows"]:
        rate = row.get("rate")
        if rate is None or "accuracy" not in row:
            continue
        metrics[f"accuracy@{rate:g}"] = row["accuracy"]
    return metrics


def _extract_generic(document: dict) -> dict[str, float]:
    """Fallback: every scalar numeric field of every row, index-keyed."""
    metrics: dict[str, float] = {}
    for index, row in enumerate(document["rows"]):
        for key, value in row.items():
            if key == "bench_schema":
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"row{index}.{key}"] = float(value)
    return metrics


_EXTRACTORS = {
    "serve-sweep": _extract_serve,
    "sweep": _extract_sweep,
    "scaled-smoke": _extract_smoke,
    "chaos-sweep": _extract_chaos,
}


# -- history file --------------------------------------------------------


def history_entry(
    document: dict, *, source: str | None = None, run: str | None = None
) -> dict:
    """One appendable history line for a bench document."""
    return {
        "history_schema": HISTORY_SCHEMA_VERSION,
        "bench": document["bench"],
        "bench_schema": document.get("bench_schema"),
        "run": run or os.environ.get("GITHUB_RUN_ID") or f"local-{int(time.time())}",
        "source": source,
        "recorded": round(time.time(), 3),
        "metrics": extract_metrics(document),
    }


def read_history(path: str | os.PathLike) -> list[dict]:
    """Every history entry, in file order (missing file = empty history)."""
    entries: list[dict] = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except ValueError as error:
                    raise TimelineError(f"{path}:{number}: bad JSON ({error})")
                entries.append(entry)
    except FileNotFoundError:
        return []
    return entries


def append_history(path: str | os.PathLike, entry: dict) -> None:
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


# -- regression analysis -------------------------------------------------


def compare(
    entries: list[dict],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> list[dict]:
    """Delta rows for the newest entry of each bench vs its rolling median.

    Returns one row per metric of each bench's latest run:
    ``{bench, metric, value, median, ratio, direction, regressed}``.
    Benches with fewer than two runs yield rows with ``median=None``
    (nothing to compare against — never a regression).
    """
    by_bench: dict[str, list[dict]] = {}
    for entry in entries:
        by_bench.setdefault(entry.get("bench", "?"), []).append(entry)
    rows: list[dict] = []
    for bench in sorted(by_bench):
        runs = by_bench[bench]
        latest = runs[-1]
        priors = runs[:-1][-window:]
        for metric in sorted(latest.get("metrics", {})):
            value = latest["metrics"][metric]
            prior_values = [
                run["metrics"][metric]
                for run in priors
                if isinstance(run.get("metrics", {}).get(metric), (int, float))
            ]
            if not prior_values:
                rows.append({
                    "bench": bench, "metric": metric, "value": value,
                    "median": None, "ratio": None,
                    "direction": "up" if higher_is_better(metric) else "down",
                    "regressed": False,
                })
                continue
            median = statistics.median(prior_values)
            up = higher_is_better(metric)
            if median == 0 or value == 0:
                # A zero on either side makes the ratio meaningless;
                # report the delta but never gate on it.
                ratio = None
                regressed = False
            else:
                ratio = value / median
                worse = median / value if up else value / median
                regressed = worse > threshold
            rows.append({
                "bench": bench, "metric": metric, "value": value,
                "median": round(median, 6), "ratio": round(ratio, 4) if ratio else None,
                "direction": "up" if up else "down",
                "regressed": regressed,
            })
    return rows


def render_table(rows: list[dict]) -> str:
    """The markdown delta table for a :func:`compare` result."""
    lines = [
        "| bench | metric | value | median (prior) | ratio | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    for row in rows:
        median = f"{row['median']:g}" if row["median"] is not None else "—"
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "—"
        if row["regressed"]:
            verdict = "**REGRESSED**"
        elif row["median"] is None:
            verdict = "first run"
        else:
            verdict = "ok"
        arrow = "↑" if row["direction"] == "up" else "↓"
        lines.append(
            f"| {row['bench']} | {row['metric']} {arrow} | {row['value']:g} "
            f"| {median} | {ratio} | {verdict} |"
        )
    return "\n".join(lines)


def regressions(rows: list[dict]) -> list[dict]:
    return [row for row in rows if row["regressed"]]
