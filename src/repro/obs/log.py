"""Structured logging for the repro system.

A thin layer over stdlib :mod:`logging`:

* every module logs through ``get_logger("area")`` → ``repro.area``;
* :func:`configure` installs one stderr handler on the ``repro`` root,
  with the level from ``REPRO_LOG`` (silent by default — experiments
  print artifacts to stdout and must stay byte-identical) and an optional
  JSON-lines format (``REPRO_LOG_JSON=1`` or ``--log-json``) whose one
  object per line carries the event name plus structured fields.

Structured fields ride on the standard ``extra`` mechanism::

    log.info("store.reject", extra={"fields": {"path": name, "reason": r}})

The text formatter renders them as ``key=value`` suffixes; the JSON
formatter embeds them as object members.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

LOG_ENV = "REPRO_LOG"
LOG_JSON_ENV = "REPRO_LOG_JSON"

_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(area: str) -> logging.Logger:
    """The logger for one subsystem (``engine``, ``store``, ``cli`` ...)."""
    return logging.getLogger(f"repro.{area}")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            document.update(fields)
        if record.exc_info:
            document["exception"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True, default=str)


class TextFormatter(logging.Formatter):
    """``HH:MM:SS level logger event key=value ...`` on one line."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname.lower():<7s} "
            f"{record.name} {record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            line += "".join(f" {key}={value}" for key, value in fields.items())
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def env_level(default: str | None = None) -> str | None:
    """The ``REPRO_LOG`` level name, or *default* when unset/garbage."""
    raw = os.environ.get(LOG_ENV)
    if not raw:
        return default
    name = raw.strip().lower()
    if name in {"debug", "info", "warning", "error", "critical"}:
        return name
    return default


def env_json(default: bool = False) -> bool:
    raw = os.environ.get(LOG_JSON_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in {"", "0", "off", "no", "false"}


def configure(
    level: str | None = None,
    json_lines: bool | None = None,
    stream=None,
) -> logging.Logger:
    """Install (or replace) the repro log handler; returns the root.

    With no explicit *level* and no ``REPRO_LOG``, logging stays disabled
    (level WARNING, no handler churn beyond ours).  Safe to call more
    than once: the previously installed repro handler is swapped out.
    """
    root = logging.getLogger("repro")
    level = level or env_level()
    json_lines = env_json() if json_lines is None else json_lines
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else TextFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.propagate = False
    root.setLevel((level or "warning").upper())
    return root
