"""repro.obs — observability for the measure→infer system.

Four concerns, one package:

* :mod:`repro.obs.trace` — hierarchical span tracing (run → experiment →
  corpus × snapshot → gather/pipeline-step → shard), exported as
  Chrome-trace/Perfetto JSON plus a JSONL event stream; fork- and
  thread-safe, near-zero overhead when disabled.
* :mod:`repro.obs.metrics` — unified metrics export (JSON + Prometheus
  textfile) over the engine's stats registry, worker counters included.
* :mod:`repro.obs.provenance` — per-domain inference audit trails (which
  evidence tier won, what step 4 corrected), behind ``repro explain``.
* :mod:`repro.obs.log` — structured logging (``REPRO_LOG`` level,
  optional JSON lines) and :mod:`repro.obs.manifest` — the per-run
  provenance manifest; :mod:`repro.obs.schemas` validates every export.

:mod:`repro.obs.trace` and :mod:`repro.obs.log` are stdlib-only, so the
engine/store/measure layers can import them without cycles; the other
modules defer their ``repro`` imports into function bodies for the same
reason.
"""

from . import live, log, manifest, metrics, provenance, schemas, sketch, slo
from . import timeline, trace
from .live import LiveTelemetry
from .log import configure as configure_logging
from .log import get_logger
from .metrics import collect as collect_metrics
from .metrics import write_metrics
from .provenance import explain, render_explanation
from .sketch import LogHistogram, WindowedRecorder
from .slo import SLOSet, parse_slo
from .trace import span

__all__ = [
    "LiveTelemetry",
    "LogHistogram",
    "SLOSet",
    "WindowedRecorder",
    "collect_metrics",
    "configure_logging",
    "explain",
    "get_logger",
    "live",
    "log",
    "manifest",
    "metrics",
    "parse_slo",
    "provenance",
    "render_explanation",
    "schemas",
    "sketch",
    "slo",
    "span",
    "timeline",
    "trace",
    "write_metrics",
]
