"""Per-domain inference provenance: why a domain got its provider ID.

The priority pipeline already records its reasoning in the result model —
each :class:`~repro.core.types.MXIdentity` carries the evidence tier that
won (cert / banner / MX name, the paper's §3.2 priority order), the
per-IP evidence it aggregated, and any step-4 misidentification
correction applied.  This module turns one stored inference into an
explicit audit-trail record (a plain dict, schema-versioned for the CI
validators) and a human-readable rendering — the backend of the
``repro explain <domain> --date <snapshot>`` subcommand.

Because provenance is derived from the :class:`PipelineResult` itself,
explaining a domain is consistent by construction with whatever the
sweep stored — including results served warm from the artifact store,
whose codec round-trips the full evidence tuples.
"""

from __future__ import annotations

PROVENANCE_SCHEMA_VERSION = 1

# Human labels for the evidence tiers, in the paper's priority order.
TIER_LABELS = {
    "cert": "TLS certificate",
    "banner": "SMTP banner/EHLO",
    "mx": "MX name fallback",
}


def _ip_record(ip_identity) -> dict:
    return {
        "address": ip_identity.address,
        "cert_id": ip_identity.cert_id,
        "cert_fingerprint": ip_identity.cert_fingerprint,
        "cert_names": list(ip_identity.cert_names),
        "banner_id": ip_identity.banner_id,
        "banner_fqdn": ip_identity.banner_fqdn,
    }


def _mx_record(identity) -> dict:
    return {
        "name": identity.mx_name,
        "provider_id": identity.provider_id,
        "evidence": identity.source.value,
        "examined": identity.examined,
        "corrected": identity.corrected,
        "correction_reason": identity.correction_reason,
        "ips": [_ip_record(ip) for ip in identity.ip_identities],
    }


def provenance_record(
    inference,
    *,
    corpus: str,
    snapshot_index: int,
    snapshot_date=None,
    measurement=None,
    faults=None,
) -> dict:
    """The audit-trail record for one domain's stored inference.

    *measurement* (optional) adds the raw MX set with preferences, so the
    trail also shows records that did **not** participate (non-primary
    preferences, unresolvable names).

    *faults* (a :class:`~repro.faults.FaultInjector`, or None) adds the
    evidence-loss section of faulted runs: which tiers never arrived for
    each primary-MX address and why — injected scan dropout, exhausted
    retries, TLS handshake failures — replayed from the injector's pure
    decisions, so the explanation matches any stored snapshot of the
    same (seed, plan).  Fault-free records are byte-identical to before.
    """
    record = {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "domain": inference.domain,
        "corpus": corpus,
        "snapshot": int(snapshot_index),
        "date": snapshot_date.isoformat() if snapshot_date is not None else None,
        "status": inference.status.value,
        "attributions": dict(inference.attributions),
        "mx": [_mx_record(identity) for identity in inference.mx_identities],
    }
    if record["mx"]:
        # The tier that decided the attribution: strongest evidence among
        # the participating MX identities (priority order cert > banner > mx).
        best = min(
            inference.mx_identities, key=lambda identity: identity.source.priority
        )
        record["winning_evidence"] = best.source.value
    else:
        record["winning_evidence"] = None
    if measurement is not None:
        primary = {mx.name for mx in measurement.primary_mx}
        record["mx_set"] = [
            {
                "name": mx.name,
                "preference": mx.preference,
                "primary": mx.name in primary,
                "resolved": mx.resolved,
                "addresses": [ip.address for ip in mx.ips],
            }
            for mx in measurement.mx_set
        ]
    if faults is not None:
        losses = _evidence_losses(faults, inference, measurement)
        if losses:
            record["evidence_loss"] = losses
    return record


def _evidence_losses(faults, inference, measurement) -> list[dict]:
    """Replay the injector's decisions for every primary-MX address."""
    losses: list[dict] = []
    if measurement is None:
        return losses
    measured_on = measurement.measured_on
    if not measurement.has_mx:
        reason = faults.explain_dns(measured_on, measurement.domain, "MX")
        if reason is not None:
            losses.append({"address": None, "lost": ["mx"], "reason": reason})
        return losses
    seen: set[str] = set()
    for mx in measurement.primary_mx:
        for ip in mx.ips:
            if ip.address in seen:
                continue
            seen.add(ip.address)
            loss = faults.explain_observation(ip, measured_on)
            if loss is not None:
                losses.append(loss)
    return losses


def explain(ctx, domain: str, snapshot_index: int, dataset=None) -> dict | None:
    """Build the provenance record for *domain* at one snapshot.

    Locates the corpus when *dataset* is not given; returns None when the
    domain is in no corpus or the corpus has no coverage at the snapshot.
    Runs (or loads) the default-config priority pipeline for the whole
    (corpus, snapshot) — provenance always reflects the real sweep, never
    a domain re-run in isolation.
    """
    if dataset is None:
        dataset = locate_domain(ctx, domain)
        if dataset is None:
            return None
    result = ctx.priority_result(dataset, snapshot_index)
    if result is None or domain not in result.inferences:
        return None
    measurements = ctx.measurements(dataset, snapshot_index) or {}
    return provenance_record(
        result.inferences[domain],
        corpus=dataset.value,
        snapshot_index=snapshot_index,
        snapshot_date=ctx.world.snapshot_dates[snapshot_index],
        measurement=measurements.get(domain),
        faults=getattr(ctx, "faults", None),
    )


def locate_domain(ctx, domain: str):
    """The corpus tag containing *domain*, or None."""
    from ..world.entities import DatasetTag

    for dataset in DatasetTag:
        if domain in set(ctx.domains(dataset)):
            return dataset
    return None


def render_explanation(record: dict) -> str:
    """The human-readable audit trail behind ``repro explain``."""
    lines = [
        f"{record['domain']} — corpus {record['corpus']}, "
        f"snapshot {record['snapshot']}"
        + (f" ({record['date']})" if record.get("date") else ""),
        f"status: {record['status']}",
    ]
    if record["attributions"]:
        shares = ", ".join(
            f"{provider} ({weight:.2f})"
            for provider, weight in sorted(record["attributions"].items())
        )
        lines.append(f"attribution: {shares}")
    if record.get("winning_evidence"):
        tier = record["winning_evidence"]
        lines.append(
            f"winning evidence tier: {tier} — {TIER_LABELS.get(tier, tier)}"
        )
    if record.get("mx_set"):
        lines.append("published MX set:")
        for mx in record["mx_set"]:
            notes = []
            if mx["primary"]:
                notes.append("primary")
            if not mx["resolved"]:
                notes.append("unresolvable")
            suffix = f"  [{', '.join(notes)}]" if notes else ""
            lines.append(
                f"  pref {mx['preference']:>3d}  {mx['name']}"
                f"  → {len(mx['addresses'])} address(es){suffix}"
            )
    if record["mx"]:
        lines.append("evidence trail (priority: cert > banner > mx-name):")
    for mx in record["mx"]:
        lines.append(
            f"  MX {mx['name']}  → provider {mx['provider_id']}"
            f"  [tier: {mx['evidence']}]"
        )
        for ip in mx["ips"]:
            parts = [f"    ip {ip['address']}"]
            if ip["cert_id"] is not None:
                fingerprint = ip["cert_fingerprint"] or ""
                parts.append(f"cert→{ip['cert_id']} ({fingerprint[:12]})")
            if ip["banner_id"] is not None:
                parts.append(f"banner→{ip['banner_id']} ({ip['banner_fqdn']})")
            if ip["cert_id"] is None and ip["banner_id"] is None:
                parts.append("no cert/banner evidence")
            lines.append("  ".join(parts))
        if mx["corrected"]:
            lines.append(
                f"    step 4: CORRECTED — {mx['correction_reason']}"
            )
        elif mx["examined"]:
            lines.append("    step 4: examined, inference upheld")
        else:
            lines.append("    step 4: not a misidentification candidate")
    if record.get("evidence_loss"):
        lines.append("evidence loss (fault injection):")
        for loss in record["evidence_loss"]:
            where = loss["address"] or "DNS"
            tiers = ", ".join(loss["lost"])
            lines.append(f"  {where}: lost [{tiers}] — {loss['reason']}")
    return "\n".join(lines)
