"""Unified metrics export over the engine's stats registry.

:class:`~repro.engine.stats.EngineStats` is the single accumulation point
for every counter in the system — gather/scan/identity cache hits, store
read/write bytes, pipeline timers, shard timings — including counters
shipped back from process-pool workers.  This module turns one stats
instance into machine-readable exports:

* :func:`collect` — a structured dict (the ``--metrics-out foo.json``
  payload), with derived cache hit rates and shard-imbalance summaries;
* :func:`render_prometheus` — the Prometheus textfile format
  (``--metrics-out foo.prom``), using labels rather than name-mangling so
  the repo's dotted ``<area>.<cache>.hit`` convention survives intact.
"""

from __future__ import annotations

import json
import os

# v2: adds the "memory" section (peak/current RSS, streamed-batch and
# spill counters) emitted by the out-of-core measure path.
METRICS_SCHEMA_VERSION = 2


def _shard_summary(timings: list[float]) -> dict:
    total = sum(timings)
    mean = total / len(timings) if timings else 0.0
    peak = max(timings) if timings else 0.0
    return {
        "count": len(timings),
        "total_seconds": total,
        "max_seconds": peak,
        "mean_seconds": mean,
        # max/mean straggler factor: 1.0 = perfectly balanced shards.
        "imbalance": (peak / mean) if mean else None,
    }


def memory_summary(stats) -> dict:
    """The memory/streaming section of the metrics document.

    ``peak_rss_bytes`` prefers the live high-water mark over the sampled
    counter so the export reflects the whole process even when no
    ``sample_peak_rss`` call ran; batch/spill counters are zero on
    unbatched runs.
    """
    from ..engine.stats import peak_rss_bytes, current_rss_bytes

    sampled = stats.counters.get("mem.peak_rss_bytes", 0)
    live = peak_rss_bytes() or 0
    return {
        "peak_rss_bytes": max(sampled, live),
        "current_rss_bytes": current_rss_bytes() or 0,
        "batches": stats.counters.get("stream.batches", 0),
        "spilled_batches": stats.counters.get("stream.batch.spilled", 0),
        "restored_batches": stats.counters.get("stream.batch.restored", 0),
        "spill_bytes": stats.counters.get("stream.spill_bytes", 0),
        "batch_bytes": stats.counters.get("stream.batch_bytes", 0),
    }


def collect(stats=None) -> dict:
    """A structured metrics document from one stats registry."""
    if stats is None:
        from ..engine.stats import get_stats

        stats = get_stats()
    caches = {}
    for prefix in stats.cache_prefixes():
        hits = stats.counters.get(f"{prefix}.hit", 0)
        misses = stats.counters.get(f"{prefix}.miss", 0)
        caches[prefix] = {
            "hits": hits,
            "misses": misses,
            "rate": stats.hit_rate(prefix),
        }
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "counters": dict(stats.counters),
        "caches": caches,
        "memory": memory_summary(stats),
        "timers": {
            name: {
                "seconds": seconds,
                "calls": stats.timer_calls.get(name, 0),
            }
            for name, seconds in stats.timers.items()
        },
        "shards": {
            label: _shard_summary(timings)
            for label, timings in stats.shard_timings.items()
        },
    }


def render_prometheus(metrics: dict) -> str:
    """The Prometheus textfile exposition of a :func:`collect` document."""
    lines = [
        "# HELP repro_counter_total Engine counter (dotted repro name as label).",
        "# TYPE repro_counter_total counter",
    ]
    for name in sorted(metrics["counters"]):
        lines.append(
            f'repro_counter_total{{name="{name}"}} {metrics["counters"][name]}'
        )
    lines += [
        "# HELP repro_cache_hit_ratio Derived hit rate of one cache pair.",
        "# TYPE repro_cache_hit_ratio gauge",
    ]
    for prefix in sorted(metrics["caches"]):
        rate = metrics["caches"][prefix]["rate"]
        if rate is not None:
            lines.append(f'repro_cache_hit_ratio{{cache="{prefix}"}} {rate:.6f}')
    lines += [
        "# HELP repro_timer_seconds_total Cumulative wall time per phase.",
        "# TYPE repro_timer_seconds_total counter",
        "# HELP repro_timer_calls_total Invocations per phase timer.",
        "# TYPE repro_timer_calls_total counter",
    ]
    for name in sorted(metrics["timers"]):
        timer = metrics["timers"][name]
        lines.append(
            f'repro_timer_seconds_total{{timer="{name}"}} {timer["seconds"]:.6f}'
        )
        lines.append(f'repro_timer_calls_total{{timer="{name}"}} {timer["calls"]}')
    lines += [
        "# HELP repro_memory_bytes Process memory, by kind (peak = RSS HWM).",
        "# TYPE repro_memory_bytes gauge",
    ]
    memory = metrics.get("memory", {})
    for kind in ("peak_rss_bytes", "current_rss_bytes"):
        if kind in memory:
            label = kind.removesuffix("_bytes")
            lines.append(f'repro_memory_bytes{{kind="{label}"}} {memory[kind]}')
    lines += [
        "# HELP repro_shard_imbalance Max/mean shard straggler factor.",
        "# TYPE repro_shard_imbalance gauge",
    ]
    for label in sorted(metrics["shards"]):
        imbalance = metrics["shards"][label]["imbalance"]
        if imbalance is not None:
            lines.append(
                f'repro_shard_imbalance{{shards="{label}"}} {imbalance:.6f}'
            )
    return "\n".join(lines) + "\n"


def write_metrics(
    path: str | os.PathLike, stats=None, fmt: str | None = None
) -> dict:
    """Export metrics to *path*; format from *fmt* or the file extension.

    ``.prom``/``.txt`` paths get the Prometheus textfile format, anything
    else the JSON document.  Returns the collected document either way.
    """
    metrics = collect(stats)
    if fmt is None:
        fmt = (
            "prometheus"
            if os.fspath(path).endswith((".prom", ".txt"))
            else "json"
        )
    with open(path, "w") as handle:
        if fmt == "prometheus":
            handle.write(render_prometheus(metrics))
        else:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return metrics
