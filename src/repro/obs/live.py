"""Always-on runtime telemetry for the serve daemon (`repro.obs.live`).

Three concerns, one object (:class:`LiveTelemetry`):

* **Request-scoped tracing.**  Every RPC runs under a trace id — taken
  from the client's ``trace`` field or minted server-side — and a root
  span tagged with that id on a bounded ring :class:`~repro.obs.trace.Tracer`
  (installed process-wide, so engine/store spans from the same request
  nest inside it by containment).  ``trace_tree()`` replays one
  request's span tree; the optional JSONL stream records every span for
  post-mortems beyond the ring horizon.
* **Streaming aggregation.**  Per-endpoint :class:`~repro.obs.sketch.WindowedRecorder`
  instances feed sliding 1s/10s/60s windows of p50/p95/p99 latency, qps,
  and error rate; gauges add block-cache hit rate, ingest lag, and RSS.
  Everything is mergeable integer sketches — no shutdown-only state.
* **SLO evaluation.**  An optional :class:`~repro.obs.slo.SLOSet`
  computes burn-rate gauges over the 60s window and a ``degraded`` flag
  surfaced in ``status()`` and ``/metrics``.

The module is import-light (stdlib + sibling obs modules); anything that
needs the engine's stats registry defers the import into the function.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

from . import trace as obs_trace
from .sketch import (
    WINDOW_SPANS,
    LogHistogram,
    WindowedRecorder,
    render_prometheus_histograms,
)
from .slo import EVALUATION_SPAN, SLOSet

LIVE_ENV = "REPRO_LIVE"
LIVE_SCHEMA_VERSION = 1

#: Default bound on the span ring (events, not requests).
DEFAULT_RING = 4096

_SEQUENCE = itertools.count(1)
_CONTEXT = threading.local()


def live_enabled() -> bool:
    """False only when ``REPRO_LIVE`` explicitly disables telemetry."""
    raw = os.environ.get(LIVE_ENV, "")
    return raw.strip().lower() not in {"0", "off", "no", "none", "false"}


def mint_trace_id() -> str:
    """A process-unique trace id (pid + monotonic sequence)."""
    return f"t{os.getpid():x}-{next(_SEQUENCE):06x}"


def normalize_trace_id(raw) -> str | None:
    """A client-supplied trace id, sanitized, or None when unusable."""
    if not isinstance(raw, str):
        return None
    cleaned = raw.strip()
    if not cleaned or len(cleaned) > 128:
        return None
    return cleaned


def current_trace_id() -> str | None:
    """The trace id of the request this thread is serving, if any."""
    return getattr(_CONTEXT, "trace_id", None)


@contextmanager
def trace_context(trace_id: str):
    """Bind *trace_id* to this thread for the duration of one request.

    The transport layer (daemon dispatch) establishes the id here; the
    service's per-endpoint root span picks it up via
    :func:`current_trace_id`.
    """
    previous = getattr(_CONTEXT, "trace_id", None)
    _CONTEXT.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _CONTEXT.trace_id = previous


class _RequestSpan:
    """Context manager: trace context + the root 'rpc' span of a request."""

    __slots__ = ("_telemetry", "_endpoint", "trace_id", "_span", "_previous")

    def __init__(self, telemetry: "LiveTelemetry", endpoint: str, trace_id: str):
        self._telemetry = telemetry
        self._endpoint = endpoint
        self.trace_id = trace_id

    def __enter__(self) -> "_RequestSpan":
        self._previous = getattr(_CONTEXT, "trace_id", None)
        _CONTEXT.trace_id = self.trace_id
        self._span = self._telemetry.tracer.span(
            self._endpoint, cat="rpc", trace=self.trace_id
        )
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        _CONTEXT.trace_id = self._previous


class LiveTelemetry:
    """The daemon's live metrics registry + span ring."""

    def __init__(
        self,
        *,
        ring: int = DEFAULT_RING,
        jsonl_path: str | None = None,
        slo: SLOSet | None = None,
    ) -> None:
        self.started = time.monotonic()
        self.slo = slo if slo is not None else SLOSet()
        self.tracer = obs_trace.Tracer(
            jsonl_path, max_events=ring, stream_mode="a"
        )
        self._recorders: dict[str, WindowedRecorder] = {}
        self._lock = threading.Lock()
        self._last_ingest: dict | None = None
        self._degraded_causes: list = []

    def add_degraded_cause(self, cause) -> None:
        """Register an extra zero-arg predicate that forces ``degraded``.

        The serving layer's ingest circuit breaker plugs in here: while
        the breaker is open the daemon serves stale answers, and the
        ``repro_serve_degraded`` gauge must fire even when no SLO burn
        rate does.
        """
        self._degraded_causes.append(cause)

    # -- recording -------------------------------------------------------

    def request_span(self, endpoint: str, trace_id: str | None = None) -> _RequestSpan:
        """The root span bracketing one RPC (mints an id when absent)."""
        return _RequestSpan(self, endpoint, trace_id or mint_trace_id())

    def recorder(self, endpoint: str) -> WindowedRecorder:
        with self._lock:
            recorder = self._recorders.get(endpoint)
            if recorder is None:
                recorder = self._recorders[endpoint] = WindowedRecorder()
            return recorder

    def observe(self, endpoint: str, seconds: float, *, error: bool = False) -> None:
        self.recorder(endpoint).observe(seconds, error=error)

    def note_ingest(self, snapshot_index: int, seconds: float) -> None:
        """Record a completed ingest (feeds the ingest-lag gauge)."""
        self._last_ingest = {
            "snapshot": snapshot_index,
            "seconds": round(seconds, 4),
            "at": time.monotonic(),
        }

    # -- gauges ----------------------------------------------------------

    def gauges(self) -> dict:
        from ..engine.stats import STATS, current_rss_bytes

        hits = STATS.counters.get("serve.block.hit", 0)
        misses = STATS.counters.get("serve.block.miss", 0)
        total = hits + misses
        lag = None
        last = self._last_ingest
        if last is not None:
            lag = round(time.monotonic() - last["at"], 3)
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "rss_bytes": current_rss_bytes() or 0,
            "cache_hit_rate": round(hits / total, 6) if total else None,
            "ingest_lag_s": lag,
            "last_ingest": dict(last, at=None) if last is not None else None,
        }

    # -- readout ---------------------------------------------------------

    def slo_report(self) -> dict | None:
        """The SLO evaluation over the 60s window, or None when unset.

        Evaluated against the busiest endpoint window (max requests):
        objectives describe the user-facing lookup path, and the busiest
        endpoint is the one carrying the traffic the SLO is about.
        """
        if not self.slo:
            return None
        with self._lock:
            recorders = dict(self._recorders)
        busiest = None
        for endpoint, recorder in sorted(recorders.items()):
            stats = recorder.window(EVALUATION_SPAN)
            if busiest is None or stats.requests > busiest[1].requests:
                busiest = (endpoint, stats)
        if busiest is None:
            return {"spec": self.slo.spec(), "endpoint": None, "degraded": False,
                    "objectives": []}
        report = self.slo.evaluate(busiest[1])
        return {"spec": self.slo.spec(), "endpoint": busiest[0], **report}

    def degraded(self) -> bool:
        if any(cause() for cause in self._degraded_causes):
            return True
        report = self.slo_report()
        return bool(report and report["degraded"])

    def snapshot(self) -> dict:
        """The live JSON document (the ``metrics`` RPC's ``live`` section)."""
        with self._lock:
            recorders = dict(self._recorders)
        now = time.monotonic()
        endpoints = {}
        for endpoint in sorted(recorders):
            recorder = recorders[endpoint]
            endpoints[endpoint] = {
                "windows": recorder.windows(now=now),
                "total_requests": recorder.total_requests,
                "total_errors": recorder.total_errors,
                "lifetime_p99_ms": round(1e3 * recorder.lifetime.quantile(0.99), 4),
            }
        return {
            "schema": LIVE_SCHEMA_VERSION,
            "endpoints": endpoints,
            "gauges": self.gauges(),
            "slo": self.slo_report(),
            "trace_ring_events": len(self.tracer.events()),
        }

    def render_prometheus(self) -> str:
        """The live Prometheus exposition behind ``GET /metrics``."""
        with self._lock:
            recorders = dict(self._recorders)
        now = time.monotonic()
        gauges = self.gauges()
        lines = [
            "# HELP repro_serve_uptime_seconds Daemon uptime.",
            "# TYPE repro_serve_uptime_seconds gauge",
            f"repro_serve_uptime_seconds {gauges['uptime_s']:.3f}",
            "# HELP repro_serve_rss_bytes Current resident set size.",
            "# TYPE repro_serve_rss_bytes gauge",
            f"repro_serve_rss_bytes {gauges['rss_bytes']}",
        ]
        if gauges["cache_hit_rate"] is not None:
            lines += [
                "# HELP repro_serve_block_cache_hit_ratio Decoded-block LRU hit rate.",
                "# TYPE repro_serve_block_cache_hit_ratio gauge",
                f"repro_serve_block_cache_hit_ratio {gauges['cache_hit_rate']:.6f}",
            ]
        if gauges["ingest_lag_s"] is not None:
            lines += [
                "# HELP repro_serve_ingest_lag_seconds Time since the last ingest.",
                "# TYPE repro_serve_ingest_lag_seconds gauge",
                f"repro_serve_ingest_lag_seconds {gauges['ingest_lag_s']:.3f}",
            ]
        lines += [
            "# HELP repro_serve_requests_total Requests served, by endpoint.",
            "# TYPE repro_serve_requests_total counter",
        ]
        for endpoint in sorted(recorders):
            lines.append(
                f'repro_serve_requests_total{{endpoint="{endpoint}"}} '
                f"{recorders[endpoint].total_requests}"
            )
        lines += [
            "# HELP repro_serve_errors_total Failed requests, by endpoint.",
            "# TYPE repro_serve_errors_total counter",
        ]
        for endpoint in sorted(recorders):
            lines.append(
                f'repro_serve_errors_total{{endpoint="{endpoint}"}} '
                f"{recorders[endpoint].total_errors}"
            )
        lines += [
            "# HELP repro_serve_latency_seconds Sliding-window latency quantiles.",
            "# TYPE repro_serve_latency_seconds gauge",
            "# HELP repro_serve_qps Sliding-window request rate.",
            "# TYPE repro_serve_qps gauge",
            "# HELP repro_serve_error_rate Sliding-window error rate.",
            "# TYPE repro_serve_error_rate gauge",
        ]
        quantile_lines: list[str] = []
        rate_lines: list[str] = []
        error_lines: list[str] = []
        for endpoint in sorted(recorders):
            recorder = recorders[endpoint]
            for span in WINDOW_SPANS:
                stats = recorder.window(span, now=now)
                for quantile, value in (
                    ("0.5", stats.p50), ("0.95", stats.p95), ("0.99", stats.p99)
                ):
                    quantile_lines.append(
                        f'repro_serve_latency_seconds{{endpoint="{endpoint}",'
                        f'window="{span}s",quantile="{quantile}"}} {value:.9f}'
                    )
                rate_lines.append(
                    f'repro_serve_qps{{endpoint="{endpoint}",window="{span}s"}} '
                    f"{stats.qps:.3f}"
                )
                error_lines.append(
                    f'repro_serve_error_rate{{endpoint="{endpoint}",'
                    f'window="{span}s"}} {stats.error_rate:.6f}'
                )
        lines += quantile_lines + rate_lines + error_lines
        report = self.slo_report()
        if report is not None:
            lines += [
                "# HELP repro_serve_slo_burn_rate Observed/objective per SLO.",
                "# TYPE repro_serve_slo_burn_rate gauge",
            ]
            for entry in report["objectives"]:
                lines.append(
                    f'repro_serve_slo_burn_rate{{objective="{entry["name"]}"}} '
                    f"{entry['burn_rate']:.4f}"
                )
        lines += [
            "# HELP repro_serve_degraded 1 when an SLO burn rate exceeds 1 "
            "or the ingest circuit breaker is open.",
            "# TYPE repro_serve_degraded gauge",
            f"repro_serve_degraded {1 if self.degraded() else 0}",
        ]
        histograms = {
            endpoint: recorders[endpoint].lifetime for endpoint in sorted(recorders)
        }
        exposition = "\n".join(lines) + "\n"
        if histograms:
            exposition += render_prometheus_histograms(
                "repro_serve_latency_histogram_seconds", histograms
            )
        return exposition

    # -- trace replay ----------------------------------------------------

    def trace_tree(self, trace_id: str) -> dict | None:
        """The span tree of one traced request, or None when unknown.

        Roots are the ring's ``rpc`` spans tagged with *trace_id*; child
        spans nest by interval containment on the same (pid, tid) track —
        the same model Chrome tracing uses — so engine/store spans that
        ran inside the request appear under it without explicit parent
        ids on the hot path.
        """
        events = self.tracer.events()
        roots = [
            event for event in events
            if event.get("ph") == "X"
            and event.get("args", {}).get("trace") == trace_id
        ]
        if not roots:
            return None
        spans = []
        for root in roots:
            spans.append(_containment_tree(root, events))
        return {
            "schema": LIVE_SCHEMA_VERSION,
            "trace": trace_id,
            "spans": spans,
        }


def _containment_tree(root: dict, events: list[dict]) -> dict:
    """Nest the events contained in *root*'s interval under it."""
    begin = root["ts"]
    end = root["ts"] + root.get("dur", 0.0)
    inside = [
        event for event in events
        if event is not root
        and event.get("ph") == "X"
        and event.get("pid") == root.get("pid")
        and event.get("tid") == root.get("tid")
        and event["ts"] >= begin
        and event["ts"] + event.get("dur", 0.0) <= end
    ]
    inside.sort(key=lambda event: (event["ts"], -event.get("dur", 0.0)))
    node = _span_node(root)
    stack = [(root, node)]
    for event in inside:
        while stack and not _contains(stack[-1][0], event):
            stack.pop()
        child = _span_node(event)
        (stack[-1][1] if stack else node)["children"].append(child)
        stack.append((event, child))
    return node


def _contains(outer: dict, inner: dict) -> bool:
    return (
        inner["ts"] >= outer["ts"]
        and inner["ts"] + inner.get("dur", 0.0)
        <= outer["ts"] + outer.get("dur", 0.0)
    )


def _span_node(event: dict) -> dict:
    args = {
        key: value
        for key, value in event.get("args", {}).items()
        if key != "trace"
    }
    return {
        "name": event["name"],
        "cat": event.get("cat"),
        "ms": round(event.get("dur", 0.0) / 1e3, 4),
        "args": args,
        "children": [],
    }


def render_trace_tree(tree: dict) -> str:
    """A human-readable indented rendering of :meth:`trace_tree` output."""
    lines = [f"trace {tree['trace']}"]

    def walk(node: dict, depth: int) -> None:
        detail = ""
        if node["args"]:
            pairs = ", ".join(
                f"{key}={value}" for key, value in sorted(node["args"].items())
            )
            detail = f"  [{pairs}]"
        lines.append(
            f"{'  ' * depth}{node['name']} ({node['cat']})"
            f" {node['ms']:.3f}ms{detail}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for span in tree["spans"]:
        walk(span, 1)
    return "\n".join(lines)


# -- atomic snapshot flushing --------------------------------------------


def write_json_atomic(path: str | os.PathLike, document: dict) -> None:
    """Write a JSON document via tmp+rename, durable against SIGKILL.

    A reader never sees a torn file: either the previous snapshot or the
    new one, nothing in between.
    """
    path = os.fspath(path)
    # pid alone is not unique enough: two threads of one process flushing
    # the same path would race each other's rename.
    tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
