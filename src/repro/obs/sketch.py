"""Mergeable streaming quantile sketches for live telemetry.

:class:`LogHistogram` is a fixed-bucket log-spaced histogram: bucket ``i``
covers ``(base * g**(i-1), base * g**i]`` with growth factor
``g = 2**(1/buckets_per_octave)``, so a quantile readout (the upper bound
of the bucket holding the target rank) over-reports the true quantile by
at most one bucket width — a bounded, *relative* error that holds after
any number of merges.

Design constraints, in priority order:

* **Deterministic merge.**  A sketch is integer bucket counts plus an
  integer nanosecond total; merging is element-wise addition, which is
  exactly associative and commutative.  Per-worker sketches merged in
  any shard order therefore render byte-identical Prometheus output —
  no float accumulation order can leak into the exposition.
* **Fixed memory.**  128 buckets at 4/octave span 1 µs to ~64 min; one
  sketch is a few hundred bytes regardless of observation count.
* **Stdlib-only.**  Like :mod:`repro.obs.trace`, the lowest layers must
  be able to import this without cycles.

:class:`WindowedRecorder` bins observations into per-second slots (each
slot one LogHistogram plus request/error counters) and answers sliding
1s/10s/60s window queries by merging the covered slots — the daemon's
live p50/p95/p99, qps, and error-rate views.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

SKETCH_SCHEMA_VERSION = 1

#: Smallest resolvable latency: anything at or below lands in bucket 0.
DEFAULT_BASE = 1e-6  # 1 µs
#: Buckets per factor-of-two; growth = 2**(1/4) ≈ 1.19 → ≤19% quantile error.
DEFAULT_PER_OCTAVE = 4
DEFAULT_BUCKETS = 128  # covers base * 2**(127/4) ≈ 3900 s


class SketchMismatch(ValueError):
    """Two sketches with different bucket layouts cannot merge."""


class LogHistogram:
    """Fixed log-bucket histogram with deterministic merge and quantiles."""

    __slots__ = ("base", "per_octave", "buckets", "counts", "count", "total_ns")

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        per_octave: int = DEFAULT_PER_OCTAVE,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        self.base = base
        self.per_octave = per_octave
        self.buckets = buckets
        self.counts = [0] * buckets
        self.count = 0
        # Nanoseconds, as an integer: merges stay exactly associative.
        self.total_ns = 0

    # -- recording -------------------------------------------------------

    def bucket_index(self, seconds: float) -> int:
        if seconds <= self.base:
            return 0
        index = math.ceil(math.log2(seconds / self.base) * self.per_octave)
        return min(index, self.buckets - 1)

    def observe(self, seconds: float) -> None:
        self.counts[self.bucket_index(seconds)] += 1
        self.count += 1
        self.total_ns += round(seconds * 1e9)

    # -- readout ---------------------------------------------------------

    def upper_bound(self, index: int) -> float:
        """The inclusive upper latency bound of bucket *index* (seconds)."""
        return self.base * 2 ** (index / self.per_octave)

    def quantile(self, fraction: float) -> float:
        """Upper-bound latency at *fraction* of observations (0 if empty).

        The true quantile ``q`` satisfies ``q <= quantile(f) <= q * g``
        (with ``g`` the bucket growth factor) whenever ``q > base``; at
        or below ``base`` the readout is exactly ``base``.
        """
        if not self.count:
            return 0.0
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target:
                return self.upper_bound(index)
        return self.upper_bound(self.buckets - 1)  # pragma: no cover

    def mean(self) -> float:
        return (self.total_ns / 1e9) / self.count if self.count else 0.0

    # -- merge / transport ----------------------------------------------

    def _check_layout(self, other: "LogHistogram") -> None:
        if (self.base, self.per_octave, self.buckets) != (
            other.base, other.per_octave, other.buckets
        ):
            raise SketchMismatch(
                f"cannot merge layouts {(self.base, self.per_octave, self.buckets)}"
                f" and {(other.base, other.per_octave, other.buckets)}"
            )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold *other* into this sketch in place (and return self)."""
        self._check_layout(other)
        for index, value in enumerate(other.counts):
            if value:
                self.counts[index] += value
        self.count += other.count
        self.total_ns += other.total_ns
        return self

    def merged(self, other: "LogHistogram") -> "LogHistogram":
        """A new sketch holding ``self + other`` (neither input changes)."""
        result = self.copy()
        return result.merge(other)

    def copy(self) -> "LogHistogram":
        result = LogHistogram(self.base, self.per_octave, self.buckets)
        result.counts = list(self.counts)
        result.count = self.count
        result.total_ns = self.total_ns
        return result

    def as_dict(self) -> dict:
        """A JSON-safe transport form (sparse: only non-zero buckets)."""
        return {
            "schema": SKETCH_SCHEMA_VERSION,
            "base": self.base,
            "per_octave": self.per_octave,
            "buckets": self.buckets,
            "counts": {
                str(index): value
                for index, value in enumerate(self.counts)
                if value
            },
            "count": self.count,
            "total_ns": self.total_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LogHistogram":
        sketch = cls(
            payload.get("base", DEFAULT_BASE),
            payload.get("per_octave", DEFAULT_PER_OCTAVE),
            payload.get("buckets", DEFAULT_BUCKETS),
        )
        for key, value in payload.get("counts", {}).items():
            sketch.counts[int(key)] = int(value)
        sketch.count = int(payload.get("count", 0))
        sketch.total_ns = int(payload.get("total_ns", 0))
        return sketch


def render_prometheus_histograms(
    name: str, labelled: dict[str, LogHistogram], label: str = "endpoint"
) -> str:
    """Native Prometheus histogram exposition for a family of sketches.

    Label keys are sorted and bucket bounds are formatted from the exact
    integer bucket index, so identical merged counts render identical
    bytes regardless of the order the inputs were merged in.
    """
    lines = [
        f"# HELP {name} Latency log-histogram (cumulative since start).",
        f"# TYPE {name} histogram",
    ]
    for key in sorted(labelled):
        sketch = labelled[key]
        cumulative = 0
        for index, value in enumerate(sketch.counts):
            if not value:
                continue
            cumulative += value
            bound = f"{sketch.upper_bound(index):.9g}"
            lines.append(
                f'{name}_bucket{{{label}="{key}",le="{bound}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{{label}="{key}",le="+Inf"}} {sketch.count}')
        lines.append(f'{name}_sum{{{label}="{key}"}} {sketch.total_ns / 1e9:.9f}')
        lines.append(f'{name}_count{{{label}="{key}"}} {sketch.count}')
    return "\n".join(lines) + "\n"


# -- sliding windows -----------------------------------------------------

#: The daemon's standard window spans, in seconds.
WINDOW_SPANS = (1, 10, 60)


@dataclass
class WindowStats:
    """One endpoint's view over one sliding window."""

    span: int
    requests: int
    errors: int
    p50: float
    p95: float
    p99: float

    @property
    def qps(self) -> float:
        return self.requests / self.span

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "span_s": self.span,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(1e3 * self.p50, 4),
            "p95_ms": round(1e3 * self.p95, 4),
            "p99_ms": round(1e3 * self.p99, 4),
        }


class _Slot:
    __slots__ = ("second", "hist", "requests", "errors")

    def __init__(self, second: int) -> None:
        self.second = second
        self.hist = LogHistogram()
        self.requests = 0
        self.errors = 0


class WindowedRecorder:
    """Per-second slots answering sliding-window latency/qps/error queries.

    Also keeps one cumulative :class:`LogHistogram` (since construction)
    for the Prometheus histogram exposition and shutdown export.
    """

    def __init__(self, max_span: int = max(WINDOW_SPANS)) -> None:
        self.max_span = max_span
        self._slots: dict[int, _Slot] = {}
        self.lifetime = LogHistogram()
        self.total_requests = 0
        self.total_errors = 0
        self._lock = threading.Lock()

    def observe(
        self, seconds: float, *, error: bool = False, now: float | None = None
    ) -> None:
        second = int(time.monotonic() if now is None else now)
        with self._lock:
            slot = self._slots.get(second)
            if slot is None:
                slot = self._slots[second] = _Slot(second)
                self._prune(second)
            slot.hist.observe(seconds)
            slot.requests += 1
            self.lifetime.observe(seconds)
            self.total_requests += 1
            if error:
                slot.errors += 1
                self.total_errors += 1

    def _prune(self, now_second: int) -> None:
        horizon = now_second - self.max_span - 1
        for second in [s for s in self._slots if s < horizon]:
            del self._slots[second]

    def window(self, span: int, now: float | None = None) -> WindowStats:
        """Merged stats over the last *span* seconds (current second included)."""
        second = int(time.monotonic() if now is None else now)
        merged = LogHistogram()
        requests = errors = 0
        with self._lock:
            for offset in range(span):
                slot = self._slots.get(second - offset)
                if slot is None:
                    continue
                merged.merge(slot.hist)
                requests += slot.requests
                errors += slot.errors
        return WindowStats(
            span=span,
            requests=requests,
            errors=errors,
            p50=merged.quantile(0.50),
            p95=merged.quantile(0.95),
            p99=merged.quantile(0.99),
        )

    def windows(self, spans=WINDOW_SPANS, now: float | None = None) -> dict:
        """``{"1s": {...}, "10s": {...}, ...}`` summary across *spans*."""
        stamp = time.monotonic() if now is None else now
        return {f"{span}s": self.window(span, stamp).as_dict() for span in spans}
