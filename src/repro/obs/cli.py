"""``repro obs ...`` — operator tooling over observability artifacts.

Two subcommands:

* ``repro obs report`` — a human-readable markdown summary built from
  the artifacts a run (or a daemon flush) leaves behind: the metrics
  JSON document (``--metrics``), and optionally a span stream
  (``--trace-jsonl``).
* ``repro obs timeline`` — the cross-run perf timeline: fold bench
  documents (bench_sweep / serve_sweep / chaos_sweep ``--json`` output)
  into an append-only history file and compare the latest run of each
  bench against the rolling median of its prior runs.  ``--check``
  turns regressions into a non-zero exit for CI.

Exit codes: 0 success, 1 regression detected (``timeline --check``),
2 user/input errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import timeline as obs_timeline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Observability reports and the cross-run perf timeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="markdown summary of a run's telemetry artifacts"
    )
    report.add_argument(
        "--metrics", metavar="PATH", required=True,
        help="metrics JSON document (from --metrics-out)",
    )
    report.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="span JSONL stream (from --trace / --trace-jsonl)",
    )
    report.add_argument(
        "--top-spans", type=int, default=10, metavar="N",
        help="slowest spans to list (default 10)",
    )

    tl = sub.add_parser(
        "timeline", help="fold bench documents into the perf history and diff"
    )
    tl.add_argument(
        "documents", nargs="*", metavar="BENCH_JSON",
        help="bench documents to record (sweep --json output files)",
    )
    tl.add_argument(
        "--history", metavar="PATH", default=obs_timeline.DEFAULT_HISTORY,
        help=f"history file (default {obs_timeline.DEFAULT_HISTORY})",
    )
    tl.add_argument(
        "--add", action="store_true",
        help="append the documents to the history before comparing",
    )
    tl.add_argument(
        "--check", action="store_true",
        help="exit 1 when any metric regressed beyond the threshold",
    )
    tl.add_argument(
        "--threshold", type=float, default=obs_timeline.DEFAULT_THRESHOLD,
        metavar="RATIO",
        help="worse-direction ratio vs the rolling median that counts as "
             f"a regression (default {obs_timeline.DEFAULT_THRESHOLD})",
    )
    tl.add_argument(
        "--window", type=int, default=obs_timeline.DEFAULT_WINDOW, metavar="N",
        help="prior runs in the rolling median "
             f"(default {obs_timeline.DEFAULT_WINDOW})",
    )
    tl.add_argument(
        "--run", metavar="ID", default=None,
        help="run id to record with --add (default: $GITHUB_RUN_ID or a "
             "local timestamp)",
    )
    tl.add_argument(
        "--json", action="store_true",
        help="print the delta rows as JSON instead of a markdown table",
    )
    return parser


# -- report --------------------------------------------------------------


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_report(metrics: dict, spans: list[dict], top_spans: int) -> str:
    """The markdown report over one metrics document (+ optional spans)."""
    lines = ["# repro observability report", ""]
    serve = metrics.get("serve")
    counters = metrics.get("counters", {})
    if counters:
        lines += ["## Engine counters (top 12)", ""]
        ranked = sorted(counters.items(), key=lambda item: -item[1])[:12]
        lines += ["| counter | value |", "|---|---:|"]
        lines += [f"| {name} | {value} |" for name, value in ranked]
        lines.append("")
    if serve:
        lines += ["## Serve endpoints (lifetime)", ""]
        lines += [
            "| endpoint | requests | mean | p50 | p99 | max |",
            "|---|---:|---:|---:|---:|---:|",
        ]
        for endpoint, snap in sorted(serve.get("endpoints", {}).items()):
            lines.append(
                f"| {endpoint} | {snap['count']} | {snap['mean_ms']}ms "
                f"| {snap['p50_ms']}ms | {snap['p99_ms']}ms | {snap['max_ms']}ms |"
            )
        cache = serve.get("block_cache", {})
        lines += [
            "",
            f"Block cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(hit rate {_fmt(cache.get('hit_rate'))}), "
            f"{cache.get('entries', 0)}/{cache.get('capacity', 0)} blocks held.",
        ]
        live = serve.get("live")
        if live:
            gauges = live.get("gauges", {})
            lines += [
                "",
                "## Live telemetry",
                "",
                f"- uptime: {_fmt(gauges.get('uptime_s'))}s",
                f"- RSS: {gauges.get('rss_bytes', 0) / 1e6:.1f} MB",
                f"- cache hit rate: {_fmt(gauges.get('cache_hit_rate'))}",
                f"- ingest lag: {_fmt(gauges.get('ingest_lag_s'))}s",
                f"- degraded: {serve.get('degraded', False)}",
            ]
            slo = live.get("slo")
            if slo and slo.get("objectives"):
                lines += ["", "### SLO burn rates", ""]
                lines += ["| objective | observed | target | burn | ok |",
                          "|---|---:|---:|---:|---|"]
                for entry in slo["objectives"]:
                    lines.append(
                        f"| {entry['name']} | {_fmt(entry['observed'])} "
                        f"| {_fmt(entry['objective'])} "
                        f"| {entry['burn_rate']:.2f}x | {entry['ok']} |"
                    )
            lines += ["", "### Sliding windows (60s)", ""]
            lines += [
                "| endpoint | req | qps | p50 | p95 | p99 | err |",
                "|---|---:|---:|---:|---:|---:|---:|",
            ]
            for endpoint, snap in sorted(live.get("endpoints", {}).items()):
                window = snap.get("windows", {}).get("60s")
                if not window:
                    continue
                lines.append(
                    f"| {endpoint} | {window['requests']} | {window['qps']} "
                    f"| {window['p50_ms']}ms | {window['p95_ms']}ms "
                    f"| {window['p99_ms']}ms | {window['error_rate']} |"
                )
    if spans:
        durable = [event for event in spans if event.get("ph") == "X"]
        by_cat: dict[str, int] = {}
        for event in durable:
            by_cat[event.get("cat", "?")] = by_cat.get(event.get("cat", "?"), 0) + 1
        lines += ["", "## Spans", ""]
        lines.append(
            f"{len(durable)} spans across {len(by_cat)} categories: "
            + ", ".join(f"{cat}={count}" for cat, count in sorted(by_cat.items()))
        )
        slowest = sorted(
            durable, key=lambda event: -event.get("dur", 0.0)
        )[:top_spans]
        lines += ["", "| span | cat | ms |", "|---|---|---:|"]
        for event in slowest:
            lines.append(
                f"| {event['name']} | {event.get('cat', '?')} "
                f"| {event.get('dur', 0.0) / 1e3:.3f} |"
            )
    return "\n".join(lines)


def run_report(args: argparse.Namespace) -> int:
    try:
        with open(args.metrics) as handle:
            metrics = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"obs report: cannot read {args.metrics}: {error}", file=sys.stderr)
        return 2
    spans: list[dict] = []
    if args.trace_jsonl:
        try:
            with open(args.trace_jsonl) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        spans.append(json.loads(line))
        except (OSError, ValueError) as error:
            print(
                f"obs report: cannot read {args.trace_jsonl}: {error}",
                file=sys.stderr,
            )
            return 2
    print(render_report(metrics, spans, args.top_spans))
    return 0


# -- timeline ------------------------------------------------------------


def run_timeline(args: argparse.Namespace) -> int:
    try:
        entries = obs_timeline.read_history(args.history)
        for path in args.documents:
            try:
                with open(path) as handle:
                    document = json.load(handle)
            except (OSError, ValueError) as error:
                print(f"obs timeline: cannot read {path}: {error}", file=sys.stderr)
                return 2
            entry = obs_timeline.history_entry(
                document, source=path, run=args.run
            )
            entries.append(entry)
            if args.add:
                obs_timeline.append_history(args.history, entry)
    except obs_timeline.TimelineError as error:
        print(f"obs timeline: {error}", file=sys.stderr)
        return 2
    if not entries:
        print(
            f"obs timeline: no history at {args.history} and no documents "
            "given; record runs with --add first",
            file=sys.stderr,
        )
        return 2
    rows = obs_timeline.compare(
        entries, threshold=args.threshold, window=args.window
    )
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(obs_timeline.render_table(rows))
    bad = obs_timeline.regressions(rows)
    if bad:
        for row in bad:
            print(
                f"REGRESSION {row['bench']}:{row['metric']} = {row['value']:g} "
                f"vs median {row['median']:g} ({row['ratio']:.2f}x, "
                f"threshold {args.threshold:g}x)",
                file=sys.stderr,
            )
        if args.check:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else sys.argv[1:]
    )
    if args.command == "report":
        return run_report(args)
    return run_timeline(args)


if __name__ == "__main__":
    sys.exit(main())
