"""Per-run manifest: everything needed to audit or reproduce one run.

A manifest pins the inputs (world config, seed, corpora, snapshot dates),
the execution environment (engine options, cache state, schema versions,
interpreter/platform), and the outcome (experiments run, wall time, the
hottest phase timers) of one CLI invocation.  Written alongside the
experiment output via ``--manifest PATH``, it is the provenance anchor
longitudinal studies keep next to each result set.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import time

# v2: adds the "memory" section (peak RSS and streamed-batch counters)
# so a manifest records how the out-of-core measure path behaved.
MANIFEST_SCHEMA_VERSION = 2


def _snapshot_dates():
    from ..world.population import SNAPSHOT_DATES

    return SNAPSHOT_DATES


def _store_state(store) -> dict | None:
    if store is None:
        return None
    return {
        "root": str(store.root),
        "entries": store.entry_count(),
        "total_bytes": store.total_bytes(),
        "max_bytes": store.max_bytes,
    }


def build_manifest(
    *,
    config,
    engine=None,
    store=None,
    experiments: list[str] | tuple[str, ...] = (),
    elapsed_seconds: float | None = None,
    stats=None,
    argv: list[str] | None = None,
    faults=None,
    resilience: dict | None = None,
    serve: dict | None = None,
) -> dict:
    """Assemble the manifest document for one run.

    *faults* is the :class:`~repro.faults.FaultPlan` of the run (or None).
    It is recorded only when given, so fault-free manifests stay
    byte-identical to builds without fault injection.

    *resilience* is the run-lineage section of a resilient run (run id,
    run dir, status, resume count — see ``RunContext.describe``); plain
    runs omit it, so their manifests are unchanged.

    *serve* is the query daemon's endpoint/cache section
    (``InferenceService.metrics()``); non-daemon runs omit it.
    """
    from ..store.artifacts import SCHEMA_VERSION as STORE_SCHEMA
    from .metrics import METRICS_SCHEMA_VERSION, memory_summary
    from .provenance import PROVENANCE_SCHEMA_VERSION
    from .trace import TRACE_SCHEMA_VERSION

    if stats is None:
        from ..engine.stats import get_stats

        stats = get_stats()
    timers = sorted(stats.timers.items(), key=lambda item: (-item[1], item[0]))
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "world": {
            **dataclasses.asdict(config),
            "snapshot_dates": [date.isoformat() for date in _snapshot_dates()],
        },
        "engine": dataclasses.asdict(engine) if engine is not None else None,
        "cache": _store_state(store),
        "schemas": {
            "manifest": MANIFEST_SCHEMA_VERSION,
            "store": STORE_SCHEMA,
            "trace": TRACE_SCHEMA_VERSION,
            "metrics": METRICS_SCHEMA_VERSION,
            "provenance": PROVENANCE_SCHEMA_VERSION,
        },
        "experiments": list(experiments),
        "timing": {
            "elapsed_seconds": elapsed_seconds,
            "timers": {
                name: {
                    "seconds": seconds,
                    "calls": stats.timer_calls.get(name, 0),
                }
                for name, seconds in timers
            },
        },
        "runtime": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "pid": os.getpid(),
        },
        "memory": memory_summary(stats),
    }
    if faults is not None:
        manifest["faults"] = faults.describe()
    if resilience is not None:
        manifest["resilience"] = resilience
    if serve is not None:
        manifest["serve"] = serve
    return manifest


def write_manifest(path: str | os.PathLike, manifest: dict) -> None:
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
