"""Service-level objectives for the serve daemon.

An SLO spec is a comma-separated list of objectives::

    --slo p99=5ms,err=0.1%
    --slo p50=500us,p95=2ms,err=1%

Latency objectives (``p50``/``p95``/``p99``) bound a sliding-window
quantile; ``err`` bounds the window error rate.  Each objective yields a
**burn rate** — observed value divided by the objective — so 1.0 means
"exactly at budget" and the daemon's ``status()`` flips ``degraded``
when any burn rate exceeds 1 over the evaluation window.  Burn rates are
exported as Prometheus gauges for alerting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Window the daemon evaluates SLOs over (seconds).
EVALUATION_SPAN = 60

_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}

_DURATION = re.compile(r"^(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>us|ms|s)?$")
_UNIT_SECONDS = {"us": 1e-6, "ms": 1e-3, "s": 1.0, None: 1e-3}


class SLOError(ValueError):
    """An unparseable ``--slo`` spec."""


def _parse_duration(raw: str, objective: str) -> float:
    match = _DURATION.match(raw.strip())
    if match is None:
        raise SLOError(
            f"{objective}: expected a duration like '5ms'/'500us'/'1s', got {raw!r}"
        )
    return float(match.group("value")) * _UNIT_SECONDS[match.group("unit")]


@dataclass(frozen=True)
class Objective:
    """One objective: a named metric bounded by a threshold."""

    name: str            # "p99" or "err"
    threshold: float     # seconds for latency, a fraction for err

    def observed(self, stats) -> float:
        """The metric's current value from one :class:`WindowStats`."""
        if self.name == "err":
            return stats.error_rate
        return {"p50": stats.p50, "p95": stats.p95, "p99": stats.p99}[self.name]

    def evaluate(self, stats) -> dict:
        """``{name, objective, observed, burn_rate, ok}`` for one window."""
        observed = self.observed(stats)
        burn = observed / self.threshold if self.threshold else float("inf")
        return {
            "name": self.name,
            "objective": self.threshold,
            "observed": round(observed, 9),
            "burn_rate": round(burn, 4),
            "ok": burn <= 1.0,
        }

    def spec(self) -> str:
        if self.name == "err":
            return f"err={100 * self.threshold:g}%"
        return f"{self.name}={1e3 * self.threshold:g}ms"


@dataclass(frozen=True)
class SLOSet:
    """The parsed ``--slo`` spec: zero or more objectives."""

    objectives: tuple[Objective, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.objectives)

    def evaluate(self, stats) -> dict:
        """Evaluate every objective against one window's stats.

        Returns ``{"window_s", "objectives": [...], "degraded"}`` where
        ``degraded`` is True when any burn rate exceeds 1.  An empty
        window (no requests) never degrades: latency quantiles read 0
        and the error rate is 0, so a freshly idle daemon stays healthy.
        """
        results = [objective.evaluate(stats) for objective in self.objectives]
        return {
            "window_s": stats.span,
            "objectives": results,
            "degraded": any(not entry["ok"] for entry in results),
        }

    def spec(self) -> str:
        return ",".join(objective.spec() for objective in self.objectives)


def parse_slo(raw: str | None) -> SLOSet:
    """Parse ``p99=5ms,err=0.1%`` into an :class:`SLOSet`.

    Empty/None specs parse to an empty set (SLO tracking off).  Unknown
    objective names and malformed values raise :class:`SLOError`.
    """
    if raw is None or not raw.strip():
        return SLOSet()
    objectives: list[Objective] = []
    seen: set[str] = set()
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, separator, value = part.partition("=")
        name = name.strip().lower()
        if not separator:
            raise SLOError(f"objective {part!r} is missing '=<threshold>'")
        if name in seen:
            raise SLOError(f"objective {name!r} given twice")
        seen.add(name)
        if name in _QUANTILES:
            threshold = _parse_duration(value, name)
            if threshold <= 0:
                raise SLOError(f"{name}: threshold must be positive")
            objectives.append(Objective(name, threshold))
        elif name == "err":
            value = value.strip()
            try:
                if value.endswith("%"):
                    rate = float(value[:-1]) / 100.0
                else:
                    rate = float(value)
            except ValueError:
                raise SLOError(
                    f"err: expected a rate like '0.1%' or '0.001', got {value!r}"
                ) from None
            if not 0 < rate <= 1:
                raise SLOError(f"err: rate {rate!r} outside (0, 1]")
            objectives.append(Objective("err", rate))
        else:
            known = ", ".join(sorted([*_QUANTILES, "err"]))
            raise SLOError(f"unknown objective {name!r}; expected one of: {known}")
    return SLOSet(tuple(objectives))
