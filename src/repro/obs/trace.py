"""Hierarchical span tracing for the measure→infer sweep.

One process-wide :class:`Tracer` records *spans* — named, nested wall-clock
intervals (run → experiment → corpus × snapshot → gather / pipeline-step →
shard) — and exports them as Chrome-trace/Perfetto-compatible JSON plus a
line-per-event JSONL stream.  Design constraints, in order:

* **Near-zero overhead when disabled.**  The module-level :func:`span`
  checks one global and returns a shared no-op context manager; no
  timestamps are taken, nothing is allocated beyond the call itself.
* **Thread-safe.**  Finished spans are appended under a lock; nesting is
  implicit in the Chrome trace model (duration events on the same
  process/thread track nest by containment), so no explicit parent ids
  are tracked on the hot path.
* **Fork-safe.**  A forked worker inherits the tracer (same epoch, same
  buffer copy).  Workers bracket their work with :func:`mark` /
  :func:`drain_new` and ship the new events back with their results; the
  parent folds them in with :func:`adopt`.  Only the process that enabled
  the tracer ever writes to the JSONL stream, so a worker can never
  interleave half a line into the parent's file.

This module is deliberately stdlib-only (no imports from ``repro``) so
the lowest layers — engine, store, measurement — can trace freely without
import cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import nullcontext

TRACE_ENV = "REPRO_TRACE"
TRACE_SCHEMA_VERSION = 1

# All span timestamps are offsets from one epoch, shared with forked
# workers (perf_counter is CLOCK_MONOTONIC-based on Linux, so child and
# parent readings are directly comparable).
_EPOCH = time.perf_counter()

_NULL_SPAN = nullcontext()


class _Span:
    """An open span; finishing it appends one Chrome duration event."""

    __slots__ = ("_tracer", "name", "cat", "args", "_started")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        ended = time.perf_counter()
        self._tracer._record(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": round((self._started - _EPOCH) * 1e6, 1),
                "dur": round((ended - self._started) * 1e6, 1),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self.args,
            }
        )


class Tracer:
    """Collects span events; exports Chrome JSON and a JSONL stream.

    With ``max_events`` set the buffer is a bounded ring: the oldest
    events fall off once the cap is reached, so a long-running daemon
    can trace every request forever in fixed memory (the JSONL stream,
    when enabled, still sees every event).  ``stream_mode="a"`` appends
    to an existing stream instead of truncating it.
    """

    def __init__(
        self,
        stream_path: str | os.PathLike | None = None,
        *,
        max_events: int | None = None,
        stream_mode: str = "w",
    ):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._max_events = max_events if max_events and max_events > 0 else None
        self._owner_pid = os.getpid()
        self._stream = None
        if stream_path is not None:
            self._stream = open(stream_path, stream_mode, buffering=1)

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str = "run", **args) -> _Span:
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "run", **args) -> None:
        """A zero-duration marker event."""
        self._record(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": round((time.perf_counter() - _EPOCH) * 1e6, 1),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
        )

    def _record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
            if self._max_events is not None and len(self._events) > self._max_events:
                # Drop the oldest half in one slice instead of popping per
                # event: amortized O(1) per record, and the ring keeps at
                # least max_events/2 of history at all times.
                del self._events[: len(self._events) - self._max_events // 2]
            self._emit(event)

    def _emit(self, event: dict) -> None:
        # Stream writes are owner-only: forked workers inherit the handle
        # but ship their events back instead of writing competing lines.
        if self._stream is not None and os.getpid() == self._owner_pid:
            try:
                self._stream.write(json.dumps(event, sort_keys=True) + "\n")
            except (OSError, ValueError):
                self._stream = None  # a closed/failed stream stops streaming

    # -- fork-worker shipping --------------------------------------------

    def mark(self) -> int:
        """The current event count (a worker's pre-work bookmark)."""
        with self._lock:
            return len(self._events)

    def drain_new(self, mark: int) -> list[dict]:
        """Events recorded since *mark* (what a worker ships back)."""
        with self._lock:
            return self._events[mark:]

    def adopt(self, events: list[dict]) -> None:
        """Fold worker-shipped events into this tracer (and its stream)."""
        with self._lock:
            for event in events:
                self._events.append(event)
                self._emit(event)
            if self._max_events is not None and len(self._events) > self._max_events:
                del self._events[: len(self._events) - self._max_events // 2]

    # -- export ----------------------------------------------------------

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def chrome_document(self) -> dict:
        """The full Chrome-trace/Perfetto JSON object model."""
        events = self.events()
        named = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {
                    "name": "repro" if pid == self._owner_pid else "repro worker"
                },
            }
            for pid in sorted({event["pid"] for event in events})
        ]
        return {
            "traceEvents": named + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA_VERSION,
                "tool": "repro.obs.trace",
            },
        }

    def write_chrome(self, path: str | os.PathLike) -> None:
        """Write the buffered spans as a ``chrome://tracing`` JSON file."""
        with open(path, "w") as handle:
            json.dump(self.chrome_document(), handle, sort_keys=True)
            handle.write("\n")

    def close(self) -> None:
        if self._stream is not None and os.getpid() == self._owner_pid:
            try:
                self._stream.close()
            except OSError:
                pass
        self._stream = None


# -- the process-wide tracer ---------------------------------------------

_TRACER: Tracer | None = None


def enable(stream_path: str | os.PathLike | None = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _TRACER
    _TRACER = Tracer(stream_path)
    return _TRACER


def install(tracer: Tracer) -> Tracer:
    """Install an already-constructed tracer (e.g. a daemon's ring tracer)."""
    global _TRACER
    _TRACER = tracer
    return tracer


def disable() -> None:
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None


def active() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _TRACER


def from_env() -> Tracer | None:
    """Enable tracing when ``REPRO_TRACE`` names an output path."""
    raw = os.environ.get(TRACE_ENV)
    if not raw or raw.strip().lower() in {"0", "off", "none", "no"}:
        return None
    return enable(stream_path=jsonl_path(raw))


def jsonl_path(trace_path: str | os.PathLike) -> str:
    """The JSONL event-stream path paired with a Chrome-trace path."""
    path = os.fspath(trace_path)
    if path.endswith(".jsonl"):
        return path
    return path + "l" if path.endswith(".json") else path + ".jsonl"


def span(name: str, cat: str = "run", **args):
    """A span on the process tracer, or a shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "run", **args) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, cat, **args)


def mark() -> int:
    """Worker-side bookmark (0 when tracing is disabled)."""
    tracer = _TRACER
    return tracer.mark() if tracer is not None else 0


def drain_new(since: int) -> list[dict]:
    """Worker-side drain of events recorded after *since*."""
    tracer = _TRACER
    return tracer.drain_new(since) if tracer is not None else []


def adopt(events: list[dict]) -> None:
    """Parent-side fold of worker-shipped events."""
    tracer = _TRACER
    if tracer is not None and events:
        tracer.adopt(events)
