"""Lightweight perf instrumentation for the measurement/inference engine.

One process-wide :class:`EngineStats` instance accumulates named counters
(cache hits/misses), cumulative timers, and per-shard timings.  Everything
is plain stdlib and deliberately cheap: a counter bump is one dict update,
so the facility can sit on hot paths (scan cache, identity cache) without
distorting what it measures.

Counters follow a ``<area>.<cache>.hit`` / ``<area>.<cache>.miss`` naming
convention so hit rates can be derived generically; ``render()`` produces
the table behind ``python -m repro <exp> --perf``.
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters, cumulative timers, and shard timings for one process."""

    counters: Counter = field(default_factory=Counter)
    timers: dict[str, float] = field(default_factory=dict)
    timer_calls: Counter = field(default_factory=Counter)
    shard_timings: dict[str, list[float]] = field(default_factory=dict)
    merged_tokens: set = field(default_factory=set)

    # -- counters --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def hit_rate(self, prefix: str) -> float | None:
        """Hit rate of a ``<prefix>.hit``/``<prefix>.miss`` counter pair."""
        hits = self.counters.get(f"{prefix}.hit", 0)
        misses = self.counters.get(f"{prefix}.miss", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def cache_prefixes(self) -> list[str]:
        """All counter prefixes that look like hit/miss cache pairs."""
        prefixes = {
            name.rsplit(".", 1)[0]
            for name in self.counters
            if name.endswith(".hit") or name.endswith(".miss")
        }
        return sorted(prefixes)

    # -- timers ----------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds
        self.timer_calls[name] += 1

    @contextmanager
    def timer(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def record_shards(self, label: str, timings: list[float]) -> None:
        self.shard_timings.setdefault(label, []).extend(timings)

    # -- lifecycle / reporting ------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.timer_calls.clear()
        self.shard_timings.clear()
        self.merged_tokens.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy (for deltas between phases of a sweep)."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "timer_calls": dict(self.timer_calls),
        }

    def delta_since(self, since: dict) -> dict:
        """What changed since a prior :meth:`snapshot` (only the changes).

        This is what a forked pool worker ships back with its shard
        result: the counters and timers it accumulated after the fork,
        without the parent's pre-fork totals it inherited.
        """
        before_counters = since.get("counters", {})
        before_timers = since.get("timers", {})
        before_calls = since.get("timer_calls", {})
        counters = {
            name: value - before_counters.get(name, 0)
            for name, value in self.counters.items()
            if value != before_counters.get(name, 0)
        }
        timers = {
            name: value - before_timers.get(name, 0.0)
            for name, value in self.timers.items()
            if value != before_timers.get(name, 0.0)
        }
        timer_calls = {
            name: value - before_calls.get(name, 0)
            for name, value in self.timer_calls.items()
            if value != before_calls.get(name, 0)
        }
        return {"counters": counters, "timers": timers, "timer_calls": timer_calls}

    def merge(self, delta: dict) -> None:
        """Fold a worker's :meth:`delta_since` payload into this instance."""
        for name, value in delta.get("counters", {}).items():
            self.counters[name] += value
        for name, value in delta.get("timers", {}).items():
            self.timers[name] = self.timers.get(name, 0.0) + value
        for name, value in delta.get("timer_calls", {}).items():
            self.timer_calls[name] += value
        for label, timings in delta.get("shard_timings", {}).items():
            self.shard_timings.setdefault(label, []).extend(timings)

    def merge_once(self, token: str, delta: dict) -> bool:
        """Fold a worker delta in at most once per *token*.

        A supervised shard can legitimately complete twice — a worker that
        was presumed hung (or that crashed *after* shipping its result)
        finishes right as its replacement does.  The supervisor merges
        each completion under the shard-assignment's unique token, so the
        second arrival is dropped and ``--perf`` counters match a run
        without any restarts.  Returns True when the delta was merged.
        """
        if token in self.merged_tokens:
            return False
        self.merged_tokens.add(token)
        self.merge(delta)
        return True

    def delta_hit_rate(self, prefix: str, since: dict) -> float | None:
        """Hit rate of a cache pair since a prior :meth:`snapshot`."""
        before = since.get("counters", {})
        hits = self.counters.get(f"{prefix}.hit", 0) - before.get(f"{prefix}.hit", 0)
        misses = self.counters.get(f"{prefix}.miss", 0) - before.get(
            f"{prefix}.miss", 0
        )
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def render(self) -> str:
        """A human-readable perf report (caches, timers, shards)."""
        lines = ["engine perf stats", "-----------------"]
        prefixes = self.cache_prefixes()
        if prefixes:
            lines.append("caches:")
            for prefix in prefixes:
                hits = self.counters.get(f"{prefix}.hit", 0)
                misses = self.counters.get(f"{prefix}.miss", 0)
                rate = self.hit_rate(prefix)
                shown = f"{100 * rate:5.1f}%" if rate is not None else "    --"
                lines.append(
                    f"  {prefix:<24s} hits {hits:>8d}  misses {misses:>8d}  rate {shown}"
                )
        other = sorted(
            name
            for name in self.counters
            if not (name.endswith(".hit") or name.endswith(".miss"))
        )
        if other:
            lines.append("counters:")
            for name in other:
                if name.endswith("_bytes"):
                    shown = format_bytes(self.counters[name]).rjust(10)
                else:
                    shown = f"{self.counters[name]:>8d}"
                lines.append(f"  {name:<24s} {shown}")
        if self.timers:
            lines.append("timers:")
            # Cumulative time descending, so the hottest phase leads.
            ordered = sorted(self.timers.items(), key=lambda item: (-item[1], item[0]))
            for name, seconds in ordered:
                lines.append(
                    f"  {name:<24s} {seconds:>8.3f}s"
                    f"  ({self.timer_calls[name]} calls)"
                )
        if self.shard_timings:
            lines.append("shards:")
            for label in sorted(self.shard_timings):
                timings = self.shard_timings[label]
                mean = sum(timings) / len(timings)
                # max/mean straggler factor: 1.00 = perfectly balanced.
                imbalance = f"{max(timings) / mean:.2f}x" if mean else "--"
                lines.append(
                    f"  {label:<24s} n={len(timings)}"
                    f"  total={sum(timings):.3f}s  max={max(timings):.3f}s"
                    f"  mean={mean:.3f}s  imbalance={imbalance}"
                )
        if len(lines) == 2:
            lines.append("(no activity recorded)")
        return "\n".join(lines)


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; systems
    where neither ``resource`` nor ``/proc`` works report 0 (the memory
    section of ``--perf``/metrics then simply stays at zero rather than
    failing the run).
    """
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak:
            return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    except Exception:
        pass
    return _proc_status_kb("VmHWM") * 1024


def current_rss_bytes() -> int:
    """This process's current resident set size, in bytes (0 if unknown)."""
    return _proc_status_kb("VmRSS") * 1024


def _proc_status_kb(field_name: str) -> int:
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as status:
            for line in status:
                if line.startswith(field_name + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def sample_peak_rss(stats: EngineStats | None = None) -> int:
    """Record the current peak RSS as a high-water-mark counter.

    ``mem.peak_rss_bytes`` is a max, not a sum — samples only ever
    raise it.  Called at batch boundaries and run epilogues.
    """
    target = stats if stats is not None else STATS
    peak = peak_rss_bytes()
    if peak > target.counters.get("mem.peak_rss_bytes", 0):
        target.counters["mem.peak_rss_bytes"] = peak
    return peak


def format_bytes(count: int) -> str:
    """Human-readable byte count for ``*_bytes`` counters (KiB/MiB/GiB)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


STATS = EngineStats()


def get_stats() -> EngineStats:
    """The process-wide stats instance."""
    return STATS


def reset_stats() -> None:
    STATS.reset()
