"""The shard-executor seam: how supervised shards actually run.

PR 5's supervisor hard-wired two execution strategies (forked processes
and threads) into one function.  This module extracts the seam those
strategies share so new backends — notably the socket-dispatched
multi-host executor in :mod:`repro.dist` — plug in without touching the
supervision bookkeeping:

* a :class:`ShardExecutor` receives the pending ``(index, shard)`` pairs
  of one gather plus a *ledger* (the supervisor's bookkeeping object) and
  drives every shard to ``ledger.accept`` or raises through
  ``ledger.fail``;
* executors are looked up by name through a process-wide registry, so
  ``supervised_gather(..., executor="process")`` keeps working while
  ``executor=DistExecutor(...)`` (an instance) bypasses the registry.

The ledger contract an executor can rely on (see
``repro.resilience.supervisor._ShardLedger``):

``ledger.supervision``
    The :class:`~repro.resilience.GatherSupervision` bundle (options,
    fault plan, scope, shutdown flag).
``ledger.scope_key``
    The ``corpus:snapshot[:batch]`` string keying fault rolls.
``ledger.accept(index, attempt, result, elapsed, stats_delta, events)``
    Record one completion (checkpointed + journaled); returns False for
    duplicates, which executors must tolerate — work stealing and hung
    workers both produce racing completions.
``ledger.fail(index, attempt, kind, reason)``
    Record one failed attempt; raises ``ShardQuarantined`` once the
    restart budget is spent.
``ledger.journal(event, **fields)`` / ``ledger.raise_if_shutdown()``
    Journal passthrough and cooperative-interrupt check.

Executors change *how* shards run, never *what* they compute: results
must be value-equal to a serial gather, which the merge layer then turns
into byte-identical artifacts.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence


class ShardExecutor(abc.ABC):
    """One strategy for executing the pending shards of a gather."""

    #: Registry name (informational; instances may be anonymous).
    name: str = "?"

    @abc.abstractmethod
    def run(
        self,
        gatherer,
        pending: Sequence[tuple[int, list]],
        snapshot_index: int,
        ledger,
    ) -> None:
        """Drive every pending shard to completion (or quarantine).

        Returns once ``ledger`` holds a result for every pending index;
        raises ``ShardQuarantined`` / ``RunInterrupted`` on the
        supervisor's terminal conditions.
        """


_REGISTRY: dict[str, Callable[[], ShardExecutor]] = {}


def register_executor(name: str, factory: Callable[[], ShardExecutor]) -> None:
    """Register a named executor factory (idempotent re-registration)."""
    _REGISTRY[name] = factory


def resolve_executor(executor: "str | ShardExecutor") -> ShardExecutor:
    """An executor instance from a registry name or a ready instance."""
    if isinstance(executor, ShardExecutor):
        return executor
    try:
        factory = _REGISTRY[executor]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none registered"
        raise ValueError(
            f"unknown shard executor {executor!r} (known: {known})"
        ) from None
    return factory()


def registered_executors() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
