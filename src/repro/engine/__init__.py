"""The execution engine: sharded, parallel, cache-aware measure→infer runs.

This package holds the machinery that makes full-corpus longitudinal
sweeps fast without changing a single inference:

* :mod:`repro.engine.stats` — counters/timers behind ``--perf``,
* :mod:`repro.engine.sharding` — deterministic target-list sharding,
* :mod:`repro.engine.parallel` — process/thread shard-parallel gathering,
* :mod:`repro.engine.executor` — the pluggable shard-executor seam,
* :mod:`repro.engine.identcache` — cross-snapshot MX-identity memoization,
* :mod:`repro.engine.options` — per-context execution knobs.

Every module here is importable from the low-level measurement layers
(nothing imports back into :mod:`repro.core` or :mod:`repro.measure` at
runtime), so instrumentation can sit directly on the hot paths.
"""

from .executor import (
    ShardExecutor,
    register_executor,
    registered_executors,
    resolve_executor,
)
from .identcache import MXIdentityCache, evidence_key
from .options import EngineOptions
from .parallel import env_jobs, parallel_gather, resolve_jobs
from .sharding import merge_shard_results, split_shards
from .stats import (
    STATS,
    EngineStats,
    current_rss_bytes,
    format_bytes,
    get_stats,
    peak_rss_bytes,
    reset_stats,
    sample_peak_rss,
)

__all__ = [
    "EngineOptions",
    "EngineStats",
    "MXIdentityCache",
    "STATS",
    "current_rss_bytes",
    "env_jobs",
    "evidence_key",
    "format_bytes",
    "get_stats",
    "merge_shard_results",
    "parallel_gather",
    "peak_rss_bytes",
    "register_executor",
    "registered_executors",
    "reset_stats",
    "resolve_executor",
    "resolve_jobs",
    "sample_peak_rss",
    "ShardExecutor",
    "split_shards",
]
