"""Execution options for the measurement/inference engine."""

from __future__ import annotations

from dataclasses import dataclass

from .parallel import resolve_jobs


@dataclass(frozen=True)
class EngineOptions:
    """How a :class:`~repro.experiments.common.StudyContext` executes runs.

    ``jobs``
        Worker count for sharded gathering and pipeline identification;
        ``None`` defers to the ``REPRO_JOBS`` environment variable
        (default 1 = serial).
    ``memoize``
        Enables the cross-run caches: PSL extraction, per-(address, date)
        observation interning, cert-group reuse, and the MX-identity
        cache.  Disabling reproduces the seed's from-scratch behaviour
        (the serial baseline of the benchmarks).
    ``executor``
        ``"process"``, ``"thread"``, or ``None`` to pick automatically
        (processes when fork and multiple cores are available).
    """

    jobs: int | None = None
    memoize: bool = True
    executor: str | None = None

    def resolved_jobs(self) -> int:
        return resolve_jobs(self.jobs)
