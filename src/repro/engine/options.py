"""Execution options for the measurement/inference engine."""

from __future__ import annotations

from dataclasses import dataclass

from .parallel import resolve_jobs


@dataclass(frozen=True)
class EngineOptions:
    """How a :class:`~repro.experiments.common.StudyContext` executes runs.

    ``jobs``
        Worker count for sharded gathering and pipeline identification;
        ``None`` defers to the ``REPRO_JOBS`` environment variable
        (default 1 = serial).
    ``memoize``
        Enables the cross-run caches: PSL extraction, per-(address, date)
        observation interning, cert-group reuse, and the MX-identity
        cache.  Disabling reproduces the seed's from-scratch behaviour
        (the serial baseline of the benchmarks).
    ``executor``
        ``"process"``, ``"thread"``, or ``None`` to pick automatically
        (processes when fork and multiple cores are available).
    ``shard_deadline``
        Per-shard wall-clock budget (seconds) for the supervised gather
        path; a worker past its deadline is treated as hung, killed, and
        its shard reassigned.  ``None`` disables the watchdog.  Only
        consulted when supervision is active (a resilient run or a fault
        plan with worker channels).
    ``max_restarts``
        How many times a supervised shard may be reassigned after a
        crashed or hung worker before it is quarantined and the run is
        failed with a diagnosis naming the shard.
    ``batch_domains``
        Streamed-gather batch size: snapshots are gathered in contiguous
        batches of this many domains, held in-flight as encoded codec
        payloads, and merged canonically (see :mod:`repro.stream`).
        ``None`` defers to ``REPRO_BATCH``; zero or negative disables
        batching.  Like every other knob here, this is a pure
        optimization — outputs are byte-identical at any setting.
    """

    jobs: int | None = None
    memoize: bool = True
    executor: str | None = None
    shard_deadline: float | None = None
    max_restarts: int = 2
    batch_domains: int | None = None

    def resolved_jobs(self) -> int:
        return resolve_jobs(self.jobs)

    def batch_plan(self):
        """The resolved :class:`~repro.stream.batching.BatchPlan`."""
        # Imported lazily: the engine layer stays importable without the
        # streaming package, which itself builds on the engine.
        from ..stream.batching import BatchPlan, resolve_batch

        return BatchPlan(resolve_batch(self.batch_domains))
