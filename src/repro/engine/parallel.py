"""Shard-parallel measurement gathering.

Splits a target list into contiguous shards and gathers them concurrently.
The preferred executor is a ``ProcessPoolExecutor`` over a fork context —
the gatherer is handed to workers through fork inheritance (no pickling of
the world), and only the per-shard measurement dicts travel back.  Where
fork is unavailable (or the caller asks for it) a ``ThreadPoolExecutor``
runs the same shards against the shared gatherer.

Results are merged in shard order, so the output is identical — same
domains, same order, same values — to a serial ``gatherer.gather`` call.
Worker results are folded back into the parent gatherer's caches so later
runs stay warm regardless of which executor produced them.

The shard count comes from an explicit ``jobs`` argument, the CLI's
``--jobs`` flag, or the ``REPRO_JOBS`` environment variable.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
import warnings
from typing import Sequence

from ..obs import trace
from .sharding import merge_shard_results, split_shards
from .stats import STATS

JOBS_ENV = "REPRO_JOBS"
EXECUTOR_ENV = "REPRO_EXECUTOR"

# Below this many targets a shard is not worth an executor round-trip.
MIN_PARALLEL_TARGETS = 64

# Set immediately before forking a process pool; workers inherit it.
_FORK_GATHERER = None


def env_jobs(default: int = 1) -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable.

    Unparseable values warn (instead of failing silently) and fall back
    to *default*; values below 1 are clamped to 1.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw is None:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(
            f"unparseable {JOBS_ENV}={raw!r}; falling back to {default}",
            stacklevel=2,
        )
        return default
    return max(1, jobs)


def resolve_jobs(jobs: int | None) -> int:
    """An explicit jobs count, or the environment default."""
    if jobs is None:
        return env_jobs()
    return max(1, int(jobs))


def _pick_executor(executor: str | None) -> str:
    """Choose ``process`` or ``thread`` (explicit arg > env > hardware)."""
    choice = executor or os.environ.get(EXECUTOR_ENV)
    if choice in ("process", "thread"):
        return choice
    if choice is not None:
        warnings.warn(f"unknown {EXECUTOR_ENV}={choice!r}; using auto", stacklevel=2)
    # Processes only pay off with real cores and a fork start method.
    if (os.cpu_count() or 1) > 1 and "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


def _gather_shard_fork(index: int, shard: list[str], snapshot_index: int):
    """Process-pool worker: gather one shard with the fork-inherited gatherer.

    The forked child accumulates cache counters and spans in its *copy*
    of the process-wide stats/tracer; both would vanish with the worker.
    Each shard therefore ships its stats delta (everything since this
    task started — the inherited pre-fork totals subtract out) and its
    new trace events back alongside the measurements, and the parent
    merges them, so ``--perf`` hit rates and traces stay correct at
    ``--jobs > 1``.
    """
    baseline = STATS.snapshot()
    mark = trace.mark()
    started = time.perf_counter()
    with trace.span(f"gather.shard{index}", cat="shard", targets=len(shard)):
        result = _FORK_GATHERER.gather(shard, snapshot_index)
    elapsed = time.perf_counter() - started
    return result, elapsed, STATS.delta_since(baseline), trace.drain_new(mark)


def parallel_gather(
    gatherer,
    domains: Sequence[str],
    snapshot_index: int,
    jobs: int | None = None,
    executor: str | None = None,
    supervision=None,
) -> dict:
    """Gather a target list, sharded across *jobs* workers.

    Bit-identical to ``gatherer.gather(list(domains), snapshot_index)``;
    with ``jobs <= 1`` (or a tiny target list) it *is* that call.

    When *supervision* (a :class:`repro.resilience.GatherSupervision`) is
    given, the parallel path runs under the resilience supervisor:
    per-shard worker processes with crash detection, a hung-shard
    watchdog, bounded restarts, write-through shard checkpoints, and
    poison-shard quarantine.  The serial path is unchanged except for a
    shutdown-flag check — checkpoint granularity there is the whole
    snapshot, via the normal store keys.
    """
    domains = list(domains)
    jobs = resolve_jobs(jobs)
    dist = getattr(supervision, "dist", None) if supervision is not None else None
    if dist is None and (jobs <= 1 or len(domains) < MIN_PARALLEL_TARGETS):
        # A dist coordinator never takes this shortcut: even a jobs=1 or
        # tiny gather must be leased out so remote hosts do the work.
        if supervision is not None and supervision.shutdown is not None:
            supervision.shutdown.raise_if_set()
        with STATS.timer("gather.serial"):
            return gatherer.gather(domains, snapshot_index)

    shards = split_shards(domains, jobs)
    kind = "dist" if dist is not None else _pick_executor(executor)
    if supervision is not None:
        from ..resilience.supervisor import supervised_gather

        with STATS.timer(f"gather.{kind}"), trace.span(
            "gather", cat="gather", executor=kind, jobs=jobs,
            targets=len(domains), supervised=True,
        ):
            results, timings = supervised_gather(
                gatherer, shards, snapshot_index,
                executor=kind, supervision=supervision,
            )
        STATS.record_shards(f"gather.jobs{jobs}", timings)
        merged = merge_shard_results(results)
        adopt = getattr(gatherer, "adopt", None)
        if adopt is not None:
            adopt(merged)
        return merged

    with STATS.timer(f"gather.{kind}"), trace.span(
        "gather", cat="gather", executor=kind, jobs=jobs, targets=len(domains)
    ):
        if kind == "process":
            try:
                results, timings = _gather_process(gatherer, shards, snapshot_index)
            except (OSError, ValueError, concurrent.futures.BrokenExecutor) as exc:
                warnings.warn(
                    f"process-pool gather failed ({exc!r}); "
                    "falling back to threads",
                    stacklevel=2,
                )
                results, timings = _gather_thread(gatherer, shards, snapshot_index)
        else:
            results, timings = _gather_thread(gatherer, shards, snapshot_index)

    STATS.record_shards(f"gather.jobs{jobs}", timings)
    merged = merge_shard_results(results)
    # Fold worker-produced records back into the parent caches so the
    # next run over overlapping infrastructure starts warm.
    adopt = getattr(gatherer, "adopt", None)
    if adopt is not None:
        adopt(merged)
    return merged


def _gather_process(gatherer, shards, snapshot_index):
    global _FORK_GATHERER
    context = multiprocessing.get_context("fork")
    _FORK_GATHERER = gatherer
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=len(shards), mp_context=context
        ) as pool:
            futures = [
                pool.submit(_gather_shard_fork, index, shard, snapshot_index)
                for index, shard in enumerate(shards)
            ]
            outcomes = [future.result() for future in futures]
    finally:
        _FORK_GATHERER = None
    # Merge what the forked workers measured about themselves: their
    # cache counters (previously silently dropped) and their spans.
    for _result, _elapsed, stats_delta, events in outcomes:
        STATS.merge(stats_delta)
        trace.adopt(events)
    return (
        [result for result, _, _, _ in outcomes],
        [elapsed for _, elapsed, _, _ in outcomes],
    )


def _gather_thread(gatherer, shards, snapshot_index):
    def gather_one(indexed):
        index, shard = indexed
        started = time.perf_counter()
        # Threads share the process stats/tracer — nothing to ship back.
        with trace.span(f"gather.shard{index}", cat="shard", targets=len(shard)):
            result = gatherer.gather(shard, snapshot_index)
        return result, time.perf_counter() - started

    with concurrent.futures.ThreadPoolExecutor(max_workers=len(shards)) as pool:
        outcomes = list(pool.map(gather_one, enumerate(shards)))
    return [result for result, _ in outcomes], [elapsed for _, elapsed in outcomes]
