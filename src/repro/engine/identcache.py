"""Cross-run MX-identity memoization.

The identity of an MX record is a property of the mail infrastructure
behind it, not of the asking domain — ``aspmx.l.google.com`` backs most of
a corpus in *every* snapshot.  Steps 2–3 of the priority pipeline are pure
functions of the observation evidence, so their output can be reused across
snapshots (and corpora) of a study whenever the evidence is unchanged.

The cache key captures everything those steps consume:

* the MX name and the ordered per-IP observations,
* per IP: the scan outcome (state, banner, EHLO) or its absence,
* per certificate: fingerprint, trust verdict *at the snapshot date*, and
  the representative name of its certificate group (groups are rebuilt per
  dataset run, so the representative is part of the key, not assumed),
* the pipeline-config flags that alter steps 2–3.

Step 4 (misidentification checking) is deliberately *not* cached: it
depends on the asking domain and on per-run popularity counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .stats import STATS

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.certgroup import CertificateGroups
    from ..core.types import MXIdentity
    from ..measure.dataset import MXData
    from ..tls.ca import TrustStore


def evidence_key(
    mx: "MXData",
    on,
    *,
    use_certs: bool,
    use_banners: bool,
    require_valid_cert: bool,
    groups: "CertificateGroups",
    trust_store: "TrustStore",
) -> tuple:
    """The full observation tuple steps 2–3 depend on for one MX record."""
    ip_evidence = []
    for ip in mx.ips:
        scan = ip.scan
        if scan is None:
            ip_evidence.append((ip.address, None))
            continue
        cert_sig = None
        if scan.certificate is not None:
            cert = scan.certificate
            accepted = trust_store.is_valid(cert, on=on) if require_valid_cert else True
            cert_sig = (cert.fingerprint(), accepted, groups.representative_for(cert))
        ip_evidence.append(
            (ip.address, (scan.state.value, scan.banner, scan.ehlo, cert_sig))
        )
    return (mx.name, use_certs, use_banners, require_valid_cert, tuple(ip_evidence))


class MXIdentityCache:
    """A persistent evidence-keyed store of step-2/3 MX identities."""

    def __init__(self) -> None:
        self._entries: dict[tuple, "MXIdentity"] = {}

    def lookup(self, key: tuple) -> "MXIdentity | None":
        identity = self._entries.get(key)
        if identity is not None:
            STATS.inc("pipeline.mxident.hit")
        else:
            STATS.inc("pipeline.mxident.miss")
        return identity

    def store(self, key: tuple, identity: "MXIdentity") -> None:
        self._entries[key] = identity

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
