"""Deterministic sharding of target lists.

Shards are contiguous slices, so concatenating per-shard results in shard
order reproduces exactly the iteration order of a serial run — the
foundation of the engine's bit-identical-to-serial guarantee.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def split_shards(items: Sequence[T], num_shards: int) -> list[list[T]]:
    """Split *items* into at most *num_shards* contiguous, ordered shards.

    Shard sizes differ by at most one and empty shards are dropped, so
    ``[x for shard in split_shards(items, n) for x in shard] == list(items)``
    holds for every ``n >= 1``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    items = list(items)
    if not items:
        return []
    num_shards = min(num_shards, len(items))
    base, extra = divmod(len(items), num_shards)
    shards: list[list[T]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def merge_shard_results(shard_results: Sequence[dict]) -> dict:
    """Merge per-shard result dicts in shard order.

    With contiguous shards this reproduces the exact key order a serial
    run would have produced.
    """
    merged: dict = {}
    for result in shard_results:
        merged.update(result)
    return merged
