"""Incremental re-inference: steps 2-5 over only the domains that changed.

Successive snapshots of the same corpus overlap heavily — most domains
keep their MX records, addresses, banners, and certificates from one
measurement day to the next.  A batch :class:`~repro.core.pipeline.
PriorityPipeline` run recomputes all of them anyway.  This module keeps
enough bookkeeping (:class:`IncrementalState`) that a new snapshot costs
work proportional to its *churn*, while producing a
:class:`~repro.core.pipeline.PipelineResult` whose encoded bytes are
identical to a from-scratch batch run of the new snapshot.

The bit-identity argument
-------------------------

``encode_result`` interns identity rows by *object*, so byte equality
needs value-identical results **and** the same object-sharing topology a
batch run produces.  Three invariants deliver both:

1. **One raw identity per distinct primary-MX observation.**  The batch
   run computes steps 2-3 once per run key ``(mx name, address tuple)``
   and shares that object across every referencing domain.  The state
   keeps exactly that object per key (:class:`KeyRecord`) and reuses it
   as long as the key's :func:`~repro.engine.identcache.evidence_key` is
   unchanged — never a fresh equal copy, which would add an interned row.
2. **Fresh step-4 outputs per re-inferred (domain, MX).**  ``check()``
   either returns the shared raw object untouched or derives a fresh
   per-domain object (``as_examined``/``with_correction``) — the same
   shapes a batch run creates, so replaying it for exactly the dirty
   domains reproduces batch topology.
3. **Global effects are tracked, not assumed local.**  Two inputs couple
   untouched domains to changed ones: certificate-group representatives
   (step 1 is corpus-global) and popularity counters (step 4 compares
   ``confidence`` to a threshold).  The state keeps reverse indexes —
   certificate fingerprint → referencing domains, run key → referencing
   domains — and re-infers the referents whenever a representative moves
   or a relevant key's confidence crosses the threshold.  Both expansions
   are supersets of the truly affected set; re-inferring an unaffected
   domain reproduces its previous values and topology.

Dicts are rebuilt in new-snapshot order and step-4 stats totals are
adjusted by per-domain contributions, so ordering and bookkeeping also
match the batch run exactly.  ``tests/serve/test_incremental.py`` locks
the equality across churn rates and job counts.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from datetime import date

from ..core.certgroup import CertificateGroups, CertificatePreprocessor
from ..core.companies import CompanyMap
from ..core.domainident import DomainIdentifier
from ..core.ipident import IPIdentifier
from ..core.misident import (
    CorrectionStats,
    MisidentificationChecker,
    PopularityCounters,
)
from ..core.mxident import MXIdentifier
from ..core.pipeline import PipelineConfig, PipelineResult
from ..core.types import DomainInference, EvidenceSource, MXIdentity
from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement
from ..obs import trace as obs_trace
from ..store.delta import SnapshotView
from ..tls.ca import TrustStore
from .identcache import MXIdentityCache, evidence_key
from .parallel import resolve_jobs
from .stats import STATS

RunKey = tuple[str, tuple[str, ...]]


@dataclass
class DomainRecord:
    """Everything the next delta needs to know about one inferred domain."""

    signature: int
    inference: DomainInference
    checked: tuple[MXIdentity, ...]  # post-step-4, one per primary MX, in order
    mx_names: tuple[str, ...]
    run_keys: tuple[RunKey, ...]
    counted_ips: frozenset[str]
    counted_certs: frozenset[str]
    examined: int  # this domain's share of stats.candidates_examined
    corrected: int


@dataclass
class KeyRecord:
    """One distinct primary-MX observation shared across domains."""

    raw: MXIdentity  # the steps-2-3 identity object (pre-step-4)
    evidence: tuple  # evidence_key() it was derived from
    domains: set[str]  # current referencing domains
    relevant: bool  # step 4 consults counters for this key
    crossing: bool  # confidence(raw) >= threshold at last evaluation


@dataclass
class IngestReport:
    """What one bootstrap/ingest round did, for metrics and benchmarks."""

    snapshot_index: int
    mode: str  # "bootstrap" | "delta"
    domains: int
    changed: int
    added: int
    removed: int
    rep_dirty: int  # re-inferred because a cert-group representative moved
    crossing_dirty: int  # re-inferred because a confidence threshold was crossed
    reinferred: int
    keys_identified: int
    keys_reused: int
    seconds: float

    def as_dict(self) -> dict:
        return {
            "snapshot": self.snapshot_index,
            "mode": self.mode,
            "domains": self.domains,
            "changed": self.changed,
            "added": self.added,
            "removed": self.removed,
            "rep_dirty": self.rep_dirty,
            "crossing_dirty": self.crossing_dirty,
            "reinferred": self.reinferred,
            "keys_identified": self.keys_identified,
            "keys_reused": self.keys_reused,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class IncrementalState:
    """The live inference map plus the bookkeeping that makes deltas cheap."""

    snapshot_index: int
    measured_on: date | None
    domains: dict[str, DomainRecord]  # snapshot order
    keys: dict[RunKey, KeyRecord]
    counters: PopularityCounters
    groups: CertificateGroups
    reps: dict[str, str | None]  # cert fingerprint -> group representative
    cert_domains: dict[str, set[str]]  # cert fingerprint -> referencing domains
    # Cert-row signature -> (fingerprint, grouping names), carried between
    # snapshots so an ingest only materializes table rows it has never
    # seen (same 2^-64 collision stance as the domain signatures).
    cert_meta: dict[int, tuple[str, tuple[str, ...]]]
    examined_total: int
    corrected_total: int
    result: PipelineResult


class IncrementalInferencer:
    """Delta-driven counterpart of :class:`~repro.core.pipeline.PriorityPipeline`."""

    def __init__(
        self,
        trust_store: TrustStore,
        company_map: CompanyMap,
        psl: PublicSuffixList | None = None,
        config: PipelineConfig | None = None,
        identity_cache: MXIdentityCache | None = None,
    ) -> None:
        self.trust_store = trust_store
        self.company_map = company_map
        self.psl = psl or default_psl()
        self.config = config or PipelineConfig()
        self.identity_cache = identity_cache
        self._preprocessor = CertificatePreprocessor(self.psl)

    # -- public entry points --------------------------------------------

    def bootstrap(
        self,
        view: SnapshotView,
        *,
        snapshot_index: int = 0,
        jobs: int | None = None,
    ) -> tuple[IncrementalState, IngestReport]:
        """Full first inference over *view*, capturing delta bookkeeping.

        Replays the batch pipeline's exact loop (same per-key worklist,
        same serial steps 4-5 order), so ``state.result`` is the batch
        result — plus the per-domain/per-key records later deltas need.
        """
        started = time.perf_counter()
        with STATS.timer("incremental.bootstrap"), obs_trace.span(
            "incremental.bootstrap", cat="ingest", snapshot=snapshot_index,
            domains=len(view),
        ):
            measurements = view.materialize()
            signatures = view.signatures()
            certificates = view.certificates()
            groups = self._preprocessor.build(certificates)
            cert_meta = {
                sig: (cert.fingerprint(), cert.dns_names() or cert.names())
                for sig, cert in zip(view.cert_sigs(), certificates)
            }

            counters = PopularityCounters()
            for measurement in measurements.values():
                counters.observe_domain(measurement)

            worklist: dict[RunKey, tuple] = {}
            for measurement in measurements.values():
                for mx in measurement.primary_mx:
                    key = (mx.name, tuple(ip.address for ip in mx.ips))
                    if key not in worklist:
                        worklist[key] = (mx, measurement.measured_on)
            items = [
                (key, mx, on, self._evidence(mx, on, groups))
                for key, (mx, on) in worklist.items()
            ]
            raw_by_key = self._identify(items, groups, jobs)
            threshold = self.config.confidence_threshold
            keys: dict[RunKey, KeyRecord] = {}
            for key, _mx, _on, evidence in items:
                raw = raw_by_key[key]
                relevant = self._relevant(raw)
                keys[key] = KeyRecord(
                    raw=raw,
                    evidence=evidence,
                    domains=set(),
                    relevant=relevant,
                    crossing=relevant
                    and counters.confidence(raw) >= threshold,
                )

            checker = self._checker()
            domain_identifier = DomainIdentifier(split_credit=self.config.split_credit)
            domains: dict[str, DomainRecord] = {}
            cert_domains: dict[str, set[str]] = {}
            for domain, measurement in measurements.items():
                record = self._reinfer(
                    domain,
                    measurement,
                    signatures[domain],
                    keys,
                    checker,
                    counters,
                    domain_identifier,
                )
                domains[domain] = record
                for key in record.run_keys:
                    keys[key].domains.add(domain)
                for fingerprint in record.counted_certs:
                    cert_domains.setdefault(fingerprint, set()).add(domain)

            reps = groups.representatives()
            state = IncrementalState(
                snapshot_index=snapshot_index,
                measured_on=(
                    view.measured_on(view.domains[0]) if len(view) else None
                ),
                domains=domains,
                keys=keys,
                counters=counters,
                groups=groups,
                reps=reps,
                cert_domains=cert_domains,
                cert_meta=cert_meta,
                examined_total=checker.stats.candidates_examined,
                corrected_total=checker.stats.corrected,
                result=PipelineResult(
                    inferences={}, correction_stats=CorrectionStats()
                ),
            )
            state.result = self._assemble(state)
        report = IngestReport(
            snapshot_index=snapshot_index,
            mode="bootstrap",
            domains=len(domains),
            changed=0,
            added=len(domains),
            removed=0,
            rep_dirty=0,
            crossing_dirty=0,
            reinferred=len(domains),
            keys_identified=len(items),
            keys_reused=0,
            seconds=time.perf_counter() - started,
        )
        return state, report

    def ingest(
        self,
        state: IncrementalState,
        view: SnapshotView,
        *,
        snapshot_index: int | None = None,
        jobs: int | None = None,
    ) -> IngestReport:
        """Merge a new snapshot into *state*, re-inferring only the dirty set.

        Mutates *state* in place; afterwards ``state.result`` encodes to
        the same bytes a cold batch run over *view* would produce.
        """
        started = time.perf_counter()
        with STATS.timer("incremental.ingest"), obs_trace.span(
            "incremental.ingest", cat="ingest", snapshot=snapshot_index,
            domains=len(view),
        ):
            report = self._ingest(state, view, snapshot_index, jobs)
        report.seconds = time.perf_counter() - started
        return report

    def reinfer_domain(
        self, state: IncrementalState, measurement: DomainMeasurement
    ) -> DomainInference:
        """Steps 2-5 for a single measurement against the live state.

        Pure read — *state* is not modified.  Per-key raw identities come
        from the state (or the shared MX-identity cache on misses), so a
        warm call touches only this domain's own MX evidence.
        """
        keys: dict[RunKey, KeyRecord] = {}
        for mx in measurement.primary_mx:
            key = (mx.name, tuple(ip.address for ip in mx.ips))
            if key in keys:
                continue
            evidence = self._evidence(mx, measurement.measured_on, state.groups)
            existing = state.keys.get(key)
            if existing is not None and existing.evidence == evidence:
                STATS.inc("incremental.reinfer.key_hit")
                keys[key] = existing
                continue
            STATS.inc("incremental.reinfer.key_miss")
            raw = self._identify(
                [(key, mx, measurement.measured_on, evidence)], state.groups, 1
            )[key]
            keys[key] = KeyRecord(
                raw=raw,
                evidence=evidence,
                domains=set(),
                relevant=self._relevant(raw),
                crossing=False,
            )
        record = self._reinfer(
            measurement.domain,
            measurement,
            0,
            keys,
            self._checker(),
            state.counters,
            DomainIdentifier(split_credit=self.config.split_credit),
        )
        return record.inference

    # -- the delta round -------------------------------------------------

    def _ingest(
        self,
        state: IncrementalState,
        view: SnapshotView,
        snapshot_index: int | None,
        jobs: int | None,
    ) -> IngestReport:
        previous = state.domains

        with obs_trace.span("incremental.diff", cat="ingest"):
            signatures = view.signatures()
            changed = set()
            added: list[str] = []
            for domain, signature in signatures.items():
                record = previous.get(domain)
                if record is None:
                    added.append(domain)
                elif record.signature != signature:
                    changed.add(domain)
            removed = [domain for domain in previous if domain not in signatures]
        removed_set = set(removed)
        plain_changed = len(changed)

        # Step 1 is corpus-global: a cert whose group representative moved
        # changes cert IDs for every domain whose evidence carries it, even
        # when that evidence is otherwise untouched.  Grouping inputs are
        # (fingerprint, names) pairs; rows already seen in a previous
        # snapshot reuse the carried metadata, so only never-seen
        # certificates are materialized and re-validated.
        cert_meta = state.cert_meta
        new_meta: dict[int, tuple[str, tuple[str, ...]]] = {}
        named: list[tuple[str, tuple[str, ...]]] = []
        for row, sig in enumerate(view.cert_sigs()):
            known = cert_meta.get(sig)
            if known is None:
                cert = view.certificate(row)
                known = (cert.fingerprint(), cert.dns_names() or cert.names())
            new_meta[sig] = known
            named.append(known)
        groups = self._preprocessor.build_from_names(named)
        state.cert_meta = new_meta
        reps = groups.representatives()
        rep_dirty = 0
        for fingerprint, representative in reps.items():
            old = state.reps.get(fingerprint, representative)
            if old == representative:
                continue
            for domain in state.cert_domains.get(fingerprint, ()):
                if (
                    domain in signatures
                    and domain not in changed
                    and domain not in removed_set
                ):
                    changed.add(domain)
                    rep_dirty += 1

        work1 = changed | set(added)
        measurements = view.materialize(work1) if work1 else {}

        # Popularity counters: retire the dirty domains' old contributions,
        # count their new evidence.  Addition is commutative, so the result
        # equals a from-scratch count over the new snapshot.
        counters = state.counters
        for domain in changed:
            self._retire_counts(counters, previous[domain])
        for domain in removed:
            self._retire_counts(counters, previous[domain])
        new_counts: dict[str, tuple[frozenset, frozenset]] = {}
        for domain, measurement in measurements.items():
            counted = self._counted_sets(measurement)
            new_counts[domain] = counted
            for address in counted[0]:
                counters.num_ip[address] += 1
            for fingerprint in counted[1]:
                counters.num_cert[fingerprint] += 1

        # Detach dirty memberships from the reverse indexes.  The ops are
        # commutative (set discards, counter decrements), so visiting the
        # unordered dirty set directly is safe — and skips a full pass
        # over every carried domain.
        for domain in (*changed, *removed):
            record = previous[domain]
            for key in record.run_keys:
                key_record = state.keys.get(key)
                if key_record is not None:
                    key_record.domains.discard(domain)
            for fingerprint in record.counted_certs:
                referents = state.cert_domains.get(fingerprint)
                if referents is not None:
                    referents.discard(domain)
                    if not referents:
                        del state.cert_domains[fingerprint]

        # Steps 2-3 for the dirty domains' keys.  A key whose stored
        # evidence_key is unchanged keeps its existing raw identity object
        # (reusing the *object*, not just the value, is what preserves the
        # result codec's interned-row topology).
        need: dict[RunKey, tuple] = {}
        for measurement in measurements.values():
            for mx in measurement.primary_mx:
                key = (mx.name, tuple(ip.address for ip in mx.ips))
                if key not in need:
                    need[key] = (mx, measurement.measured_on)
        to_identify = []
        keys_reused = 0
        for key, (mx, on) in need.items():
            evidence = self._evidence(mx, on, groups)
            key_record = state.keys.get(key)
            if key_record is not None and key_record.evidence == evidence:
                keys_reused += 1
                continue
            to_identify.append((key, mx, on, evidence))
        raw_by_key = (
            self._identify(to_identify, groups, jobs) if to_identify else {}
        )
        for key, _mx, _on, evidence in to_identify:
            raw = raw_by_key[key]
            existing = state.keys.get(key)
            state.keys[key] = KeyRecord(
                raw=raw,
                evidence=evidence,
                domains=existing.domains if existing is not None else set(),
                relevant=self._relevant(raw),
                crossing=False,  # evaluated below, against the new counters
            )

        # Step 4 couples domains through the popularity counters: when a
        # relevant key's confidence crosses the threshold (either way),
        # every referencing domain's check() takes a different branch.
        threshold = self.config.confidence_threshold
        crossing_extra: set[str] = set()
        for key_record in state.keys.values():
            if not key_record.relevant:
                continue
            now = counters.confidence(key_record.raw) >= threshold
            if now != key_record.crossing:
                key_record.crossing = now
                for domain in key_record.domains:
                    if (
                        domain in signatures
                        and domain not in work1
                        and domain not in removed_set
                    ):
                        crossing_extra.add(domain)
        if crossing_extra:
            measurements.update(view.materialize(crossing_extra))
        work = set(measurements)

        # Steps 4-5 for the dirty set, serial and in new-snapshot order —
        # the same order a batch run would visit them.  Untouched domains
        # keep their records (and their interned identity objects).
        checker = self._checker()
        domain_identifier = DomainIdentifier(split_credit=self.config.split_credit)
        examined_total = state.examined_total
        corrected_total = state.corrected_total
        for domain in removed:
            examined_total -= previous[domain].examined
            corrected_total -= previous[domain].corrected
        # The result dicts are assembled in the same pass (same visit order
        # as the batch attribute loop: inferences in snapshot order,
        # ``mx_identities[name]`` once per (domain, primary MX) visit).
        new_domains: dict[str, DomainRecord] = {}
        inferences: dict[str, DomainInference] = {}
        mx_identities: dict[str, MXIdentity] = {}
        with obs_trace.span("incremental.reinfer", cat="ingest", dirty=len(work)):
            for domain in view.domains:
                if domain not in work:
                    record = previous[domain]
                else:
                    old = previous.get(domain)
                    if old is not None:
                        examined_total -= old.examined
                        corrected_total -= old.corrected
                    record = self._reinfer(
                        domain,
                        measurements[domain],
                        signatures[domain],
                        state.keys,
                        checker,
                        counters,
                        domain_identifier,
                    )
                    examined_total += record.examined
                    corrected_total += record.corrected
                    for key in record.run_keys:
                        state.keys[key].domains.add(domain)
                    for fingerprint in record.counted_certs:
                        state.cert_domains.setdefault(fingerprint, set()).add(
                            domain
                        )
                new_domains[domain] = record
                inferences[domain] = record.inference
                for name, identity in zip(record.mx_names, record.checked):
                    mx_identities[name] = identity

        for key in [k for k, rec in state.keys.items() if not rec.domains]:
            del state.keys[key]

        state.domains = new_domains
        state.groups = groups
        state.reps = reps
        state.examined_total = examined_total
        state.corrected_total = corrected_total
        state.snapshot_index = (
            snapshot_index if snapshot_index is not None else state.snapshot_index + 1
        )
        state.measured_on = (
            view.measured_on(view.domains[0]) if len(view) else None
        )
        state.result = PipelineResult(
            inferences=inferences,
            correction_stats=CorrectionStats(
                candidates_examined=examined_total,
                corrected=corrected_total,
            ),
            mx_identities=mx_identities,
        )
        STATS.inc("incremental.reinferred", len(work))
        STATS.inc("incremental.carried", len(new_domains) - len(work))
        return IngestReport(
            snapshot_index=state.snapshot_index,
            mode="delta",
            domains=len(new_domains),
            changed=plain_changed,
            added=len(added),
            removed=len(removed),
            rep_dirty=rep_dirty,
            crossing_dirty=len(crossing_extra),
            reinferred=len(work),
            keys_identified=len(to_identify),
            keys_reused=keys_reused,
            seconds=0.0,
        )

    # -- shared plumbing -------------------------------------------------

    def _reinfer(
        self,
        domain: str,
        measurement: DomainMeasurement,
        signature: int,
        keys: dict[RunKey, KeyRecord],
        checker: MisidentificationChecker,
        counters: PopularityCounters,
        domain_identifier: DomainIdentifier,
    ) -> DomainRecord:
        """Steps 4-5 for one domain — the batch run's inner loop, verbatim."""
        examined_before = checker.stats.candidates_examined
        corrected_before = checker.stats.corrected
        identities: dict[str, MXIdentity] = {}
        checked: list[MXIdentity] = []
        mx_names: list[str] = []
        run_keys: list[RunKey] = []
        check_misidentifications = self.config.check_misidentifications
        for mx in measurement.primary_mx:
            key = (mx.name, tuple(ip.address for ip in mx.ips))
            identity = keys[key].raw
            if check_misidentifications:
                identity = checker.check(domain, mx, identity, counters)
            identities[mx.name] = identity
            checked.append(identity)
            mx_names.append(mx.name)
            run_keys.append(key)
        inference = domain_identifier.identify(measurement, identities)
        counted_ips, counted_certs = self._counted_sets(measurement)
        return DomainRecord(
            signature=signature,
            inference=inference,
            checked=tuple(checked),
            mx_names=tuple(mx_names),
            run_keys=tuple(run_keys),
            counted_ips=counted_ips,
            counted_certs=counted_certs,
            examined=checker.stats.candidates_examined - examined_before,
            corrected=checker.stats.corrected - corrected_before,
        )

    def _identify(
        self, items: list[tuple], groups: CertificateGroups, jobs: int | None
    ) -> dict[RunKey, MXIdentity]:
        """Steps 2-3 per work item ``(key, mx, on, evidence)``; cache-aware."""
        ip_identifier = IPIdentifier(
            groups=groups,
            trust_store=self.trust_store,
            psl=self.psl,
            require_valid_cert=self.config.require_valid_cert,
        )
        mx_identifier = MXIdentifier(
            psl=self.psl,
            use_certs=self.config.use_certs,
            use_banners=self.config.use_banners,
        )
        cache = self.identity_cache

        def identify_one(item: tuple) -> MXIdentity:
            _key, mx, on, evidence = item
            if cache is not None:
                hit = cache.lookup(evidence)
                if hit is not None:
                    return hit
            ip_identities = [ip_identifier.identify(ip, on=on) for ip in mx.ips]
            identity = mx_identifier.identify(mx, ip_identities)
            if cache is not None:
                cache.store(evidence, identity)
            return identity

        jobs = resolve_jobs(jobs)
        if jobs <= 1 or len(items) < 2 * jobs:
            return {item[0]: identify_one(item) for item in items}
        # identify_one is pure; execution order cannot change any identity.
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(identify_one, items))
        return {item[0]: identity for item, identity in zip(items, results)}

    def _evidence(self, mx, on, groups: CertificateGroups) -> tuple:
        return evidence_key(
            mx,
            on,
            use_certs=self.config.use_certs,
            use_banners=self.config.use_banners,
            require_valid_cert=self.config.require_valid_cert,
            groups=groups,
            trust_store=self.trust_store,
        )

    def _checker(self) -> MisidentificationChecker:
        return MisidentificationChecker(
            company_map=self.company_map,
            psl=self.psl,
            confidence_threshold=self.config.confidence_threshold,
        )

    def _relevant(self, raw: MXIdentity) -> bool:
        """Can step 4's counter/threshold branch ever fire for this key?"""
        return raw.source is not EvidenceSource.MX and (
            self.company_map.is_large_provider_id(raw.provider_id)
        )

    @staticmethod
    def _counted_sets(
        measurement: DomainMeasurement,
    ) -> tuple[frozenset[str], frozenset[str]]:
        """This domain's counter contributions (PopularityCounters' dedup)."""
        seen_ips: set[str] = set()
        seen_certs: set[str] = set()
        for mx in measurement.primary_mx:
            for ip in mx.ips:
                seen_ips.add(ip.address)
                if ip.scan is not None and ip.scan.certificate is not None:
                    seen_certs.add(ip.scan.certificate.fingerprint())
        return frozenset(seen_ips), frozenset(seen_certs)

    @staticmethod
    def _retire_counts(
        counters: PopularityCounters, record: DomainRecord
    ) -> None:
        for address in record.counted_ips:
            remaining = counters.num_ip[address] - 1
            if remaining:
                counters.num_ip[address] = remaining
            else:
                del counters.num_ip[address]
        for fingerprint in record.counted_certs:
            remaining = counters.num_cert[fingerprint] - 1
            if remaining:
                counters.num_cert[fingerprint] = remaining
            else:
                del counters.num_cert[fingerprint]

    @staticmethod
    def _assemble(state: IncrementalState) -> PipelineResult:
        """The PipelineResult a batch run over the current snapshot returns.

        Replays the batch attribute loop's dict writes: inferences in
        snapshot order, ``mx_identities[name]`` once per (domain, primary
        MX) visit — first write fixes dict order, last write the value.
        """
        inferences: dict[str, DomainInference] = {}
        mx_identities: dict[str, MXIdentity] = {}
        for domain, record in state.domains.items():
            inferences[domain] = record.inference
            for name, identity in zip(record.mx_names, record.checked):
                mx_identities[name] = identity
        return PipelineResult(
            inferences=inferences,
            correction_stats=CorrectionStats(
                candidates_examined=state.examined_total,
                corrected=state.corrected_total,
            ),
            mx_identities=mx_identities,
        )
