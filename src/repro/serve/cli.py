"""``repro serve ...`` — the serving subcommands.

``repro serve`` (or ``serve run``) starts the daemon; the other verbs
are thin clients.  With ``--socket``/``--http`` they RPC against a
running daemon; without a target the query verbs run in-process against
the store directly (same code path the daemon uses), which keeps
one-shot lookups scriptable without a background process.

Exit codes follow the repo convention: 0 success, 2 user/state errors
(unknown domain, missing artifact, bad snapshot spec), 1 internal
failures.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..obs import live as obs_live
from ..obs.slo import SLOError, parse_slo
from ..store import ArtifactStore
from ..world.build import WorldConfig
from .daemon import ServeDaemon, handle_request, rpc
from .service import InferenceService, ServiceError

_CLIENT_OPS = {
    "who-has": "who-has",
    "provider-stats": "provider-stats",
    "explain": "explain",
    "ingest": "ingest",
    "status": "status",
    "metrics": "metrics",
    "trace": "trace",
    "ready": "ready",
    "stop": "shutdown",
}

#: Client verbs that retry by default.  `ingest` is NOT here: retrying a
#: non-idempotent op whose connection died mid-flight risks a confusing
#: second application (rejected as "not ahead"); callers opt in with
#: --retries.
_RETRYING_OPS = {"who-has", "provider-stats", "explain", "status",
                 "metrics", "trace", "ready"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Query daemon over stored inference maps, with "
                    "incremental snapshot ingestion",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="run",
        choices=["run", "top"] + sorted(_CLIENT_OPS),
        help="'run' starts the daemon (default); 'top' is a live metrics "
             "view; the rest are client verbs",
    )
    parser.add_argument(
        "argument",
        nargs="?",
        metavar="ARG",
        help="with 'who-has'/'explain': the domain; "
             "with 'ingest': the snapshot (index or ISO date); "
             "with 'trace': the trace id to replay",
    )
    parser.add_argument(
        "--socket", metavar="PATH", default=None,
        help="unix socket to listen on (run) or connect to (client verbs)",
    )
    parser.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="HTTP address to listen on (run) or connect to (client verbs)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="corpus scale factor (must match the sweep that seeded the store)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="workers for ingest identification (results identical for any N)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="artifact store directory (default: REPRO_CACHE)",
    )
    parser.add_argument(
        "--cache-blocks", type=int, default=32, metavar="N",
        help="decoded columnar blocks kept hot in the LRU (default 32)",
    )
    parser.add_argument(
        "--corpus", metavar="NAME", default=None,
        help="restrict to one corpus (alexa/com/gov; default: search all)",
    )
    parser.add_argument(
        "--date", metavar="SNAPSHOT", default=None,
        help="snapshot index or ISO date (default: the latest snapshot)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="with 'run': write the metrics document (with the 'serve' "
             "section) on shutdown",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="with 'run': write a run manifest (with the 'serve' section) "
             "on shutdown",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print raw JSON results (default for non-tty friendliness "
             "of everything but 'explain'/'trace', which render trees)",
    )
    parser.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="with 'run': SLO objectives for the busiest endpoint, e.g. "
             "'p99=5ms,err=0.1%%' (burn rates exported on /metrics; "
             "status() reports degraded)",
    )
    parser.add_argument(
        "--flush-interval", type=float, default=None, metavar="SECONDS",
        help="with 'run': atomically rewrite --metrics-out/--manifest-out "
             "every N seconds (default: shutdown only)",
    )
    parser.add_argument(
        "--trace-ring", type=int, default=obs_live.DEFAULT_RING, metavar="N",
        help=f"with 'run': span-ring capacity in events "
             f"(default {obs_live.DEFAULT_RING})",
    )
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="with 'run': also append every span to this JSONL stream "
             "(post-mortems beyond the ring horizon)",
    )
    parser.add_argument(
        "--trace", metavar="ID", default=None,
        help="client verbs: send this trace id with the request (the "
             "response echoes it; 'serve trace <id>' replays the spans)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="with 'top': refresh period (default 2s)",
    )
    parser.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="with 'top': stop after N refreshes (default: until ^C)",
    )
    # -- fault tolerance (the resilience layer) --------------------------
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="with 'run': prefork N supervised query workers behind the "
             "listeners (default 1: single-process daemon)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="client verbs: per-request RPC timeout (default 60s)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="client verbs: RPC attempts with exponential backoff "
             "(default 3 for query verbs, 1 for 'ingest'/'stop')",
    )
    parser.add_argument(
        "--run-dir", metavar="PATH", default=None,
        help="with 'run': journal directory for the ingest WAL and worker "
             "lifecycle events (default <store>/serve-run; required for "
             "crash-safe ingest)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="with 'run': concurrent requests admitted per worker before "
             "shedding with 'overloaded' (default 64)",
    )
    parser.add_argument(
        "--queue-wait", type=float, default=0.05, metavar="SECONDS",
        help="with 'run': how long a request may wait for an admission "
             "slot before being shed (default 0.05s)",
    )
    parser.add_argument(
        "--worker-deadline", type=float, default=30.0, metavar="SECONDS",
        help="with 'run --workers N': a worker whose in-flight request "
             "makes no progress for this long is killed and replaced "
             "(default 30s)",
    )
    parser.add_argument(
        "--restart-budget", type=int, default=16, metavar="N",
        help="with 'run --workers N': total worker replacements before "
             "the pool gives up (default 16)",
    )
    parser.add_argument(
        "--breaker-failures", type=int, default=3, metavar="N",
        help="with 'run': consecutive ingest failures that trip the "
             "circuit breaker into stale serving (default 3)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="with 'run': how long the tripped breaker rejects ingests "
             "before allowing a probe (default 30s)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="with 'run': chaos channels, e.g. "
             "'seed=7,serve.worker.crash=0.05,ingest.crash=1.0' "
             "(hash-pure; never changes answer bytes)",
    )
    return parser


def parse_http(raw: str | None) -> tuple[str, int] | None:
    if raw is None:
        return None
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceError(
            f"--http expects HOST:PORT, got {raw!r}", code="bad-request"
        )
    return host, int(port)


def _store(args: argparse.Namespace) -> ArtifactStore | None:
    if args.cache_dir:
        return ArtifactStore(args.cache_dir)
    return ArtifactStore.from_env()


def _service(
    args: argparse.Namespace,
    journal=None,
    plan=None,
    watch_generation: bool = False,
) -> InferenceService:
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    slo = None
    if args.slo:
        try:
            slo = parse_slo(args.slo)
        except SLOError as error:
            raise ServiceError(str(error), code="bad-request") from error
    breaker = None
    if journal is not None:
        from .resilience import IngestBreaker

        breaker = IngestBreaker(
            threshold=args.breaker_failures,
            cooldown=args.breaker_cooldown,
            journal=journal,
        )
    return InferenceService(
        config,
        _store(args),
        jobs=args.jobs,
        cache_blocks=args.cache_blocks,
        faults_key=plan.store_key() if plan is not None else None,
        slo=slo,
        trace_ring=args.trace_ring,
        trace_jsonl=args.trace_jsonl,
        journal=journal,
        breaker=breaker,
        fault_plan=plan,
        watch_generation=watch_generation,
    )


def _target(args: argparse.Namespace):
    """The RPC target from flags, or None for in-process execution."""
    if args.socket:
        return ("socket", args.socket)
    http_address = parse_http(args.http)
    if http_address is not None:
        return ("http", *http_address)
    return None


def _request(args: argparse.Namespace) -> dict:
    op = _CLIENT_OPS[args.command]
    request: dict = {"op": op}
    if args.trace:
        request["trace"] = args.trace
    if args.command == "trace":
        if not args.argument:
            raise ServiceError(
                "'trace' needs a trace id argument (the 'trace' field of "
                "any RPC response)",
                code="bad-request",
            )
        request["id"] = args.argument
    if args.command in ("who-has", "explain"):
        if not args.argument:
            raise ServiceError(
                f"'{args.command}' needs a domain argument", code="bad-request"
            )
        request["domain"] = args.argument
    if args.command == "ingest":
        if args.argument is None and args.date is None:
            raise ServiceError(
                "'ingest' needs a snapshot (index or ISO date)",
                code="bad-request",
            )
        request["snapshot"] = args.argument if args.argument is not None else args.date
        request["jobs"] = args.jobs
    elif args.command in ("who-has", "explain", "provider-stats"):
        request["snapshot"] = args.date
    if args.corpus:
        request["corpus"] = args.corpus
    return request


def _render(args: argparse.Namespace, result) -> None:
    if args.command == "explain" and not args.json:
        from ..obs.provenance import render_explanation

        print(render_explanation(result))
        return
    if args.command == "trace" and not args.json:
        print(obs_live.render_trace_tree(result))
        return
    print(json.dumps(result, indent=2, sort_keys=True))


def run_daemon(args: argparse.Namespace, argv: list[str]) -> int:
    from ..faults.plan import resolve_plan
    from ..resilience.journal import RunJournal, new_run_id
    from .resilience import AdmissionControl, ServeGuard

    try:
        plan = resolve_plan(args.faults, args.seed)
    except ValueError as error:
        raise ServiceError(str(error), code="bad-request") from error
    store = _store(args)
    if store is None:
        raise ServiceError(
            "serving requires an artifact store (set REPRO_CACHE or pass "
            "--cache-dir); there is nothing to serve without one",
            code="no-store",
        )
    socket_path = args.socket
    http_address = parse_http(args.http)
    if socket_path is None and http_address is None:
        # No listener requested: default to a socket next to the store,
        # so `repro serve` followed by `repro serve who-has ... --socket
        # <store>/serve.sock` just works.
        socket_path = str(store.root / "serve.sock")
    run_dir = args.run_dir or str(store.root / "serve-run")
    journal = RunJournal(run_dir, new_run_id())
    where = []
    if socket_path is not None:
        where.append(f"socket {socket_path}")
    if http_address is not None:
        where.append(f"http {http_address[0]}:{http_address[1]}")

    def admission():
        return AdmissionControl(args.max_inflight, args.queue_wait)

    if args.workers > 1:
        from .resilience import PoolOptions, WorkerPool

        pool = WorkerPool(
            service_factory=lambda: _service(
                args, journal=journal, plan=plan, watch_generation=True
            ),
            socket_path=socket_path,
            http_address=http_address,
            journal=journal,
            options=PoolOptions(
                workers=args.workers,
                restart_budget=args.restart_budget,
                worker_deadline=args.worker_deadline,
            ),
            plan=plan,
            admission_factory=admission,
        )
        print(f"serving inference maps on {', '.join(where)} "
              f"with {args.workers} workers "
              f"(store {store.root}, journal {journal.path})")
        return pool.run()
    service = _service(args, journal=journal, plan=plan)
    daemon = ServeDaemon(
        service,
        socket_path=socket_path,
        http_address=http_address,
        metrics_out=args.metrics_out,
        manifest_out=args.manifest_out,
        argv=["serve"] + list(argv),
        flush_interval=args.flush_interval,
        guard=ServeGuard(admission=admission(), plan=plan),
    )
    print(f"serving inference maps on {', '.join(where)} "
          f"(store {store.root})")
    service.recover()
    return daemon.run()


def render_top(metrics: dict) -> str:
    """One ``repro top`` frame from a ``metrics`` RPC result."""
    lines = []
    live = metrics.get("live")
    cache = metrics.get("block_cache", {})
    degraded = metrics.get("degraded", False)
    header = (
        f"repro top — uptime {metrics.get('uptime_s', 0):.0f}s"
        f" | cache hit {cache.get('hit_rate') if cache.get('hit_rate') is not None else '—'}"
        f" | blocks {cache.get('entries', 0)}/{cache.get('capacity', 0)}"
    )
    if degraded:
        header += " | DEGRADED"
    lines.append(header)
    if live is None:
        lines.append("(live telemetry disabled — lifetime histograms only)")
        for endpoint, snap in sorted(metrics.get("endpoints", {}).items()):
            lines.append(
                f"  {endpoint:<16} n={snap['count']:<8} "
                f"p50={snap['p50_ms']}ms p99={snap['p99_ms']}ms"
            )
        return "\n".join(lines)
    gauges = live.get("gauges", {})
    lines.append(
        f"rss {gauges.get('rss_bytes', 0) / 1e6:.1f}MB"
        + (
            f" | ingest lag {gauges['ingest_lag_s']:.1f}s"
            if gauges.get("ingest_lag_s") is not None
            else ""
        )
    )
    slo = live.get("slo")
    if slo and slo.get("objectives"):
        burns = ", ".join(
            f"{entry['name']}={entry['burn_rate']:.2f}x"
            for entry in slo["objectives"]
        )
        lines.append(f"slo[{slo.get('endpoint') or '—'}] burn: {burns}")
    lines.append(
        f"  {'endpoint':<16}{'win':>5}{'req':>8}{'qps':>9}"
        f"{'p50ms':>9}{'p95ms':>9}{'p99ms':>9}{'err%':>7}"
    )
    for endpoint, snap in sorted(live.get("endpoints", {}).items()):
        for window, stats in sorted(
            snap["windows"].items(), key=lambda item: stats_span(item[0])
        ):
            lines.append(
                f"  {endpoint:<16}{window:>5}{stats['requests']:>8}"
                f"{stats['qps']:>9.1f}{stats['p50_ms']:>9.3f}"
                f"{stats['p95_ms']:>9.3f}{stats['p99_ms']:>9.3f}"
                f"{100 * stats['error_rate']:>7.2f}"
            )
    return "\n".join(lines)


def stats_span(window: str) -> int:
    """Sort key for window labels like '10s'."""
    try:
        return int(window.rstrip("s"))
    except ValueError:
        return 0


def run_top(args: argparse.Namespace) -> int:
    """Plain-refresh live metrics view (no curses: redraw via ANSI home)."""
    target = _target(args)
    if target is None:
        raise ServiceError(
            "'top' needs a daemon target (--socket or --http)",
            code="bad-request",
        )
    frames = 0
    try:
        while True:
            response = rpc(target, {"op": "metrics"}, timeout=args.timeout)
            if not response.get("ok", False):
                print(f"serve: {response.get('error')}", file=sys.stderr)
                return 2
            frame = render_top(response["result"])
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            frames += 1
            if args.count and frames >= args.count:
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return run_daemon(args, argv)
        if args.command == "top":
            return run_top(args)
        request = _request(args)
        target = _target(args)
        if target is not None:
            from .resilience import RetryPolicy

            attempts = args.retries
            if attempts is None:
                attempts = 3 if args.command in _RETRYING_OPS else 1
            response = rpc(
                target,
                request,
                timeout=args.timeout,
                retry=RetryPolicy(attempts=max(1, attempts)),
            )
        else:
            if args.command == "stop":
                raise ServiceError(
                    "'stop' needs a daemon target (--socket or --http)",
                    code="bad-request",
                )
            response = handle_request(_service(args), request)
    except ServiceError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        print(f"serve: cannot reach daemon: {error}", file=sys.stderr)
        return 2
    if not response.get("ok", False):
        print(f"serve: {response.get('error')}", file=sys.stderr)
        return 1 if response.get("code") in ("internal", "corrupt") else 2
    _render(args, response["result"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
