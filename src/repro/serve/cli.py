"""``repro serve ...`` — the serving subcommands.

``repro serve`` (or ``serve run``) starts the daemon; the other verbs
are thin clients.  With ``--socket``/``--http`` they RPC against a
running daemon; without a target the query verbs run in-process against
the store directly (same code path the daemon uses), which keeps
one-shot lookups scriptable without a background process.

Exit codes follow the repo convention: 0 success, 2 user/state errors
(unknown domain, missing artifact, bad snapshot spec), 1 internal
failures.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..store import ArtifactStore
from ..world.build import WorldConfig
from .daemon import ServeDaemon, handle_request, rpc
from .service import InferenceService, ServiceError

_CLIENT_OPS = {
    "who-has": "who-has",
    "provider-stats": "provider-stats",
    "explain": "explain",
    "ingest": "ingest",
    "status": "status",
    "metrics": "metrics",
    "stop": "shutdown",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Query daemon over stored inference maps, with "
                    "incremental snapshot ingestion",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="run",
        choices=["run"] + sorted(_CLIENT_OPS),
        help="'run' starts the daemon (default); the rest are client verbs",
    )
    parser.add_argument(
        "argument",
        nargs="?",
        metavar="ARG",
        help="with 'who-has'/'explain': the domain; "
             "with 'ingest': the snapshot (index or ISO date)",
    )
    parser.add_argument(
        "--socket", metavar="PATH", default=None,
        help="unix socket to listen on (run) or connect to (client verbs)",
    )
    parser.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="HTTP address to listen on (run) or connect to (client verbs)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="corpus scale factor (must match the sweep that seeded the store)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="workers for ingest identification (results identical for any N)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="artifact store directory (default: REPRO_CACHE)",
    )
    parser.add_argument(
        "--cache-blocks", type=int, default=32, metavar="N",
        help="decoded columnar blocks kept hot in the LRU (default 32)",
    )
    parser.add_argument(
        "--corpus", metavar="NAME", default=None,
        help="restrict to one corpus (alexa/com/gov; default: search all)",
    )
    parser.add_argument(
        "--date", metavar="SNAPSHOT", default=None,
        help="snapshot index or ISO date (default: the latest snapshot)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="with 'run': write the metrics document (with the 'serve' "
             "section) on shutdown",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="with 'run': write a run manifest (with the 'serve' section) "
             "on shutdown",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print raw JSON results (default for non-tty friendliness "
             "of everything but 'explain', which renders a trail)",
    )
    return parser


def parse_http(raw: str | None) -> tuple[str, int] | None:
    if raw is None:
        return None
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceError(
            f"--http expects HOST:PORT, got {raw!r}", code="bad-request"
        )
    return host, int(port)


def _store(args: argparse.Namespace) -> ArtifactStore | None:
    if args.cache_dir:
        return ArtifactStore(args.cache_dir)
    return ArtifactStore.from_env()


def _service(args: argparse.Namespace) -> InferenceService:
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    return InferenceService(
        config,
        _store(args),
        jobs=args.jobs,
        cache_blocks=args.cache_blocks,
    )


def _target(args: argparse.Namespace):
    """The RPC target from flags, or None for in-process execution."""
    if args.socket:
        return ("socket", args.socket)
    http_address = parse_http(args.http)
    if http_address is not None:
        return ("http", *http_address)
    return None


def _request(args: argparse.Namespace) -> dict:
    op = _CLIENT_OPS[args.command]
    request: dict = {"op": op}
    if args.command in ("who-has", "explain"):
        if not args.argument:
            raise ServiceError(
                f"'{args.command}' needs a domain argument", code="bad-request"
            )
        request["domain"] = args.argument
    if args.command == "ingest":
        if args.argument is None and args.date is None:
            raise ServiceError(
                "'ingest' needs a snapshot (index or ISO date)",
                code="bad-request",
            )
        request["snapshot"] = args.argument if args.argument is not None else args.date
        request["jobs"] = args.jobs
    elif args.command in ("who-has", "explain", "provider-stats"):
        request["snapshot"] = args.date
    if args.corpus:
        request["corpus"] = args.corpus
    return request


def _render(args: argparse.Namespace, result) -> None:
    if args.command == "explain" and not args.json:
        from ..obs.provenance import render_explanation

        print(render_explanation(result))
        return
    print(json.dumps(result, indent=2, sort_keys=True))


def run_daemon(args: argparse.Namespace, argv: list[str]) -> int:
    service = _service(args)
    socket_path = args.socket
    http_address = parse_http(args.http)
    if socket_path is None and http_address is None:
        # No listener requested: default to a socket next to the store,
        # so `repro serve` followed by `repro serve who-has ... --socket
        # <store>/serve.sock` just works.
        socket_path = str(service.store.root / "serve.sock")
    daemon = ServeDaemon(
        service,
        socket_path=socket_path,
        http_address=http_address,
        metrics_out=args.metrics_out,
        manifest_out=args.manifest_out,
        argv=["serve"] + list(argv),
    )
    where = []
    if socket_path is not None:
        where.append(f"socket {socket_path}")
    if http_address is not None:
        where.append(f"http {http_address[0]}:{http_address[1]}")
    print(f"serving inference maps on {', '.join(where)} "
          f"(store {service.store.root})")
    return daemon.run()


def main(argv: list[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return run_daemon(args, argv)
        request = _request(args)
        target = _target(args)
        if target is not None:
            response = rpc(target, request)
        else:
            if args.command == "stop":
                raise ServiceError(
                    "'stop' needs a daemon target (--socket or --http)",
                    code="bad-request",
                )
            response = handle_request(_service(args), request)
    except ServiceError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        print(f"serve: cannot reach daemon: {error}", file=sys.stderr)
        return 2
    if not response.get("ok", False):
        print(f"serve: {response.get('error')}", file=sys.stderr)
        return 1 if response.get("code") in ("internal", "corrupt") else 2
    _render(args, response["result"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
