"""Deterministic synthetic churn over a measurement snapshot.

Benchmarks and equivalence tests need snapshots that differ from a base
snapshot by an exact, controllable fraction of domains.  Real snapshots
churn at whatever rate the world generator produced; this module rewrites
a chosen fraction of domains' MX evidence deterministically (seeded
``random.Random``) so the same ``(measurements, rate, seed)`` always
yields byte-identical output.

Mutations keep the canonical-encoding invariants from
:mod:`repro.stream.canon`: the gatherer interns one observation object
per address, so mutated domains get *fresh unique* MX names and
addresses (reserved 240/8 space the world generator never allocates)
rather than edited copies of shared rows.  Untouched domains keep their
original (shared) objects, and snapshot order is preserved.
"""

from __future__ import annotations

import random

from ..measure.caida import ASInfo
from ..measure.censys import Port25State, PortScanRecord
from ..measure.dataset import DomainMeasurement, IPObservation, MXData

CHURN_AS = ASInfo(asn=64512, name="CHURN-SYNTH", country="ZZ")


def synthesize_churn(
    measurements: dict[str, DomainMeasurement],
    rate: float,
    seed: int = 0,
) -> dict[str, DomainMeasurement]:
    """A copy of *measurements* with ~``rate`` of domains' evidence rewritten.

    Of the selected domains, most move to a fresh synthetic provider
    (new MX name, new address, new banner — maximal evidence churn); every
    eighth loses its MX records entirely (the NO_MX path).  Selection and
    mutation are pure functions of ``(domains, rate, seed)``.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"churn rate must be within [0, 1], got {rate}")
    names = list(measurements)
    count = round(len(names) * rate)
    if not count:
        return dict(measurements)
    rng = random.Random(seed)
    selected = rng.sample(names, count)
    churned = dict(measurements)
    for index, domain in enumerate(selected):
        original = measurements[domain]
        if index % 8 == 7:
            mutated = DomainMeasurement(
                domain=domain,
                measured_on=original.measured_on,
                mx_set=(),
                txt=original.txt,
            )
        else:
            mutated = DomainMeasurement(
                domain=domain,
                measured_on=original.measured_on,
                mx_set=(_synthetic_mx(index, seed, original),),
                txt=original.txt,
            )
        churned[domain] = mutated
    return churned


def _synthetic_mx(index: int, seed: int, original: DomainMeasurement) -> MXData:
    # 240/8 is reserved ("future use"): the world generator never hands
    # these addresses out, so each mutated domain gets a unique endpoint
    # and the one-observation-per-address canonical invariant holds.
    address = f"240.{seed % 200}.{index // 250}.{index % 250}"
    host = f"mx-{seed}-{index}.churn.invalid"
    scan = PortScanRecord(
        address=address,
        scanned_on=original.measured_on,
        state=Port25State.OPEN,
        banner=f"220 {host} ESMTP churn",
        ehlo=f"250 {host}",
        starttls=False,
        certificate=None,
    )
    observation = IPObservation(address=address, as_info=CHURN_AS, scan=scan)
    return MXData(name=host, preference=10, ips=(observation,))
