"""An in-process LRU over decoded columnar blocks.

Store payloads are cheap to *read* (envelope check + zlib) but column
views still parse tables and build indexes; the daemon answers thousands
of lookups against the same handful of (corpus, snapshot) blocks, so
decoded views are kept hot under a small LRU.  ``None`` loads (artifact
absent from the store) are not cached: a later ingest can create them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from ..engine.stats import STATS


class BlockCache:
    """Thread-safe LRU keyed by arbitrary hashables."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, loader: Callable[[], object]):
        """The cached block for *key*, loading (and caching) on miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                STATS.inc("serve.block.hit")
                return self._entries[key]
        # Load outside the lock: decoding a block can take milliseconds
        # and must not serialize unrelated lookups.  A racing double-load
        # wastes one decode; both results are equivalent.
        STATS.inc("serve.block.miss")
        value = loader()
        if value is None:
            return None
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                STATS.inc("serve.block.evicted")
        return value

    def invalidate(self, key) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
