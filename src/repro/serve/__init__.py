"""Inference-as-a-service: a query daemon over the columnar store.

``python -m repro serve`` starts a long-running process that answers
``who-has <domain>``, ``provider-stats``, and ``explain`` lookups from
stored inference maps — no pipeline run on the query path — and ingests
new snapshots *incrementally*, re-inferring only domains whose evidence
changed (:mod:`repro.engine.incremental`) while staying bit-identical to
a from-scratch batch run.

Layout:

* :mod:`repro.serve.blocks` — LRU cache over decoded columnar views.
* :mod:`repro.serve.service` — the transport-agnostic query/ingest API.
* :mod:`repro.serve.daemon` — unix-socket / HTTP front-ends + clients.
* :mod:`repro.serve.churn` — deterministic synthetic-churn generator
  (benchmarks and equivalence tests).
* :mod:`repro.serve.resilience` — fault tolerance: the supervised
  prefork worker pool, admission control / load shedding, the ingest
  circuit breaker, client retry policies, and the WAL helpers behind
  crash-safe ingest.
* :mod:`repro.serve.cli` — ``repro serve ...`` subcommands.
"""

from .blocks import BlockCache
from .resilience import (
    AdmissionControl,
    IngestBreaker,
    PoolOptions,
    RetryPolicy,
    ServeGuard,
    WorkerPool,
    rpc_retry,
    wait_until_healthy,
)
from .service import InferenceService, ServiceError

__all__ = [
    "AdmissionControl",
    "BlockCache",
    "IngestBreaker",
    "InferenceService",
    "PoolOptions",
    "RetryPolicy",
    "ServeGuard",
    "ServiceError",
    "WorkerPool",
    "rpc_retry",
    "wait_until_healthy",
]
