"""Fault tolerance for the serving layer: workers, WAL, backpressure.

Four cooperating pieces, the serving analogue of ``repro.resilience``:

* :class:`WorkerPool` — a supervised prefork pool behind the existing
  unix-socket/HTTP front end.  The parent binds the listening sockets,
  forks N query workers that each run their own accept loop on the
  inherited fds (kernel-balanced, gunicorn-style), and monitors them:
  a crashed worker is journaled (``serve.worker.lost``) and restarted
  under a bounded budget; a wedged worker (in-flight request past the
  deadline with no progress) is SIGKILLed and treated the same; a
  request that repeatedly kills its worker is quarantined
  (``serve.request.quarantined``) and answered with a structured error
  instead of a fourth corpse.
* :class:`AdmissionControl` — a bounded per-worker queue.  Requests
  past ``max_inflight`` wait at most ``queue_wait`` seconds for a slot,
  then are shed with an ``overloaded`` error carrying ``retry_after``
  (HTTP 503 + Retry-After), so saturation degrades into fast failures
  instead of unbounded queueing.
* :class:`IngestBreaker` — a circuit breaker over the ingest path.
  Repeated ingest failures trip it open: further ingests are rejected
  (``circuit-open``) while queries keep serving the last good maps with
  a ``stale: true`` flag and the PR 8 ``degraded`` gauge firing; after
  the cooldown one probe ingest is allowed through (half-open).
* :class:`RetryPolicy` / :func:`rpc_retry` — client hardening: bounded
  retry with exponential backoff + jitter on connect-refused, timeouts,
  and torn replies from a killed worker, honoring ``retry_after`` from
  shed responses.

The crash-safe ingest WAL itself lives in
:meth:`~repro.serve.service.InferenceService.ingest` /
:meth:`~repro.serve.service.InferenceService.recover`: an
``ingest.wal.begin`` intent record (snapshot ref + config digest) is
fsynced to the run journal before serving state mutates, results stage
through the store's atomic tmp+rename path, and recovery replays any
begin without a matching commit — so a SIGKILL at any instant yields
answers byte-identical to a never-killed daemon.

Fault injection: the hash-pure ``serve.worker.crash`` /
``serve.worker.hang`` / ``ingest.crash`` channels (see
:mod:`repro.faults.plan`) break only this harness — they are stripped
from artifact-store keys, and the chaos gate in
``scripts/serve_sweep.py --chaos`` proves byte-identity through them.
"""

from __future__ import annotations

import errno
import fcntl
import json
import mmap
import os
import random
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass

from ..engine.stats import STATS
from ..faults.inject import fault_roll
from ..resilience.supervisor import EXIT_INJECTED_CRASH, EXIT_WORKER_ERROR

#: RPC error codes a client retry can meaningfully help with.
RETRYABLE_CODES = {"overloaded", "not-ready"}

#: Ops that bypass admission control and quarantine: health checks and
#: introspection must keep answering precisely when the data plane is
#: shedding — that is what liveness probes are for.
CONTROL_OPS = {"ping", "ready", "status", "metrics", "trace", "shutdown"}


# -- client hardening ----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for RPC clients."""

    attempts: int = 5
    base: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1

    def backoff(self, attempt: int, retry_after: float | None = None) -> float:
        """Sleep before retry number *attempt* (0-based), in seconds.

        A server-supplied *retry_after* (from a shed response) acts as a
        floor: backing off sooner than the server asked for just burns
        another slot in its admission queue.
        """
        delay = min(self.max_backoff, self.base * self.multiplier ** attempt)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        if self.jitter:
            delay *= 1.0 + random.random() * self.jitter
        return delay


def rpc_retry(
    target,
    payload: dict,
    *,
    timeout: float = 60.0,
    policy: RetryPolicy | None = None,
) -> dict:
    """:func:`repro.serve.daemon.rpc` with bounded retry.

    Retries connect-refused / reset / timed-out sockets and torn replies
    (a worker SIGKILLed mid-response closes the stream early), plus
    structured ``overloaded`` / ``not-ready`` responses — honoring their
    ``retry_after``.  Raises (or returns) the final failure unchanged
    once the budget is spent.
    """
    from .daemon import rpc

    policy = policy or RetryPolicy()
    last_error: Exception | None = None
    last_response: dict | None = None
    for attempt in range(max(1, policy.attempts)):
        retry_after = None
        try:
            response = rpc(target, payload, timeout=timeout)
        except (OSError, ValueError) as error:
            last_error, last_response = error, None
        else:
            if response.get("ok") or response.get("code") not in RETRYABLE_CODES:
                return response
            last_error, last_response = None, response
            retry_after = response.get("retry_after")
        if attempt + 1 < max(1, policy.attempts):
            time.sleep(policy.backoff(attempt, retry_after))
    if last_response is not None:
        return last_response
    assert last_error is not None
    raise last_error


def wait_until_healthy(
    target,
    *,
    timeout: float = 30.0,
    interval: float = 0.02,
    op: str = "ping",
) -> float:
    """Block until the daemon answers *op*; returns the wait in seconds.

    The backoff replacement for ad-hoc ``while True: ping; sleep`` loops
    in sweeps and tests: polls with a growing interval, tolerating the
    connect-refused races of a daemon (or pool worker) still starting.
    """
    started = time.monotonic()
    deadline = started + timeout
    pause = interval
    while True:
        try:
            reply = rpc_retry(
                target, {"op": op}, timeout=min(2.0, timeout),
                policy=RetryPolicy(attempts=1),
            )
            if reply.get("ok"):
                return time.monotonic() - started
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"daemon at {target!r} not healthy after {timeout:g}s"
            )
        time.sleep(pause)
        pause = min(0.25, pause * 1.5)


# -- admission control ---------------------------------------------------


class AdmissionControl:
    """A bounded per-worker request queue with load shedding.

    At most *max_inflight* requests execute concurrently; a request that
    cannot get a slot within *queue_wait* seconds is shed (the caller
    answers ``overloaded`` + ``retry_after``) instead of queueing
    unboundedly behind a saturated worker.
    """

    def __init__(self, max_inflight: int = 64, queue_wait: float = 0.05) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        self.queue_wait = max(0.0, queue_wait)
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._waiting = 0
        self._shed = 0

    @property
    def retry_after(self) -> float:
        """The Retry-After hint for shed responses (seconds)."""
        return round(max(0.05, 2 * self.queue_wait), 3)

    def admit(self) -> bool:
        with self._lock:
            self._waiting += 1
        acquired = self._slots.acquire(timeout=self.queue_wait)
        with self._lock:
            self._waiting -= 1
            if acquired:
                self._inflight += 1
            else:
                self._shed += 1
        if not acquired:
            STATS.inc("serve.shed")
        return acquired

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1
        self._slots.release()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "queue_depth": self._waiting,
                "max_inflight": self.max_inflight,
                "queue_wait_s": self.queue_wait,
                "shed": self._shed,
            }


# -- ingest circuit breaker ----------------------------------------------


class IngestBreaker:
    """Trip after repeated ingest failures; serve stale until cooled down.

    closed → (``threshold`` consecutive failures) → open → (after
    ``cooldown`` seconds) → half-open: one probe ingest is allowed; its
    success closes the breaker, its failure re-opens it.  While the
    breaker is tripped (open or half-open) query answers carry
    ``stale: true`` and the live ``degraded`` gauge fires.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        self.threshold = threshold
        self.cooldown = max(0.0, cooldown)
        self._clock = clock
        self._journal = journal
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def stale(self) -> bool:
        """Whether answers should be flagged stale (breaker tripped)."""
        with self._lock:
            return self._opened_at is not None

    def allow(self) -> bool:
        """Whether an ingest may proceed (closed, or a half-open probe)."""
        with self._lock:
            if self._opened_at is None:
                return True
            return self._clock() - self._opened_at >= self.cooldown

    def retry_after(self) -> float:
        with self._lock:
            if self._opened_at is None:
                return 0.0
            remaining = self.cooldown - (self._clock() - self._opened_at)
            return round(max(0.0, remaining), 3)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = self._failures >= self.threshold and self._opened_at is None
            reopened = self._opened_at is not None
            if tripped:
                self._opened_at = self._clock()
            elif reopened:  # a failed half-open probe restarts the cooldown
                self._opened_at = self._clock()
        if tripped and self._journal is not None:
            self._journal.append(
                "serve.breaker.open", failures=self._failures,
            )

    def record_success(self) -> None:
        with self._lock:
            closed = self._opened_at is not None
            self._failures = 0
            self._opened_at = None
        if closed and self._journal is not None:
            self._journal.append("serve.breaker.close")

    def state(self) -> dict:
        with self._lock:
            if self._opened_at is None:
                state = "closed"
            elif self._clock() - self._opened_at >= self.cooldown:
                state = "half-open"
            else:
                state = "open"
            return {
                "state": state,
                "failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown,
            }


# -- inflight ledger (poison-request blame) ------------------------------

_SLOT_BYTES = 512
_HEADER = struct.Struct("<IIdI")  # seq, inflight, last_activity, payload len
_PAYLOAD_MAX = _SLOT_BYTES - _HEADER.size


def request_digest(request: dict) -> str:
    """The canonical identity of one request for quarantine bookkeeping.

    Only the semantic fields participate — trace ids and job counts
    vary per attempt and must not let a poison request dodge its blame.
    """
    core = {
        key: request.get(key)
        for key in ("op", "domain", "corpus", "snapshot")
        if request.get(key) is not None
    }
    return json.dumps(core, sort_keys=True)


class InflightLedger:
    """A shared-memory slab recording each worker's in-flight request.

    One fixed-size slot per worker, written by the worker under a
    seqlock (odd sequence = write in progress) and read by the parent
    only to (a) blame the request a dead worker was processing and
    (b) detect wedged workers (in-flight work with no begin/done
    transitions past the deadline).  The map is created before fork and
    inherited, so writes cost two struct packs — nanoseconds, not a
    per-request file write.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._map = mmap.mmap(-1, workers * _SLOT_BYTES)

    def slot(self, index: int) -> "LedgerSlot":
        return LedgerSlot(self._map, index * _SLOT_BYTES)

    def read(self, index: int) -> dict | None:
        """A consistent snapshot of one slot (parent side), or None."""
        base = index * _SLOT_BYTES
        for _ in range(8):
            seq0, inflight, activity, length = _HEADER.unpack_from(
                self._map, base
            )
            if seq0 % 2:  # write in progress
                time.sleep(0.001)
                continue
            payload = bytes(
                self._map[base + _HEADER.size: base + _HEADER.size + length]
            )
            seq1 = _HEADER.unpack_from(self._map, base)[0]
            if seq0 != seq1:
                continue
            if inflight == 0 and not length:
                return None
            return {
                "inflight": inflight,
                "last_activity": activity,
                "request": payload.decode("utf-8", "replace"),
            }
        return None

    def close(self) -> None:
        self._map.close()


class LedgerSlot:
    """The worker-side writer view of one ledger slot."""

    def __init__(self, shared: mmap.mmap, base: int) -> None:
        self._map = shared
        self._base = base
        self._lock = threading.Lock()
        self._seq = 0
        self._depth = 0
        self._payload = b""

    def _write(self) -> None:
        self._seq += 1  # odd: write in progress
        _HEADER.pack_into(self._map, self._base, self._seq, 0, 0.0, 0)
        payload = self._payload[:_PAYLOAD_MAX]
        self._map[
            self._base + _HEADER.size: self._base + _HEADER.size + len(payload)
        ] = payload
        self._seq += 1  # even: consistent
        _HEADER.pack_into(
            self._map, self._base,
            self._seq, self._depth, time.time(), len(payload),
        )

    def begin(self, digest: str) -> None:
        with self._lock:
            self._depth += 1
            if self._depth == 1 or not self._payload:
                self._payload = digest.encode("utf-8")
            self._write()

    def done(self) -> None:
        with self._lock:
            self._depth = max(0, self._depth - 1)
            if self._depth == 0:
                self._payload = b""
            self._write()


# -- the per-worker request guard ----------------------------------------


class ServeGuard:
    """Quarantine + admission + fault injection around request dispatch.

    Wraps :func:`repro.serve.daemon.handle_request` in each worker (and
    in the single-process daemon when resilience flags are on).  Control
    ops (ping/ready/metrics/...) bypass everything: the health endpoints
    must answer precisely when the data plane is saturated.
    """

    def __init__(
        self,
        *,
        admission: AdmissionControl | None = None,
        plan=None,
        slot: int = 0,
        ledger: LedgerSlot | None = None,
        quarantine=(),
        hang_sleep: float = 90.0,
    ) -> None:
        self.admission = admission
        self.plan = plan if plan is not None and plan.serve_active else None
        self.slot = slot
        self.ledger = ledger
        self.quarantine = frozenset(quarantine)
        self.hang_sleep = hang_sleep

    def _trace_of(self, request: dict) -> str:
        from ..obs import live as obs_live

        return (
            obs_live.normalize_trace_id(request.get("trace"))
            or obs_live.mint_trace_id()
        )

    def _inject(self, request: dict) -> None:
        """Roll the hash-pure serving fault channels for this request."""
        plan = self.plan
        if plan is None:
            return
        key = (
            str(request.get("op", "")),
            str(request.get("domain", "")),
            str(request.get("corpus", "")),
            str(request.get("snapshot", "")),
            self.slot,
        )
        if plan.serve_worker_crash > 0 and fault_roll(
            plan.seed, "serve.worker.crash", *key
        ) < plan.serve_worker_crash:
            os._exit(EXIT_INJECTED_CRASH)
        if plan.serve_worker_hang > 0 and fault_roll(
            plan.seed, "serve.worker.hang", *key
        ) < plan.serve_worker_hang:
            time.sleep(self.hang_sleep)  # wedge past the deadline

    def dispatch(self, service, request: dict, handler) -> dict:
        op = request.get("op")
        if op in CONTROL_OPS:
            return handler(service, request)
        digest = request_digest(request)
        if digest in self.quarantine:
            STATS.inc("serve.quarantined")
            return {
                "ok": False,
                "error": "request quarantined after repeatedly crashing "
                         "its worker",
                "code": "quarantined",
                "trace": self._trace_of(request),
            }
        if self.admission is not None and not self.admission.admit():
            return {
                "ok": False,
                "error": f"overloaded: {self.admission.max_inflight} requests "
                         f"in flight and the admission queue is full",
                "code": "overloaded",
                "retry_after": self.admission.retry_after,
                "trace": self._trace_of(request),
            }
        try:
            if self.ledger is not None:
                self.ledger.begin(digest)
            self._inject(request)
            return handler(service, request)
        finally:
            if self.ledger is not None:
                self.ledger.done()
            if self.admission is not None:
                self.admission.release()


# -- WAL helpers ---------------------------------------------------------


def pending_wal(journal_path) -> list[dict]:
    """``ingest.wal.begin`` records with no later matching commit.

    Matched in order per (snapshot, corpus-set) key, so interleaved
    ingests of different snapshots recover independently.  The journal
    reader already tolerates a torn final line from a killed writer.
    """
    from ..resilience.journal import read_events

    try:
        events = read_events(journal_path)
    except FileNotFoundError:
        return []
    closers = ("ingest.wal.commit", "ingest.wal.failed")
    open_begins: dict[str, list[dict]] = {}
    for event in events:
        kind = event.get("event")
        if kind != "ingest.wal.begin" and kind not in closers:
            continue
        key = json.dumps(
            [event.get("snapshot"), sorted(event.get("corpora") or [])]
        )
        if kind == "ingest.wal.begin":
            open_begins.setdefault(key, []).append(event)
        elif open_begins.get(key):
            # A commit closes the intent — and so does a journaled
            # failure: that error was reported to its caller (or, on a
            # failed replay, journaled for the operator), and silently
            # applying a *rejected* ingest after a restart would be
            # worse than serving the last good maps.  The WAL guards
            # against SIGKILL, where no closing record exists.
            open_begins[key].pop()
    pending = [event for stack in open_begins.values() for event in stack]
    pending.sort(key=lambda event: event.get("ts", 0.0))
    return pending


class FileLock:
    """A blocking inter-process flock (the cross-worker ingest lock)."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._local = threading.local()

    def __enter__(self):
        depth = getattr(self._local, "depth", 0)
        if depth == 0:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            handle = open(self.path, "a+")
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._local.handle = handle
        self._local.depth = depth + 1
        return self

    def __exit__(self, *exc) -> None:
        self._local.depth -= 1
        if self._local.depth == 0:
            handle = self._local.handle
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
            self._local.handle = None


# -- the supervised prefork worker pool ----------------------------------


@dataclass(frozen=True)
class PoolOptions:
    """Supervision knobs, mirroring PR 5's ``SupervisorOptions``."""

    workers: int = 2
    max_restarts: int = 2       # blames per request digest before quarantine
    restart_budget: int = 16    # total replacement workers before giving up
    poll_interval: float = 0.05
    worker_deadline: float = 30.0  # in-flight with no progress -> SIGKILL
    grace: float = 5.0          # SIGTERM -> SIGKILL escalation on shutdown


class WorkerPool:
    """Parent-side supervisor: bind, fork N workers, monitor, restart.

    The parent never touches a request: it binds the listening sockets,
    forks workers that inherit them (each worker is a full
    :class:`~repro.serve.daemon.ServeDaemon` running its own accept
    loop), and then only reaps, blames, restarts, and journals.  A
    worker exiting 0 means a deliberate ``shutdown`` op — the whole
    pool drains and stops.
    """

    def __init__(
        self,
        *,
        service_factory,
        socket_path: str | None = None,
        http_address: tuple[str, int] | None = None,
        journal,
        options: PoolOptions = PoolOptions(),
        plan=None,
        admission_factory=None,
        guard_extra: dict | None = None,
    ) -> None:
        if socket_path is None and http_address is None:
            raise ValueError("the pool needs at least one listener")
        self.service_factory = service_factory
        self.socket_path = socket_path
        self.http_address = http_address
        self.journal = journal
        self.options = options
        self.plan = plan
        self.admission_factory = admission_factory or (
            lambda: AdmissionControl()
        )
        self.guard_extra = dict(guard_extra or {})
        self.ledger = InflightLedger(options.workers)
        self._children: dict[int, int] = {}  # slot -> pid
        self._bound: dict[str, socket.socket] = {}
        self._blame: dict[str, int] = {}
        self._quarantine: set[str] = set()
        self._restarts = 0
        self._stop = threading.Event()
        self._rc = 0

    # -- listeners -------------------------------------------------------

    def _bind(self) -> None:
        from .daemon import bind_tcp, bind_unix

        if self.socket_path is not None:
            self._bound["socket"] = bind_unix(self.socket_path)
        if self.http_address is not None:
            self._bound["http"] = bind_tcp(*self.http_address)

    # -- children --------------------------------------------------------

    def _spawn(self, slot: int) -> int:
        pid = os.fork()
        if pid == 0:
            code = EXIT_WORKER_ERROR
            try:
                code = self._worker_main(slot)
            except SystemExit as exit_:  # argparse/daemon-internal exits
                code = int(exit_.code or 0)
            except BaseException:
                import traceback

                traceback.print_exc()
            finally:
                os._exit(code)
        self._children[slot] = pid
        return pid

    def _worker_main(self, slot: int) -> int:
        """Runs in the forked child: build a daemon on the inherited fds."""
        from .daemon import ServeDaemon

        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        service = self.service_factory()
        guard = ServeGuard(
            admission=self.admission_factory(),
            plan=self.plan,
            slot=slot,
            ledger=self.ledger.slot(slot),
            quarantine=self._quarantine,
            hang_sleep=max(60.0, 3 * self.options.worker_deadline),
            **self.guard_extra,
        )
        daemon = ServeDaemon(
            service,
            socket_path=self.socket_path,
            http_address=self.http_address,
            bound_sockets=self._bound,
            guard=guard,
            owns_socket_path=False,
        )
        self.journal.append(
            "serve.worker.start", worker=slot, pid=os.getpid(),
        )
        service.recover()
        return daemon.run()

    # -- supervision -----------------------------------------------------

    def _blame_crash(self, slot: int, status: int) -> None:
        exit_code = (
            os.waitstatus_to_exitcode(status)
            if hasattr(os, "waitstatus_to_exitcode") else status
        )
        record = self.ledger.read(slot)
        blamed = record["request"] if record else None
        self.journal.append(
            "serve.worker.lost",
            worker=slot,
            pid=self._children[slot],
            exit=exit_code,
            request=blamed or "",
        )
        if blamed:
            self._blame[blamed] = self._blame.get(blamed, 0) + 1
            if (
                self._blame[blamed] >= self.options.max_restarts
                and blamed not in self._quarantine
            ):
                self._quarantine.add(blamed)
                self.journal.append(
                    "serve.request.quarantined",
                    request=blamed,
                    failures=self._blame[blamed],
                )
        # Clear the dead worker's slot so the replacement starts clean.
        self.ledger.slot(slot).done()

    def _check_hangs(self) -> None:
        now = time.time()
        for slot, pid in list(self._children.items()):
            record = self.ledger.read(slot)
            if record is None or record["inflight"] == 0:
                continue
            if now - record["last_activity"] > self.options.worker_deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

    def run(self) -> int:
        self._bind()
        self.journal.append(
            "serve.start",
            pid=os.getpid(),
            workers=self.options.workers,
            socket=self.socket_path or "",
            http=(
                f"{self.http_address[0]}:{self.http_address[1]}"
                if self.http_address else ""
            ),
        )
        for slot in range(self.options.workers):
            self._spawn(slot)
        self.journal.append("serve.ready", workers=self.options.workers)
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_args: self._stop.set()
                )
            except ValueError:
                pass  # not the main thread (embedded/test use)
        try:
            while not self._stop.is_set():
                self._reap()
                if self._stop.is_set():
                    break
                self._check_hangs()
                self._stop.wait(self.options.poll_interval)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._teardown()
        return self._rc

    def _reap(self) -> None:
        for slot, pid in list(self._children.items()):
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                done, status = pid, 0
            if done == 0:
                continue
            exit_code = (
                os.waitstatus_to_exitcode(status)
                if hasattr(os, "waitstatus_to_exitcode") else status
            )
            if exit_code == 0:
                # Deliberate shutdown (the `shutdown` op or SIGTERM to
                # the worker): drain the whole pool.
                del self._children[slot]
                self._stop.set()
                return
            self._blame_crash(slot, status)
            del self._children[slot]
            self._restarts += 1
            if self._restarts > self.options.restart_budget:
                self.journal.append(
                    "serve.stop",
                    reason="restart budget exhausted",
                    restarts=self._restarts,
                )
                self._rc = 3
                self._stop.set()
                return
            self._spawn(slot)
            self.journal.append(
                "serve.worker.restart",
                worker=slot,
                pid=self._children[slot],
                restarts=self._restarts,
            )

    def _teardown(self) -> None:
        for pid in self._children.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.options.grace
        remaining = dict(self._children)
        while remaining and time.monotonic() < deadline:
            for slot, pid in list(remaining.items()):
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid
                if done:
                    del remaining[slot]
            if remaining:
                time.sleep(0.02)
        for pid in remaining.values():
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        self._children.clear()
        for sock in self._bound.values():
            try:
                sock.close()
            except OSError:
                pass
        self._bound.clear()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            except OSError as error:
                if error.errno != errno.ENOENT:
                    pass
        self.journal.append("serve.stop", restarts=self._restarts)
        self.ledger.close()
