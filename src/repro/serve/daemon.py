"""Daemon front-ends and clients for :class:`InferenceService`.

Two transports share one dispatch table:

* **Unix socket** (``--socket PATH``) — newline-delimited JSON requests
  (``{"op": "who-has", "domain": ...}``) with matching
  ``{"ok": true, "result": ...}`` / ``{"ok": false, "error", "code"}``
  replies; connections are persistent, one request per line.
* **HTTP** (``--http HOST:PORT``) — ``POST /rpc`` with the same JSON
  body, plus convenience ``GET`` routes (``/healthz``, ``/status``,
  ``/metrics``, ``/who-has?domain=...``, ``/provider-stats``).

Shutdown (SIGTERM/SIGINT or the ``shutdown`` op, used by ``repro serve
stop``) is graceful: in-flight requests finish, then ``--metrics-out``
and ``--manifest-out`` documents are written with the daemon's ``serve``
section (per-endpoint latency histograms, block-cache hit rates).
"""

from __future__ import annotations

import http.client
import json
import signal
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from .service import InferenceService, ServiceError

_GET_OPS = {
    "/healthz": "ping",
    "/status": "status",
    "/metrics": "metrics",
    "/who-has": "who-has",
    "/provider-stats": "provider-stats",
    "/explain": "explain",
}

_HTTP_STATUS = {
    "not-found": 404,
    "bad-request": 400,
    "no-artifact": 409,
    "no-store": 409,
    "corrupt": 500,
    "internal": 500,
    "unknown-op": 400,
}


def handle_request(service: InferenceService, request: dict) -> dict:
    """Dispatch one RPC request dict to the service; never raises."""
    op = request.get("op")
    try:
        if op == "ping":
            result = {"pong": True}
        elif op == "who-has":
            result = service.who_has(
                request["domain"], request.get("corpus"), request.get("snapshot")
            )
        elif op == "provider-stats":
            result = service.provider_stats(
                request.get("corpus"), request.get("snapshot")
            )
        elif op == "explain":
            result = service.explain(
                request["domain"], request.get("corpus"), request.get("snapshot")
            )
        elif op == "ingest":
            result = service.ingest(
                request.get("snapshot"),
                request.get("corpus"),
                jobs=request.get("jobs"),
            )
        elif op == "status":
            result = service.status()
        elif op == "metrics":
            result = service.metrics()
        elif op == "shutdown":
            return {"ok": True, "result": {"stopping": True}, "_shutdown": True}
        else:
            return {
                "ok": False,
                "error": f"unknown op {op!r}",
                "code": "unknown-op",
            }
    except KeyError as error:
        return {
            "ok": False,
            "error": f"missing request field {error.args[0]!r} for op {op!r}",
            "code": "bad-request",
        }
    except ServiceError as error:
        return {"ok": False, "error": str(error), "code": error.code}
    except Exception as error:  # the daemon must outlive bad requests
        return {
            "ok": False,
            "error": f"{type(error).__name__}: {error}",
            "code": "internal",
        }
    return {"ok": True, "result": result}


class ServeDaemon:
    """Lifecycle owner: servers, signal handling, shutdown artifacts."""

    def __init__(
        self,
        service: InferenceService,
        *,
        socket_path: str | None = None,
        http_address: tuple[str, int] | None = None,
        metrics_out: str | None = None,
        manifest_out: str | None = None,
        argv: list[str] | None = None,
    ) -> None:
        if socket_path is None and http_address is None:
            raise ServiceError(
                "the daemon needs at least one listener "
                "(--socket PATH and/or --http HOST:PORT)",
                code="bad-request",
            )
        self.service = service
        self.socket_path = socket_path
        self.http_address = http_address
        self.metrics_out = metrics_out
        self.manifest_out = manifest_out
        self.argv = argv
        self.started = time.monotonic()
        self._stop = threading.Event()
        self._servers: list = []
        self._threads: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self.socket_path is not None:
            self._servers.append(self._make_socket_server())
        if self.http_address is not None:
            self._servers.append(self._make_http_server())
        for server in self._servers:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._stop.wait(timeout)

    def run(self) -> int:
        """start() + block until stopped, then tear down and export."""
        self.start()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_args: self.stop()
                )
            except ValueError:
                pass  # not the main thread (embedded/test use)
        try:
            self._stop.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.shutdown()
        return 0

    def shutdown(self) -> None:
        for server in self._servers:
            server.shutdown()
            server.server_close()
        for thread in self._threads:
            thread.join(timeout=5)
        self._servers.clear()
        self._threads.clear()
        if self.socket_path is not None:
            Path(self.socket_path).unlink(missing_ok=True)
        self._export()

    def _export(self) -> None:
        serve_section = self.service.metrics()
        if self.metrics_out:
            from ..obs import metrics as obs_metrics

            document = obs_metrics.collect()
            document["serve"] = serve_section
            with open(self.metrics_out, "w") as stream:
                json.dump(document, stream, indent=2, sort_keys=True)
                stream.write("\n")
        if self.manifest_out:
            from ..obs import manifest as obs_manifest

            document = obs_manifest.build_manifest(
                config=self.service.config,
                store=self.service.store,
                experiments=["serve"],
                elapsed_seconds=time.monotonic() - self.started,
                argv=self.argv,
                serve=serve_section,
            )
            obs_manifest.write_manifest(self.manifest_out, document)

    # -- listeners -------------------------------------------------------

    def _make_socket_server(self):
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for line in self.rfile:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        request = json.loads(line)
                    except ValueError as error:
                        response = {
                            "ok": False,
                            "error": f"bad JSON: {error}",
                            "code": "bad-request",
                        }
                    else:
                        response = handle_request(daemon.service, request)
                    stopping = response.pop("_shutdown", False)
                    self.wfile.write(json.dumps(response).encode() + b"\n")
                    self.wfile.flush()
                    if stopping:
                        daemon.stop()
                        return

        class Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        path = Path(self.socket_path)
        if path.exists():
            # A previous daemon may have died without cleanup; a live one
            # would still answer — probe before stealing the address.
            try:
                request_socket(str(path), {"op": "ping"}, timeout=1.0)
            except OSError:
                path.unlink()
            else:
                raise ServiceError(
                    f"socket {path} is already served by a live daemon",
                    code="bad-request",
                )
        path.parent.mkdir(parents=True, exist_ok=True)
        return Server(str(path), Handler)

    def _make_http_server(self):
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # quiet by default
                pass

            def _reply(self, response: dict) -> None:
                stopping = response.pop("_shutdown", False)
                status = 200
                if not response.get("ok", False):
                    status = _HTTP_STATUS.get(response.get("code"), 500)
                body = json.dumps(response).encode() + b"\n"
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                if stopping:
                    daemon.stop()

            def do_GET(self) -> None:
                parts = urlsplit(self.path)
                op = _GET_OPS.get(parts.path)
                if op is None:
                    self._reply(
                        {"ok": False, "error": f"no route {parts.path}",
                         "code": "not-found"}
                    )
                    return
                request = {"op": op}
                for key, values in parse_qs(parts.query).items():
                    request[key] = values[-1]
                self._reply(handle_request(daemon.service, request))

            def do_POST(self) -> None:
                if urlsplit(self.path).path != "/rpc":
                    self._reply(
                        {"ok": False, "error": f"no route {self.path}",
                         "code": "not-found"}
                    )
                    return
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = json.loads(self.rfile.read(length) or b"{}")
                except ValueError as error:
                    self._reply(
                        {"ok": False, "error": f"bad JSON: {error}",
                         "code": "bad-request"}
                    )
                    return
                self._reply(handle_request(daemon.service, request))

        server = ThreadingHTTPServer(self.http_address, Handler)
        server.daemon_threads = True
        return server


# -- clients ------------------------------------------------------------


def request_socket(path: str, payload: dict, timeout: float = 60.0) -> dict:
    """One JSON-lines RPC round-trip over a unix socket."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks))


def request_http(host: str, port: int, payload: dict, timeout: float = 60.0) -> dict:
    """One ``POST /rpc`` round-trip against the HTTP listener."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload)
        connection.request(
            "POST", "/rpc", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


def rpc(target, payload: dict, timeout: float = 60.0) -> dict:
    """Round-trip against a ``("socket", path)`` / ``("http", host, port)``."""
    if target[0] == "socket":
        return request_socket(target[1], payload, timeout)
    if target[0] == "http":
        return request_http(target[1], target[2], payload, timeout)
    raise ValueError(f"unknown rpc target: {target!r}")
