"""Daemon front-ends and clients for :class:`InferenceService`.

Two transports share one dispatch table:

* **Unix socket** (``--socket PATH``) — newline-delimited JSON requests
  (``{"op": "who-has", "domain": ...}``) with matching
  ``{"ok": true, "result": ...}`` / ``{"ok": false, "error", "code"}``
  replies; connections are persistent, one request per line.
* **HTTP** (``--http HOST:PORT``) — ``POST /rpc`` with the same JSON
  body, plus convenience ``GET`` routes (``/healthz``, ``/status``,
  ``/metrics.json``, ``/who-has?domain=...``, ``/provider-stats``,
  ``/trace?id=...``) and the Prometheus scrape endpoint ``GET /metrics``
  (text exposition straight off the live sliding-window sketches).

Every request carries a trace id (client-supplied ``trace`` field or
server-minted), echoed back in the response; ``repro serve trace <id>``
replays that request's span tree from the daemon's bounded ring.

Shutdown (SIGTERM/SIGINT or the ``shutdown`` op, used by ``repro serve
stop``) is graceful: in-flight requests finish, then ``--metrics-out``
and ``--manifest-out`` documents are written with the daemon's ``serve``
section (per-endpoint latency histograms, block-cache hit rates).  With
``--flush-interval N`` the same documents are also rewritten atomically
(tmp + rename) every N seconds while the daemon runs, so a SIGKILL loses
at most one interval of telemetry.
"""

from __future__ import annotations

import http.client
import json
import signal
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..obs import live as obs_live
from .service import InferenceService, ServiceError

_GET_OPS = {
    "/healthz": "ping",
    "/readyz": "ready",
    "/status": "status",
    "/metrics.json": "metrics",
    "/who-has": "who-has",
    "/provider-stats": "provider-stats",
    "/explain": "explain",
    "/trace": "trace",
}

_HTTP_STATUS = {
    "not-found": 404,
    "bad-request": 400,
    "no-artifact": 409,
    "no-store": 409,
    "no-telemetry": 404,
    "corrupt": 500,
    "internal": 500,
    "unknown-op": 400,
    "overloaded": 503,
    "not-ready": 503,
    "circuit-open": 503,
    "quarantined": 400,
    "deadline": 504,
}


def handle_request(service: InferenceService, request: dict) -> dict:
    """Dispatch one RPC request dict to the service; never raises.

    Every request runs under a trace id — the client's ``trace`` field
    when supplied, a server-minted one otherwise — and every response
    echoes it back as ``trace``, so a caller can replay the request's
    span tree with ``repro serve trace <id>``.
    """
    op = request.get("op")
    trace_id = (
        obs_live.normalize_trace_id(request.get("trace"))
        or obs_live.mint_trace_id()
    )
    try:
        with obs_live.trace_context(trace_id):
            if op == "ping":
                result = {"pong": True}
            elif op == "ready":
                result = service.readiness()
                if not result.get("ready", True):
                    return {
                        "ok": False,
                        "error": "not ready: ingest WAL recovery pending",
                        "code": "not-ready",
                        "retry_after": 0.25,
                        "trace": trace_id,
                    }
            elif op == "who-has":
                result = service.who_has(
                    request["domain"], request.get("corpus"), request.get("snapshot")
                )
            elif op == "provider-stats":
                result = service.provider_stats(
                    request.get("corpus"), request.get("snapshot")
                )
            elif op == "explain":
                result = service.explain(
                    request["domain"], request.get("corpus"), request.get("snapshot")
                )
            elif op == "ingest":
                result = service.ingest(
                    request.get("snapshot"),
                    request.get("corpus"),
                    jobs=request.get("jobs"),
                )
            elif op == "status":
                result = service.status()
            elif op == "metrics":
                result = service.metrics()
            elif op == "trace":
                result = service.trace(request.get("id"))
            elif op == "shutdown":
                return {
                    "ok": True,
                    "result": {"stopping": True},
                    "trace": trace_id,
                    "_shutdown": True,
                }
            else:
                return {
                    "ok": False,
                    "error": f"unknown op {op!r}",
                    "code": "unknown-op",
                    "trace": trace_id,
                }
    except KeyError as error:
        return {
            "ok": False,
            "error": f"missing request field {error.args[0]!r} for op {op!r}",
            "code": "bad-request",
            "trace": trace_id,
        }
    except ServiceError as error:
        response = {
            "ok": False,
            "error": str(error),
            "code": error.code,
            "trace": trace_id,
        }
        if getattr(error, "retry_after", None) is not None:
            response["retry_after"] = error.retry_after
        return response
    except Exception as error:  # the daemon must outlive bad requests
        return {
            "ok": False,
            "error": f"{type(error).__name__}: {error}",
            "code": "internal",
            "trace": trace_id,
        }
    return {"ok": True, "result": result, "trace": trace_id}


class ServeDaemon:
    """Lifecycle owner: servers, signal handling, shutdown artifacts."""

    def __init__(
        self,
        service: InferenceService,
        *,
        socket_path: str | None = None,
        http_address: tuple[str, int] | None = None,
        metrics_out: str | None = None,
        manifest_out: str | None = None,
        argv: list[str] | None = None,
        flush_interval: float | None = None,
        bound_sockets: dict | None = None,
        guard=None,
        owns_socket_path: bool = True,
    ) -> None:
        if socket_path is None and http_address is None:
            raise ServiceError(
                "the daemon needs at least one listener "
                "(--socket PATH and/or --http HOST:PORT)",
                code="bad-request",
            )
        self.service = service
        self.socket_path = socket_path
        self.http_address = http_address
        self.metrics_out = metrics_out
        self.manifest_out = manifest_out
        self.argv = argv
        self.flush_interval = flush_interval
        # Pool workers inherit already-bound listeners from the parent
        # and must not unlink the shared socket path on their own exit.
        self.bound_sockets = bound_sockets or {}
        self.guard = guard
        self.owns_socket_path = owns_socket_path
        self.started = time.monotonic()
        self._stop = threading.Event()
        self._servers: list = []
        self._threads: list[threading.Thread] = []
        self._flusher: threading.Thread | None = None
        if self.guard is not None and getattr(service, "admission", None) is None:
            service.admission = self.guard.admission

    def dispatch(self, request: dict) -> dict:
        """Handle one request, through the resilience guard when present."""
        if self.guard is not None:
            return self.guard.dispatch(self.service, request, handle_request)
        return handle_request(self.service, request)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self.socket_path is not None:
            self._servers.append(self._make_socket_server())
        if self.http_address is not None:
            self._servers.append(self._make_http_server())
        for server in self._servers:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.flush_interval and (self.metrics_out or self.manifest_out):
            self._flusher = threading.Thread(
                target=self._flush_loop, daemon=True
            )
            self._flusher.start()

    def _flush_loop(self) -> None:
        """Periodically write the shutdown artifacts via tmp+rename.

        Atomic replacement means a SIGKILL mid-write loses at most one
        interval of telemetry, never the file: readers see either the
        previous complete snapshot or the new one.
        """
        while not self._stop.wait(self.flush_interval):
            try:
                self._export()
            except Exception:
                # A failed flush (disk full, racing rename) must not
                # take the daemon down; the next tick retries.
                pass

    def stop(self) -> None:
        self._stop.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._stop.wait(timeout)

    def run(self) -> int:
        """start() + block until stopped, then tear down and export."""
        self.start()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_args: self.stop()
                )
            except ValueError:
                pass  # not the main thread (embedded/test use)
        try:
            self._stop.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.shutdown()
        return 0

    def shutdown(self) -> None:
        # Stop the flush loop first: shutdown's own _export() below must
        # not race a still-ticking flusher over the same tmp filename.
        self._stop.set()
        for server in self._servers:
            server.shutdown()
            server.server_close()
        for thread in self._threads:
            thread.join(timeout=5)
        if self._flusher is not None:
            self._flusher.join(timeout=5)
            self._flusher = None
        self._servers.clear()
        self._threads.clear()
        if self.socket_path is not None and self.owns_socket_path:
            Path(self.socket_path).unlink(missing_ok=True)
        self._export()

    def _export(self) -> None:
        serve_section = self.service.metrics()
        if self.metrics_out:
            from ..obs import metrics as obs_metrics

            document = obs_metrics.collect()
            document["serve"] = serve_section
            obs_live.write_json_atomic(self.metrics_out, document)
        if self.manifest_out:
            from ..obs import manifest as obs_manifest

            document = obs_manifest.build_manifest(
                config=self.service.config,
                store=self.service.store,
                experiments=["serve"],
                elapsed_seconds=time.monotonic() - self.started,
                argv=self.argv,
                serve=serve_section,
            )
            obs_live.write_json_atomic(self.manifest_out, document)

    # -- listeners -------------------------------------------------------

    def _make_socket_server(self):
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for line in self.rfile:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        request = json.loads(line)
                    except ValueError as error:
                        response = {
                            "ok": False,
                            "error": f"bad JSON: {error}",
                            "code": "bad-request",
                        }
                    else:
                        response = daemon.dispatch(request)
                    stopping = response.pop("_shutdown", False)
                    self.wfile.write(json.dumps(response).encode() + b"\n")
                    self.wfile.flush()
                    if stopping:
                        daemon.stop()
                        return

        class Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        bound = self.bound_sockets.get("socket")
        if bound is not None:
            # Adopt the parent-bound listener (worker-pool fork): build
            # the server without binding, swap in the inherited socket.
            server = Server(self.socket_path, Handler, bind_and_activate=False)
            server.socket.close()
            server.socket = bound
            return server
        _reclaim_unix_path(self.socket_path)
        return Server(self.socket_path, Handler)

    def _make_http_server(self):
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # quiet by default
                pass

            def _reply(self, response: dict) -> None:
                stopping = response.pop("_shutdown", False)
                status = 200
                if not response.get("ok", False):
                    status = _HTTP_STATUS.get(response.get("code"), 500)
                body = json.dumps(response).encode() + b"\n"
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                if response.get("retry_after") is not None:
                    self.send_header(
                        "Retry-After", str(response["retry_after"])
                    )
                self.end_headers()
                self.wfile.write(body)
                if stopping:
                    daemon.stop()

            def do_GET(self) -> None:
                parts = urlsplit(self.path)
                if parts.path == "/metrics":
                    # The Prometheus scrape endpoint: text exposition,
                    # not the JSON RPC envelope (use /metrics.json or the
                    # `metrics` op for the structured document).
                    try:
                        body = daemon.service.prometheus().encode()
                    except ServiceError as error:
                        self._reply(
                            {"ok": False, "error": str(error),
                             "code": error.code}
                        )
                        return
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                op = _GET_OPS.get(parts.path)
                if op is None:
                    self._reply(
                        {"ok": False, "error": f"no route {parts.path}",
                         "code": "not-found"}
                    )
                    return
                request = {"op": op}
                for key, values in parse_qs(parts.query).items():
                    request[key] = values[-1]
                self._reply(daemon.dispatch(request))

            def do_POST(self) -> None:
                if urlsplit(self.path).path != "/rpc":
                    self._reply(
                        {"ok": False, "error": f"no route {self.path}",
                         "code": "not-found"}
                    )
                    return
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = json.loads(self.rfile.read(length) or b"{}")
                except ValueError as error:
                    self._reply(
                        {"ok": False, "error": f"bad JSON: {error}",
                         "code": "bad-request"}
                    )
                    return
                self._reply(daemon.dispatch(request))

        bound = self.bound_sockets.get("http")
        if bound is not None:
            server = ThreadingHTTPServer(
                self.http_address, Handler, bind_and_activate=False
            )
            server.socket.close()
            server.socket = bound
            # server_bind normally fills these in; do it by hand.
            host, port = bound.getsockname()[:2]
            server.server_name = host
            server.server_port = port
        else:
            server = ThreadingHTTPServer(self.http_address, Handler)
        server.daemon_threads = True
        return server


# -- listener binding (shared with the worker pool) ----------------------


def _reclaim_unix_path(socket_path: str) -> None:
    """Unlink a stale socket path, refusing to steal a live daemon's."""
    path = Path(socket_path)
    if path.exists():
        # A previous daemon may have died without cleanup; a live one
        # would still answer — probe before stealing the address.
        try:
            request_socket(str(path), {"op": "ping"}, timeout=1.0)
        except OSError:
            path.unlink()
        else:
            raise ServiceError(
                f"socket {path} is already served by a live daemon",
                code="bad-request",
            )
    path.parent.mkdir(parents=True, exist_ok=True)


def bind_unix(socket_path: str) -> socket.socket:
    """Bind + listen a unix-stream socket (for pre-fork inheritance)."""
    _reclaim_unix_path(socket_path)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(socket_path)
    sock.listen(128)
    return sock


def bind_tcp(host: str, port: int) -> socket.socket:
    """Bind + listen a TCP socket (for pre-fork inheritance)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


# -- clients ------------------------------------------------------------


def request_socket(path: str, payload: dict, timeout: float = 60.0) -> dict:
    """One JSON-lines RPC round-trip over a unix socket."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks))


def request_http(host: str, port: int, payload: dict, timeout: float = 60.0) -> dict:
    """One ``POST /rpc`` round-trip against the HTTP listener."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload)
        connection.request(
            "POST", "/rpc", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


def rpc(target, payload: dict, timeout: float = 60.0, retry=None) -> dict:
    """Round-trip against a ``("socket", path)`` / ``("http", host, port)``.

    *retry* (a :class:`repro.serve.resilience.RetryPolicy`) turns on
    bounded backoff for connect-refused/timeout/torn replies and
    ``overloaded``/``not-ready`` responses.
    """
    if retry is not None:
        from .resilience import rpc_retry

        return rpc_retry(target, payload, timeout=timeout, policy=retry)
    if target[0] == "socket":
        return request_socket(target[1], payload, timeout)
    if target[0] == "http":
        return request_http(target[1], target[2], payload, timeout)
    raise ValueError(f"unknown rpc target: {target!r}")
