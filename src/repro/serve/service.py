"""The transport-agnostic serving core: lookups, stats, explain, ingest.

:class:`InferenceService` is what both front-ends (unix socket, HTTP) and
the in-process CLI path drive.  Its query side reads *only* the columnar
store — raw payload bytes decoded into :class:`~repro.store.SnapshotView`
/ :class:`~repro.store.ResultView` blocks under an LRU — so a warm start
is milliseconds: no world build, no measurement gather, no pipeline run.
The ingest side merges new snapshots through
:class:`~repro.engine.incremental.IncrementalInferencer`, re-inferring
only changed domains while keeping the live map (and the write-through
store artifact) bit-identical to a from-scratch batch run.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from datetime import date as date_type

from ..core.types import DomainInference
from ..engine.stats import STATS
from ..obs import live as obs_live
from ..obs import provenance as obs_provenance
from ..obs import trace as obs_trace
from ..store import ArtifactStore, CodecError, ResultView, SnapshotView, encode_result
from ..world.build import WorldConfig
from ..world.entities import DatasetTag
from ..world.population import GOV_FIRST_SNAPSHOT, NUM_SNAPSHOTS, SNAPSHOT_DATES
from .blocks import BlockCache


class ServiceError(Exception):
    """A client-visible failure (unknown domain, missing artifact, ...).

    ``code`` is machine-readable for RPC responses; every ServiceError
    maps to CLI exit status 2 (user/state error, not a crash).
    ``retry_after`` (seconds), when set, rides along in the RPC response
    (and the HTTP Retry-After header) so shed/tripped clients back off
    for as long as the server actually needs.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "error",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


# -- latency histograms -------------------------------------------------

_LATENCY_BASE = 1e-4  # 100 µs: below this, a lookup is "free"
_LATENCY_BUCKETS = 28  # log2 steps: top bucket covers ~3.7 hours


class LatencyRecorder:
    """Fixed-size log2 histogram with cumulative percentile readout."""

    __slots__ = ("counts", "count", "total", "worst")

    def __init__(self) -> None:
        self.counts = [0] * _LATENCY_BUCKETS
        self.count = 0
        self.total = 0.0
        self.worst = 0.0

    def observe(self, seconds: float) -> None:
        ratio = seconds / _LATENCY_BASE
        if ratio <= 1.0:
            index = 0
        else:
            mantissa, exponent = math.frexp(ratio)
            # Smallest i with 2**i >= ratio (frexp: ratio = m * 2**e).
            index = exponent if mantissa > 0.5 else exponent - 1
            index = min(index, _LATENCY_BUCKETS - 1)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.worst:
            self.worst = seconds

    def percentile(self, fraction: float) -> float:
        """Upper-bound latency (seconds) at *fraction* of observations."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target:
                return _LATENCY_BASE * (2 ** index)
        return _LATENCY_BASE * (2 ** (_LATENCY_BUCKETS - 1))

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(1e3 * self.total / self.count, 4) if self.count else 0.0,
            "p50_ms": round(1e3 * self.percentile(0.50), 4),
            "p99_ms": round(1e3 * self.percentile(0.99), 4),
            "max_ms": round(1e3 * self.worst, 4),
        }


# -- the service --------------------------------------------------------


class InferenceService:
    """Query + incremental-ingest API over one world's artifact store."""

    def __init__(
        self,
        config: WorldConfig,
        store: ArtifactStore | None,
        *,
        jobs: int = 1,
        cache_blocks: int = 32,
        faults_key: str | None = None,
        slo=None,
        trace_ring: int = obs_live.DEFAULT_RING,
        trace_jsonl: str | None = None,
        journal=None,
        breaker=None,
        fault_plan=None,
        watch_generation: bool = False,
    ) -> None:
        if store is None:
            raise ServiceError(
                "serving requires an artifact store (set REPRO_CACHE or pass "
                "--cache-dir); there is nothing to serve without one",
                code="no-store",
            )
        self.config = config
        self.store = store
        self.jobs = max(1, int(jobs))
        self.faults_key = faults_key
        self.started = time.monotonic()
        self.blocks = BlockCache(cache_blocks)
        self._lock = threading.RLock()
        self._latency: dict[str, LatencyRecorder] = {}
        self._latency_lock = threading.Lock()
        self._states: dict[DatasetTag, object] = {}  # -> IncrementalState
        self._ingest_log: list[dict] = []
        self._ctx = None  # lazy StudyContext; ingest gathers only
        self._inferencer = None
        # -- resilience (all optional; absent == pre-pool behavior) ------
        self.journal = journal           # RunJournal carrying the ingest WAL
        self.breaker = breaker           # IngestBreaker (circuit breaker)
        self.fault_plan = fault_plan     # chaos-channel rolls (ingest.crash)
        self.admission = None            # set by the daemon from its guard
        self.watch_generation = watch_generation
        self._ready = journal is None    # WAL recovery flips this on
        self._ingesting = False          # queries bypass live state mid-ingest
        self._replaying = False          # suppress WAL begin + chaos on replay
        self._generation = -1
        self._generation_checked = 0.0
        self._ingest_flock = None
        if journal is not None:
            from .resilience import FileLock

            self._ingest_flock = FileLock(journal.run_dir / "ingest.lock")
        self.live: obs_live.LiveTelemetry | None = None
        if obs_live.live_enabled():
            self.live = obs_live.LiveTelemetry(
                ring=trace_ring, jsonl_path=trace_jsonl, slo=slo
            )
            # The ring tracer doubles as the process tracer, so existing
            # engine/store spans from each request land in the ring and
            # nest under the request's root span by containment.
            obs_trace.install(self.live.tracer)
        if self.live is not None and breaker is not None:
            # A tripped breaker means stale answers: fire the PR 8
            # `degraded` gauge alongside any SLO burn.
            self.live.add_degraded_cause(lambda: breaker.stale)

    # -- observation -----------------------------------------------------

    @contextmanager
    def _observe(self, endpoint: str):
        started = time.perf_counter()
        error = False
        try:
            if self.live is not None:
                span = self.live.request_span(
                    endpoint, obs_live.current_trace_id()
                )
                with span:
                    yield
            else:
                yield
        except BaseException:
            error = True
            raise
        finally:
            elapsed = time.perf_counter() - started
            with self._latency_lock:
                recorder = self._latency.get(endpoint)
                if recorder is None:
                    recorder = self._latency[endpoint] = LatencyRecorder()
                recorder.observe(elapsed)
            if self.live is not None:
                self.live.observe(endpoint, elapsed, error=error)

    # -- name / snapshot resolution --------------------------------------

    @staticmethod
    def resolve_dataset(raw: str | None) -> DatasetTag | None:
        """A corpus tag from its name, or None to mean "search all"."""
        if raw is None:
            return None
        for dataset in DatasetTag:
            if dataset.value == raw.lower():
                return dataset
        known = ", ".join(dataset.value for dataset in DatasetTag)
        raise ServiceError(
            f"unknown corpus {raw!r}; expected one of: {known}", code="bad-request"
        )

    @staticmethod
    def resolve_snapshot(raw) -> int:
        """A snapshot index from None (latest), an index, or an ISO date."""
        if raw is None:
            return NUM_SNAPSHOTS - 1
        if isinstance(raw, int):
            index = raw
        else:
            text = str(raw)
            try:
                index = int(text)
            except ValueError:
                try:
                    wanted = date_type.fromisoformat(text)
                    index = SNAPSHOT_DATES.index(wanted)
                except ValueError:
                    known = ", ".join(day.isoformat() for day in SNAPSHOT_DATES)
                    raise ServiceError(
                        f"unknown snapshot {raw!r}; use an index "
                        f"(0-{NUM_SNAPSHOTS - 1}) or one of: {known}",
                        code="bad-request",
                    ) from None
        if not 0 <= index < NUM_SNAPSHOTS:
            raise ServiceError(
                f"snapshot index {index} out of range 0-{NUM_SNAPSHOTS - 1}",
                code="bad-request",
            )
        return index

    @staticmethod
    def covered(dataset: DatasetTag, snapshot_index: int) -> bool:
        if dataset is DatasetTag.GOV:
            return snapshot_index >= GOV_FIRST_SNAPSHOT
        return 0 <= snapshot_index < NUM_SNAPSHOTS

    @staticmethod
    def first_snapshot(dataset: DatasetTag) -> int:
        return GOV_FIRST_SNAPSHOT if dataset is DatasetTag.GOV else 0

    # -- cross-worker cache coherence ------------------------------------

    _GENERATION_THROTTLE = 0.025  # seconds between generation-file stats

    def _generation_path(self):
        return self.store.root / "serve.gen"

    def _refresh_generation(self) -> None:
        """Drop cached blocks when a sibling worker published an ingest.

        Pool workers share the store but not the block cache; the
        publishing worker bumps ``serve.gen`` (atomic tmp+rename) and
        every other worker notices here — throttled to one stat per
        ~25ms so the hot query path stays hot.
        """
        if not self.watch_generation:
            return
        now = time.monotonic()
        if now - self._generation_checked < self._GENERATION_THROTTLE:
            return
        self._generation_checked = now
        try:
            with open(self._generation_path(), encoding="utf-8") as handle:
                generation = json.load(handle).get("generation", 0)
        except (OSError, ValueError):
            generation = 0
        if generation != self._generation:
            self._generation = generation
            self.blocks.clear()

    def _bump_generation(self) -> None:
        if not self.watch_generation:
            return
        self._generation += 1
        obs_live.write_json_atomic(
            self._generation_path(), {"generation": self._generation}
        )

    def _stale_flag(self, payload: dict) -> dict:
        """Mark an answer stale while the ingest breaker is tripped.

        The key is only added when tripped, so the normal-path response
        bytes are unchanged from the breaker-less daemon.
        """
        if self.breaker is not None and self.breaker.stale:
            payload["stale"] = True
        return payload

    # -- store-block access ----------------------------------------------

    def _result_view(self, dataset: DatasetTag, snapshot_index: int):
        def load():
            with obs_trace.span(
                "block.load", cat="serve", kind="result",
                corpus=dataset.value, snapshot=snapshot_index,
            ):
                payload = self.store.result_payload(
                    self.config, dataset, snapshot_index, self.faults_key
                )
                return ResultView(payload) if payload is not None else None

        try:
            return self.blocks.get(("result", dataset.value, snapshot_index), load)
        except CodecError as error:
            raise ServiceError(
                f"corrupt stored inference map for {dataset.value}"
                f"[s{snapshot_index}]: {error}",
                code="corrupt",
            ) from error

    def _snapshot_view(self, dataset: DatasetTag, snapshot_index: int):
        def load():
            with obs_trace.span(
                "block.load", cat="serve", kind="measurements",
                corpus=dataset.value, snapshot=snapshot_index,
            ):
                payload = self.store.measurement_payload(
                    self.config, dataset, snapshot_index, self.faults_key
                )
                return SnapshotView(payload) if payload is not None else None

        try:
            return self.blocks.get(
                ("measurements", dataset.value, snapshot_index), load
            )
        except CodecError as error:
            raise ServiceError(
                f"corrupt stored measurements for {dataset.value}"
                f"[s{snapshot_index}]: {error}",
                code="corrupt",
            ) from error

    def _lookup(
        self, dataset: DatasetTag, snapshot_index: int, domain: str
    ) -> tuple[DomainInference | None, bool, str]:
        """(inference, map-exists, source) for one (corpus, snapshot).

        The live incremental state is consulted first: after an ingest it
        IS the map (the store holds identical bytes, but the live dict
        needs no decode).  While an ingest is mutating that state in
        place the store is authoritative instead — its artifacts flip
        atomically (tmp+rename), so a racing query sees the old or the
        new map, never a torn one.
        """
        state = self._states.get(dataset)
        if (
            state is not None
            and not self._ingesting
            and state.snapshot_index == snapshot_index
        ):
            return state.result.inferences.get(domain), True, "live"
        view = self._result_view(dataset, snapshot_index)
        if view is None:
            return None, False, "store"
        return view.get(domain), True, "store"

    # -- query endpoints -------------------------------------------------

    def who_has(self, domain: str, corpus=None, snapshot=None) -> dict:
        """The provider attribution for *domain* at one snapshot."""
        with self._observe("who-has"):
            self._refresh_generation()
            dataset = self.resolve_dataset(corpus)
            snapshot_index = self.resolve_snapshot(snapshot)
            candidates = [dataset] if dataset is not None else list(DatasetTag)
            any_map = False
            for candidate in candidates:
                if not self.covered(candidate, snapshot_index):
                    continue
                inference, exists, source = self._lookup(
                    candidate, snapshot_index, domain
                )
                any_map = any_map or exists
                if inference is None:
                    continue
                return self._stale_flag({
                    "domain": domain,
                    "corpus": candidate.value,
                    "snapshot": snapshot_index,
                    "date": SNAPSHOT_DATES[snapshot_index].isoformat(),
                    "status": inference.status.value,
                    "providers": dict(inference.attributions),
                    "sole_provider": inference.sole_provider_id,
                    "examined": inference.examined,
                    "source": source,
                })
            where = dataset.value if dataset is not None else "any corpus"
            if not any_map:
                raise ServiceError(
                    f"no stored inference map for {where} at snapshot "
                    f"{snapshot_index} — seed the store (run the sweep) or "
                    f"`serve ingest` first",
                    code="no-artifact",
                )
            raise ServiceError(
                f"{domain}: not present in {where} at snapshot {snapshot_index}",
                code="not-found",
            )

    def provider_stats(self, corpus=None, snapshot=None) -> dict:
        """Aggregate status counts and provider weights for one corpus."""
        with self._observe("provider-stats"):
            self._refresh_generation()
            dataset = self.resolve_dataset(corpus) or DatasetTag.ALEXA
            snapshot_index = self.resolve_snapshot(snapshot)
            if not self.covered(dataset, snapshot_index):
                raise ServiceError(
                    f"corpus {dataset.value} has no coverage at snapshot "
                    f"{snapshot_index}",
                    code="bad-request",
                )
            state = self._states.get(dataset)
            if (
                state is not None
                and not self._ingesting
                and state.snapshot_index == snapshot_index
            ):
                stats = _stats_from_inferences(state.result.inferences)
                source = "live"
            else:
                view = self._result_view(dataset, snapshot_index)
                if view is None:
                    raise ServiceError(
                        f"no stored inference map for {dataset.value} at "
                        f"snapshot {snapshot_index}",
                        code="no-artifact",
                    )
                stats = view.provider_stats()
                source = "store"
            return self._stale_flag({
                "corpus": dataset.value,
                "snapshot": snapshot_index,
                "date": SNAPSHOT_DATES[snapshot_index].isoformat(),
                "source": source,
                **stats,
            })

    def explain(self, domain: str, corpus=None, snapshot=None) -> dict:
        """The full provenance record (audit trail) for one domain."""
        with self._observe("explain"):
            self._refresh_generation()
            dataset = self.resolve_dataset(corpus)
            snapshot_index = self.resolve_snapshot(snapshot)
            candidates = [dataset] if dataset is not None else list(DatasetTag)
            for candidate in candidates:
                if not self.covered(candidate, snapshot_index):
                    continue
                inference, _exists, _source = self._lookup(
                    candidate, snapshot_index, domain
                )
                if inference is None:
                    continue
                measurement = None
                snapshot_view = self._snapshot_view(candidate, snapshot_index)
                if snapshot_view is not None and domain in snapshot_view:
                    measurement = snapshot_view.materialize({domain})[domain]
                return self._stale_flag(obs_provenance.provenance_record(
                    inference,
                    corpus=candidate.value,
                    snapshot_index=snapshot_index,
                    snapshot_date=SNAPSHOT_DATES[snapshot_index],
                    measurement=measurement,
                ))
            where = dataset.value if dataset is not None else "any stored corpus"
            raise ServiceError(
                f"{domain}: no stored inference in {where} at snapshot "
                f"{snapshot_index}",
                code="not-found",
            )

    # -- ingestion -------------------------------------------------------

    def _context(self):
        """The lazy gather context (builds the world on first use)."""
        if self._ctx is None:
            from ..engine import EngineOptions
            from ..experiments.common import StudyContext

            with STATS.timer("serve.context.build"):
                self._ctx = StudyContext.create(
                    self.config,
                    engine=EngineOptions(jobs=self.jobs),
                    store=self.store,
                    faults=None,
                )
        return self._ctx

    def _delta_inferencer(self):
        if self._inferencer is None:
            from ..engine.incremental import IncrementalInferencer

            ctx = self._context()
            self._inferencer = IncrementalInferencer(
                ctx.world.trust_store,
                ctx.company_map,
                psl=ctx.world.psl,
                identity_cache=ctx.identity_cache,
            )
        return self._inferencer

    def _measurement_payload(self, dataset: DatasetTag, snapshot_index: int) -> bytes:
        payload = self.store.measurement_payload(
            self.config, dataset, snapshot_index, self.faults_key
        )
        if payload is not None:
            return payload
        # Not yet measured: gather through the lazy context, which writes
        # the snapshot through to this store, then re-read the bytes.
        ctx = self._context()
        ctx.measurements(dataset, snapshot_index)
        payload = self.store.measurement_payload(
            self.config, dataset, snapshot_index, self.faults_key
        )
        if payload is None:
            raise ServiceError(
                f"gather produced no stored snapshot for {dataset.value}"
                f"[s{snapshot_index}]",
                code="no-artifact",
            )
        return payload

    def ingest(self, snapshot=None, corpus=None, jobs: int | None = None) -> dict:
        """Merge one snapshot into the live maps, delta-inferring changes.

        Gathers (or loads) the snapshot's measurements per corpus, then
        either bootstraps the incremental state (first contact) or runs a
        delta round re-inferring only domains whose evidence changed.
        Results write through to the store bit-identical to a batch run.
        """
        with self._observe("ingest"), self._lock:
            if self.breaker is not None and not self.breaker.allow():
                raise ServiceError(
                    "ingest circuit breaker is open after repeated failures; "
                    "serving stale maps until the cooldown expires",
                    code="circuit-open",
                    retry_after=self.breaker.retry_after(),
                )
            started = time.perf_counter()
            snapshot_index = self.resolve_snapshot(snapshot)
            dataset = self.resolve_dataset(corpus)
            targets = [
                target
                for target in (
                    [dataset] if dataset is not None else list(DatasetTag)
                )
                if self.covered(target, snapshot_index)
            ]
            if not targets:
                raise ServiceError(
                    f"no corpus covers snapshot {snapshot_index}",
                    code="bad-request",
                )
            with self._wal(snapshot_index, targets):
                reports = [
                    self._ingest_one(target, snapshot_index, jobs)
                    for target in targets
                ]
            summary = {
                "snapshot": snapshot_index,
                "date": SNAPSHOT_DATES[snapshot_index].isoformat(),
                "reports": reports,
            }
            self._ingest_log.append(summary)
            if self.live is not None:
                self.live.note_ingest(
                    snapshot_index, time.perf_counter() - started
                )
            return summary

    @contextmanager
    def _wal(self, snapshot_index: int, targets):
        """The crash-safe write-ahead envelope around one ingest.

        The intent record (``ingest.wal.begin``: snapshot + corpora +
        config digest) is fsynced before any serving state mutates;
        ``ingest.wal.commit`` lands only after every corpus published
        through the store's atomic tmp+rename.  A begin without a commit
        is exactly what :meth:`recover` replays — and replay writes no
        second begin, so its commit closes the original intent.  The
        surrounding flock serializes ingest across pool workers; the
        ``_ingesting`` flag diverts racing queries in THIS process to
        the store so they never read a half-mutated live state.
        """
        corpora = [target.value for target in targets]
        if self.journal is None:
            self._ingesting = True
            try:
                yield
            except Exception:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
            finally:
                self._ingesting = False
            return
        from ..resilience.journal import config_digest

        with self._ingest_flock:
            if not self._replaying:
                self.journal.append(
                    "ingest.wal.begin",
                    snapshot=snapshot_index,
                    corpora=corpora,
                    config=config_digest(self.config, self.faults_key),
                )
            self._crash_point(snapshot_index, "begin")
            self._ingesting = True
            try:
                yield
            except Exception as error:
                self.journal.append(
                    "ingest.wal.failed",
                    snapshot=snapshot_index,
                    corpora=corpora,
                    error=str(error),
                    replay=self._replaying,
                )
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            else:
                self._crash_point(snapshot_index, "pre-commit")
                self.journal.append(
                    "ingest.wal.commit",
                    snapshot=snapshot_index,
                    corpora=corpora,
                    replay=self._replaying,
                )
                if self.breaker is not None:
                    self.breaker.record_success()
            finally:
                self._ingesting = False

    def _crash_point(self, snapshot_index: int, stage: str) -> None:
        """Roll the hash-pure ``ingest.crash`` channel (SIGKILL-like).

        Suppressed during recovery replay — otherwise the same roll that
        killed the original ingest would kill every replay of it.
        """
        plan = self.fault_plan
        if plan is None or self._replaying or plan.ingest_crash <= 0:
            return
        from ..faults.inject import fault_roll
        from ..resilience.supervisor import EXIT_INJECTED_CRASH

        if (
            fault_roll(plan.seed, "ingest.crash", snapshot_index, stage)
            < plan.ingest_crash
        ):
            import os

            os._exit(EXIT_INJECTED_CRASH)

    def recover(self) -> dict:
        """Replay WAL intents that never committed; mark the service ready.

        Runs under the cross-worker flock at worker startup.  Each
        pending ``ingest.wal.begin`` is re-executed through the normal
        ingest path (idempotent: results overwrite byte-identical store
        artifacts), journaled as ``ingest.wal.replay``; a replay that
        fails is journaled ``ingest.wal.failed`` and the daemon still
        comes up, serving the last good maps.
        """
        if self.journal is None:
            self._ready = True
            return {"replayed": 0, "failed": 0}
        from .resilience import pending_wal

        replayed = failed = 0
        with self._ingest_flock:
            for event in pending_wal(self.journal.path):
                corpora = [
                    value for value in (event.get("corpora") or []) if value
                ]
                self.journal.append(
                    "ingest.wal.replay",
                    snapshot=event.get("snapshot"),
                    corpora=corpora,
                    replay=True,
                )
                corpus = corpora[0] if len(corpora) == 1 else None
                self._replaying = True
                try:
                    self.ingest(event.get("snapshot"), corpus)
                except Exception:
                    failed += 1  # _wal already journaled ingest.wal.failed
                else:
                    replayed += 1
                finally:
                    self._replaying = False
            self._ready = True
        return {"replayed": replayed, "failed": failed}

    def readiness(self) -> dict:
        """The ``/readyz`` payload: has WAL recovery completed?"""
        return {"ready": self._ready, "ingests": len(self._ingest_log)}

    def _ingest_one(
        self, dataset: DatasetTag, snapshot_index: int, jobs: int | None
    ) -> dict:
        state = self._states.get(dataset)
        if state is not None and snapshot_index <= state.snapshot_index:
            raise ServiceError(
                f"{dataset.value}: snapshot {snapshot_index} is not ahead of "
                f"the live state (at {state.snapshot_index}); ingest moves "
                f"forward only",
                code="bad-request",
            )
        view = SnapshotView(self._measurement_payload(dataset, snapshot_index))
        inferencer = self._delta_inferencer()
        jobs = jobs or self.jobs
        if state is None:
            prior = self._latest_prior_snapshot(dataset, snapshot_index)
            if prior is None:
                state, report = inferencer.bootstrap(
                    view, snapshot_index=snapshot_index, jobs=jobs
                )
                self._states[dataset] = state
                self._publish(dataset, snapshot_index, state)
                return {"corpus": dataset.value, **report.as_dict()}
            prior_view = SnapshotView(
                self._measurement_payload(dataset, prior)
            )
            state, _boot = inferencer.bootstrap(
                prior_view, snapshot_index=prior, jobs=jobs
            )
            self._states[dataset] = state
        report = inferencer.ingest(
            state, view, snapshot_index=snapshot_index, jobs=jobs
        )
        self._publish(dataset, snapshot_index, state)
        return {"corpus": dataset.value, **report.as_dict()}

    def ingest_view(
        self,
        dataset: DatasetTag,
        view: SnapshotView,
        snapshot_index: int,
        jobs: int | None = None,
    ) -> dict:
        """Ingest an already-decoded snapshot view (tests and benchmarks)."""
        with self._observe("ingest"), self._lock:
            started = time.perf_counter()
            inferencer = self._delta_inferencer()
            jobs = jobs or self.jobs
            state = self._states.get(dataset)
            self._ingesting = True
            try:
                if state is None:
                    state, report = inferencer.bootstrap(
                        view, snapshot_index=snapshot_index, jobs=jobs
                    )
                    self._states[dataset] = state
                else:
                    report = inferencer.ingest(
                        state, view, snapshot_index=snapshot_index, jobs=jobs
                    )
                self._publish(dataset, snapshot_index, state)
            finally:
                self._ingesting = False
            if self.live is not None:
                self.live.note_ingest(
                    snapshot_index, time.perf_counter() - started
                )
            return {"corpus": dataset.value, **report.as_dict()}

    def _latest_prior_snapshot(
        self, dataset: DatasetTag, snapshot_index: int
    ) -> int | None:
        """The newest stored measurement snapshot before *snapshot_index*.

        Bootstrapping there (instead of at the new snapshot) primes the
        delta state so THIS ingest and every later one runs incremental.
        """
        for index in range(snapshot_index - 1, self.first_snapshot(dataset) - 1, -1):
            payload = self.store.measurement_payload(
                self.config, dataset, index, self.faults_key
            )
            if payload is not None:
                return index
        return None

    def _publish(self, dataset: DatasetTag, snapshot_index: int, state) -> None:
        """Write the live result through to the store and drop stale blocks."""
        self.store.save_result(
            self.config, dataset, snapshot_index, state.result, self.faults_key
        )
        self._crash_point(snapshot_index, f"publish:{dataset.value}")
        self.blocks.invalidate(("result", dataset.value, snapshot_index))
        self._bump_generation()
        STATS.inc("serve.ingest.published")

    def result_digest(self, dataset: DatasetTag) -> str:
        """Hex digest of the live result's canonical encoding (equivalence)."""
        import hashlib

        state = self._states.get(dataset)
        if state is None:
            raise ServiceError(
                f"{dataset.value}: no live state (ingest first)", code="bad-request"
            )
        return hashlib.sha256(encode_result(state.result)).hexdigest()

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        with self._observe("status"):
            live = {
                dataset.value: {
                    "snapshot": state.snapshot_index,
                    "domains": len(state.domains),
                }
                for dataset, state in self._states.items()
            }
            return {
                "uptime_s": round(time.monotonic() - self.started, 3),
                "seed": self.config.seed,
                "store": str(self.store.root),
                "blocks_cached": len(self.blocks),
                "live": live,
                "world_built": self._ctx is not None,
                "ingests": len(self._ingest_log),
                "ready": self._ready,
                "degraded": (
                    self.live.degraded()
                    if self.live is not None
                    else (self.breaker.stale if self.breaker else False)
                ),
            }

    def metrics(self) -> dict:
        """The PR 3-style serve section: latency histograms + cache rates."""
        with self._latency_lock:
            endpoints = {
                name: recorder.snapshot()
                for name, recorder in sorted(self._latency.items())
            }
        hits = STATS.counters.get("serve.block.hit", 0)
        misses = STATS.counters.get("serve.block.miss", 0)
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "endpoints": endpoints,
            "block_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
                "entries": len(self.blocks),
                "capacity": self.blocks.capacity,
            },
            "ingests": [
                {
                    "snapshot": entry["snapshot"],
                    "reports": entry["reports"],
                }
                for entry in self._ingest_log[-16:]
            ],
            "live": self.live.snapshot() if self.live is not None else None,
            "degraded": (
                self.live.degraded()
                if self.live is not None
                else (self.breaker.stale if self.breaker else False)
            ),
            **self._resilience_section(),
        }

    def _resilience_section(self) -> dict:
        """The optional ``resilience`` block of the serve metrics section.

        Empty (and absent from the document) when no resilience feature
        is on, so pre-pool metrics documents are byte-identical.
        """
        if (
            self.admission is None
            and self.breaker is None
            and self.journal is None
        ):
            return {}
        section: dict = {
            "ready": self._ready,
            "quarantined": STATS.counters.get("serve.quarantined", 0),
        }
        if self.admission is not None:
            section.update(self.admission.snapshot())
        if self.breaker is not None:
            section["breaker"] = self.breaker.state()
        if self.journal is not None:
            section["wal"] = {
                "journal": str(self.journal.path),
                "run": self.journal.run_id,
            }
        return {"resilience": section}

    def prometheus(self) -> str:
        """The ``GET /metrics`` Prometheus text exposition."""
        if self.live is None:
            raise ServiceError(
                "live telemetry is disabled (REPRO_LIVE=off); /metrics has "
                "nothing to scrape",
                code="no-telemetry",
            )
        text = self.live.render_prometheus()
        extra: list[str] = []
        if self.admission is not None:
            snap = self.admission.snapshot()
            extra += [
                "# HELP repro_serve_inflight Requests currently executing.",
                "# TYPE repro_serve_inflight gauge",
                f"repro_serve_inflight {snap['inflight']}",
                "# HELP repro_serve_queue_depth Requests waiting for an "
                "admission slot.",
                "# TYPE repro_serve_queue_depth gauge",
                f"repro_serve_queue_depth {snap['queue_depth']}",
                "# HELP repro_serve_shed_total Requests shed by admission "
                "control.",
                "# TYPE repro_serve_shed_total counter",
                f"repro_serve_shed_total {snap['shed']}",
            ]
        if self.breaker is not None:
            extra += [
                "# HELP repro_serve_breaker_open 1 while the ingest circuit "
                "breaker is tripped (answers are stale).",
                "# TYPE repro_serve_breaker_open gauge",
                f"repro_serve_breaker_open {1 if self.breaker.stale else 0}",
            ]
        restarts = STATS.counters.get("serve.worker.restarts", 0)
        if restarts:
            extra += [
                "# HELP repro_serve_worker_restarts_total Crashed or hung "
                "workers replaced by the pool supervisor.",
                "# TYPE repro_serve_worker_restarts_total counter",
                f"repro_serve_worker_restarts_total {restarts}",
            ]
        if not extra:
            return text
        return text.rstrip("\n") + "\n" + "\n".join(extra) + "\n"

    def trace(self, trace_id) -> dict:
        """Replay one traced request's span tree from the ring."""
        cleaned = obs_live.normalize_trace_id(trace_id)
        if cleaned is None:
            raise ServiceError("trace requires a trace id", code="bad-request")
        if self.live is None:
            raise ServiceError(
                "live telemetry is disabled (REPRO_LIVE=off); no spans are "
                "being recorded",
                code="no-telemetry",
            )
        tree = self.live.trace_tree(cleaned)
        if tree is None:
            raise ServiceError(
                f"trace {cleaned!r}: not in the span ring (expired or never "
                f"seen; the ring keeps the most recent "
                f"~{obs_live.DEFAULT_RING} spans)",
                code="not-found",
            )
        return tree


def _stats_from_inferences(inferences: dict[str, DomainInference]) -> dict:
    """The live-map twin of :meth:`ResultView.provider_stats`."""
    statuses: dict[str, int] = {}
    weights: dict[str, float] = {}
    backing: dict[str, int] = {}
    for inference in inferences.values():
        statuses[inference.status.value] = statuses.get(inference.status.value, 0) + 1
        for provider, weight in inference.attributions.items():
            weights[provider] = weights.get(provider, 0.0) + weight
            backing[provider] = backing.get(provider, 0) + 1
    top = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    return {
        "domains": len(inferences),
        "statuses": dict(sorted(statuses.items())),
        "providers": len(weights),
        "top": [
            {"provider": provider, "weight": round(weight, 4), "domains": backing[provider]}
            for provider, weight in top[:20]
        ],
    }
