"""Columnar binary codec for measurement snapshots and inference results.

The store's value types are deeply repetitive: the same MX names, IP
addresses, AS records, scan captures, and certificates back thousands of
domains in every corpus and snapshot.  Naive pickling writes each object
graph reference-by-reference; this codec instead writes **interned
tables** (strings, dates, certificates, scan records, AS records,
observations, MX rows) followed by packed index columns, then compresses
the whole payload.  The result is several times smaller than a pickle of
the same snapshot and decodes by constructing each unique object exactly
once, sharing it across every referencing domain — the same sharing the
memoizing gatherer produces.

Decoding is exact: round-tripped snapshots compare equal (and ``repr``
-identical) to the originals, so inferences computed from a decoded
snapshot are byte-identical to inferences computed from a fresh gather.

Layout stability is versioned by :data:`CODEC_VERSION`; the store folds it
into both the cache key and the on-disk envelope, so a codec change
cleanly invalidates old entries instead of misdecoding them.
"""

from __future__ import annotations

import sys
import zlib
from array import array
from datetime import date
from hashlib import blake2b
from itertools import accumulate

from ..core.misident import CorrectionStats
from ..core.pipeline import PipelineResult
from ..core.types import (
    DomainInference,
    DomainStatus,
    EvidenceSource,
    IPIdentity,
    MXIdentity,
)
from ..measure.caida import ASInfo
from ..measure.censys import Port25State, PortScanRecord
from ..measure.dataset import DomainMeasurement, IPObservation, MXData
from ..tls.cert import Certificate

CODEC_VERSION = 2

# Enum codes are positional; reordering a member is a schema change and
# must bump CODEC_VERSION.
_PORT_STATES = tuple(Port25State)
_EVIDENCE_SOURCES = tuple(EvidenceSource)
_DOMAIN_STATUSES = tuple(DomainStatus)

_NATIVE_LITTLE = sys.byteorder == "little"


class CodecError(ValueError):
    """Raised when a payload cannot be decoded (truncated, garbage)."""


# ---------------------------------------------------------------------------
# binary buffers
# ---------------------------------------------------------------------------


class _Writer:
    """Append-only little-endian buffer with length-prefixed columns."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u32(self, value: int) -> None:
        self._parts.append(value.to_bytes(4, "little"))

    def u64(self, value: int) -> None:
        self._parts.append(value.to_bytes(8, "little"))

    def blob(self, data: bytes) -> None:
        self.u64(len(data))
        self._parts.append(bytes(data))

    def u8s(self, values: list[int]) -> None:
        self.blob(bytes(values))

    def _packed(self, typecode: str, values: list) -> None:
        arr = array(typecode, values)
        if not _NATIVE_LITTLE:  # pragma: no cover - big-endian hosts only
            arr.byteswap()
        self.blob(arr.tobytes())

    def u32s(self, values: list[int]) -> None:
        self._packed("I", values)

    def i32s(self, values: list[int]) -> None:
        self._packed("i", values)

    def u64s(self, values: list[int]) -> None:
        self._packed("Q", values)

    def f64s(self, values: list[float]) -> None:
        self._packed("d", values)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Bounds-checked mirror of :class:`_Writer`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise CodecError("truncated payload")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "little")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "little")

    def blob(self) -> bytes:
        return self._take(self.u64())

    def u8s(self) -> bytes:
        return self.blob()

    def _unpacked(self, typecode: str) -> array:
        raw = self.blob()
        arr = array(typecode)
        if len(raw) % arr.itemsize:
            raise CodecError(f"misaligned {typecode!r} column")
        arr.frombytes(raw)
        if not _NATIVE_LITTLE:  # pragma: no cover - big-endian hosts only
            arr.byteswap()
        return arr

    def u32s(self) -> array:
        return self._unpacked("I")

    def i32s(self) -> array:
        return self._unpacked("i")

    def u64s(self) -> array:
        return self._unpacked("Q")

    def f64s(self) -> array:
        return self._unpacked("d")


# ---------------------------------------------------------------------------
# interned tables
# ---------------------------------------------------------------------------


class _StringTable:
    """Unique strings; reference 0 is reserved for None."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def ref(self, value: str | None) -> int:
        if value is None:
            return 0
        idx = self._index.get(value)
        if idx is None:
            idx = len(self._index) + 1
            self._index[value] = idx
        return idx

    def write(self, writer: _Writer) -> None:
        encoded = [value.encode("utf-8") for value in self._index]
        writer.u32s([len(item) for item in encoded])
        writer.blob(b"".join(encoded))

    @staticmethod
    def read(reader: _Reader) -> list[str | None]:
        lengths = reader.u32s()
        blob = reader.blob()
        if sum(lengths) != len(blob):
            raise CodecError("string table length mismatch")
        offsets = list(accumulate(lengths, initial=0))
        decoded = blob.decode("utf-8")
        table: list[str | None] = [None]
        if len(decoded) == len(blob):
            # All-ASCII fast path: byte offsets are character offsets, so
            # one bulk decode plus str slices replaces a decode per entry.
            table += [
                decoded[offsets[i]:offsets[i + 1]] for i in range(len(lengths))
            ]
        else:
            table += [
                blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                for i in range(len(lengths))
            ]
        return table


class _DateTable:
    """Unique dates, stored as proleptic-Gregorian ordinals."""

    def __init__(self) -> None:
        self._index: dict[date, int] = {}

    def ref(self, value: date) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self._index)
            self._index[value] = idx
        return idx

    def write(self, writer: _Writer) -> None:
        writer.u32s([value.toordinal() for value in self._index])

    @staticmethod
    def read(reader: _Reader) -> list[date]:
        try:
            return [date.fromordinal(ordinal) for ordinal in reader.u32s()]
        except ValueError as error:
            raise CodecError(f"bad date ordinal: {error}") from error


class _Interner:
    """Value-interned rows: ``ref`` encodes an object once, 0 means None.

    Interning is by value (equal objects share one row), with an identity
    fast path: the memoizing gatherer already shares observation objects
    across domains, so most references resolve through ``id()`` without
    re-hashing a deep dataclass graph.  ``_index`` keeps every keyed
    object alive, so ids cannot be recycled while the encoder runs.
    """

    __slots__ = ("_index", "_by_id", "_encode_row")

    def __init__(self, encode_row) -> None:
        self._index: dict[object, int] = {}
        self._by_id: dict[int, int] = {}
        self._encode_row = encode_row

    def ref(self, obj) -> int:
        if obj is None:
            return 0
        oid = id(obj)
        idx = self._by_id.get(oid)
        if idx is not None:
            return idx
        idx = self._index.get(obj)
        if idx is None:
            idx = len(self._index) + 1
            self._index[obj] = idx
            self._encode_row(obj)
        self._by_id[oid] = idx
        return idx


class _IdInterner:
    """Identity-interned rows: one row per distinct *object*, 0 means None.

    For deep object graphs (observations, MX rows) a value dict would
    recursively hash the whole subtree on every first sight; the memoizing
    gatherer already shares equal objects by identity, so identity
    interning gets the same dedup at dict-of-int cost.  Distinct-but-equal
    objects (memoization off, cross-shard duplicates from process workers)
    merely occupy extra rows — decoded values are identical either way,
    and zlib flattens most of the redundancy.  The ``_keep`` list pins
    every keyed object alive so ids cannot be recycled mid-encode.
    """

    __slots__ = ("_by_id", "_keep", "_encode_row")

    def __init__(self, encode_row) -> None:
        self._by_id: dict[int, int] = {}
        self._keep: list[object] = []
        self._encode_row = encode_row

    def ref(self, obj) -> int:
        if obj is None:
            return 0
        oid = id(obj)
        idx = self._by_id.get(oid)
        if idx is None:
            idx = len(self._by_id) + 1
            self._by_id[oid] = idx
            self._keep.append(obj)
            self._encode_row(obj)
        return idx


def _prefix_slices(counts) -> list[tuple[int, int]]:
    """(start, stop) pairs into a flat column for per-row count columns."""
    slices = []
    offset = 0
    for count in counts:
        slices.append((offset, offset + count))
        offset += count
    return slices


def _enum_code(members: tuple, value) -> int:
    return members.index(value)


_PORT_STATE_CODES = {member: code for code, member in enumerate(_PORT_STATES)}
_EVIDENCE_SOURCE_CODES = {
    member: code for code, member in enumerate(_EVIDENCE_SOURCES)
}
_DOMAIN_STATUS_CODES = {member: code for code, member in enumerate(_DOMAIN_STATUSES)}


def _enum_value(members: tuple, code: int):
    try:
        return members[code]
    except IndexError as error:
        raise CodecError(f"bad enum code {code}") from error


def _stable_sig(parts: tuple) -> int:
    """64-bit deterministic signature of a tuple of primitives.

    ``repr`` of str/int/None tuples is unambiguous and stable across
    processes (unlike built-in ``hash``, which is salted), so embedded
    evidence signatures written by one process compare correctly against
    signatures computed by another.  Collision odds are ~2^-64 per pair —
    acceptable for a change-detection signal that is backed by an
    end-to-end equivalence test (``tests/serve/test_incremental.py``).
    """
    digest = blake2b(repr(parts).encode("utf-8", "surrogatepass"), digest_size=8)
    return int.from_bytes(digest.digest(), "little")


def _compress(writer: _Writer) -> bytes:
    # Level 1 keeps write-through overhead low on the cold path; the
    # index-heavy payload is already small, so heavier levels buy only a
    # few percent of size for 2-4x the compression time.
    return zlib.compress(writer.getvalue(), 1)


def _decompress(payload: bytes) -> _Reader:
    try:
        return _Reader(zlib.decompress(payload))
    except zlib.error as error:
        raise CodecError(f"undecompressable payload: {error}") from error


# ---------------------------------------------------------------------------
# measurement snapshots
# ---------------------------------------------------------------------------


def encode_measurements(measurements: dict[str, DomainMeasurement]) -> bytes:
    """Encode one (corpus, snapshot) measurement dict, order-preserving.

    Alongside the interned tables, a per-domain **evidence signature**
    column is computed bottom-up (cert content with validity bit, scan,
    AS, observation, MX) and appended to the payload, so delta detection
    (:meth:`repro.store.delta.SnapshotView.signatures`) is an array read
    instead of a full column walk.  Signatures are deterministic across
    processes (:func:`_stable_sig`); measurement dates are excluded
    except through each certificate's validity-window bit — see the
    :mod:`repro.store.delta` module docstring for the exact semantics.
    """
    strings = _StringTable()
    dates = _DateTable()

    cert_cn: list[int] = []
    cert_issuer: list[int] = []
    cert_self_signed: list[int] = []
    cert_not_before: list[int] = []
    cert_not_after: list[int] = []
    cert_serial: list[int] = []
    cert_san_counts: list[int] = []
    cert_san_flat: list[int] = []

    cert_sigs: list[int] = [0]  # index 0 is the None sentinel

    def cert_row(cert: Certificate) -> None:
        cert_cn.append(strings.ref(cert.subject_cn))
        cert_issuer.append(strings.ref(cert.issuer))
        cert_self_signed.append(1 if cert.self_signed else 0)
        cert_not_before.append(dates.ref(cert.not_before))
        cert_not_after.append(dates.ref(cert.not_after))
        cert_serial.append(cert.serial)
        cert_san_counts.append(len(cert.sans))
        cert_san_flat.extend([strings.ref(san) for san in cert.sans])
        cert_sigs.append(_stable_sig((
            cert.subject_cn,
            cert.sans,
            cert.issuer,
            1 if cert.self_signed else 0,
            cert.not_before.toordinal(),
            cert.not_after.toordinal(),
            cert.serial,
        )))

    certs = _Interner(cert_row)

    scan_addr: list[int] = []
    scan_date: list[int] = []
    scan_state: list[int] = []
    scan_banner: list[int] = []
    scan_ehlo: list[int] = []
    scan_starttls: list[int] = []
    scan_cert: list[int] = []

    scan_sigs: list[int] = [0]

    def scan_row(scan: PortScanRecord) -> None:
        scan_addr.append(strings.ref(scan.address))
        scan_date.append(dates.ref(scan.scanned_on))
        state_code = _PORT_STATE_CODES[scan.state]
        scan_state.append(state_code)
        scan_banner.append(strings.ref(scan.banner))
        scan_ehlo.append(strings.ref(scan.ehlo))
        scan_starttls.append(1 if scan.starttls else 0)
        cert = scan.certificate
        cert_ref = certs.ref(cert)
        scan_cert.append(cert_ref)
        valid = (
            None
            if cert is None
            else 1 if cert.not_before <= scan.scanned_on <= cert.not_after else 0
        )
        scan_sigs.append(_stable_sig((
            state_code,
            scan.banner,
            scan.ehlo,
            1 if scan.starttls else 0,
            cert_sigs[cert_ref],
            valid,
        )))

    scans = _IdInterner(scan_row)

    as_asn: list[int] = []
    as_name: list[int] = []
    as_country: list[int] = []

    as_sigs: list[int] = [0]

    def as_row(info: ASInfo) -> None:
        as_asn.append(info.asn)
        as_name.append(strings.ref(info.name))
        as_country.append(strings.ref(info.country))
        as_sigs.append(_stable_sig((info.asn, info.name, info.country)))

    asinfos = _IdInterner(as_row)

    obs_addr: list[int] = []
    obs_as: list[int] = []
    obs_scan: list[int] = []

    as_by_id = asinfos._by_id
    as_ref = asinfos.ref
    scan_by_id = scans._by_id
    scan_ref = scans.ref

    obs_sigs: list[int] = [0]

    def obs_row(obs: IPObservation) -> None:
        obs_addr.append(strings.ref(obs.address))
        info = obs.as_info
        as_idx = (as_by_id.get(id(info)) or as_ref(info)) if info else 0
        obs_as.append(as_idx)
        scan = obs.scan
        scan_idx = (scan_by_id.get(id(scan)) or scan_ref(scan)) if scan else 0
        obs_scan.append(scan_idx)
        obs_sigs.append(
            _stable_sig((obs.address, as_sigs[as_idx], scan_sigs[scan_idx]))
        )

    observations = _IdInterner(obs_row)

    mx_name: list[int] = []
    mx_preference: list[int] = []
    mx_ip_counts: list[int] = []
    mx_ip_flat: list[int] = []

    # Hot-path interning is inlined as ``index.get(...) or ref(...)``:
    # references are 1-based (0 is the None sentinel), so a dict hit is
    # always truthy and the miss path falls through to the full ref().
    string_index = strings._index
    obs_by_id = observations._by_id
    obs_ref = observations.ref

    mx_sigs: list[int] = [0]

    def mx_row(mx: MXData) -> None:
        name = mx.name
        mx_name.append(string_index.get(name) or strings.ref(name))
        mx_preference.append(mx.preference)
        ips = mx.ips
        count = len(ips)
        mx_ip_counts.append(count)
        if count == 1:
            ip = ips[0]
            ref = obs_by_id.get(id(ip)) or obs_ref(ip)
            mx_ip_flat.append(ref)
            ip_sigs: tuple[int, ...] = (obs_sigs[ref],)
        elif count:
            refs = [obs_by_id.get(id(ip)) or obs_ref(ip) for ip in ips]
            mx_ip_flat.extend(refs)
            ip_sigs = tuple([obs_sigs[ref] for ref in refs])
        else:
            ip_sigs = ()
        mx_sigs.append(_stable_sig((name, mx.preference, ip_sigs)))

    mx_rows = _IdInterner(mx_row)

    dom_name: list[int] = []
    dom_date: list[int] = []
    dom_mx_counts: list[int] = []
    dom_mx_flat: list[int] = []
    dom_txt_counts: list[int] = []
    dom_txt_flat: list[int] = []
    dom_sig: list[int] = []

    string_ref = strings.ref
    date_ref = dates.ref
    date_index = dates._index
    mx_ref = mx_rows.ref
    mx_by_id = mx_rows._by_id
    # Most domains have one MX and zero-or-one TXT record; a dedicated
    # single-element path skips the per-domain listcomp frame, which at
    # corpus scale costs as much as the interning itself.  Date refs are
    # 0-based (no None sentinel), so they use an explicit None check
    # instead of the ``or`` idiom.
    for measurement in measurements.values():
        dom_name.append(string_ref(measurement.domain))
        day = measurement.measured_on
        day_ref = date_index.get(day)
        dom_date.append(date_ref(day) if day_ref is None else day_ref)
        mx_set = measurement.mx_set
        count = len(mx_set)
        dom_mx_counts.append(count)
        if count == 1:
            mx = mx_set[0]
            ref = mx_by_id.get(id(mx)) or mx_ref(mx)
            dom_mx_flat.append(ref)
            mx_sig_tuple: tuple[int, ...] = (mx_sigs[ref],)
        elif count:
            refs = [mx_by_id.get(id(mx)) or mx_ref(mx) for mx in mx_set]
            dom_mx_flat.extend(refs)
            mx_sig_tuple = tuple([mx_sigs[ref] for ref in refs])
        else:
            mx_sig_tuple = ()
        txt = measurement.txt
        count = len(txt)
        dom_txt_counts.append(count)
        if count == 1:
            record = txt[0]
            dom_txt_flat.append(
                string_index.get(record) or string_ref(record)
            )
        elif count:
            dom_txt_flat.extend(
                [string_index.get(t) or string_ref(t) for t in txt]
            )
        dom_sig.append(_stable_sig((measurement.domain, mx_sig_tuple, txt)))

    writer = _Writer()
    strings.write(writer)
    dates.write(writer)
    writer.u32s(cert_cn)
    writer.u32s(cert_issuer)
    writer.u8s(cert_self_signed)
    writer.u32s(cert_not_before)
    writer.u32s(cert_not_after)
    writer.u64s(cert_serial)
    writer.u32s(cert_san_counts)
    writer.u32s(cert_san_flat)
    writer.u32s(scan_addr)
    writer.u32s(scan_date)
    writer.u8s(scan_state)
    writer.u32s(scan_banner)
    writer.u32s(scan_ehlo)
    writer.u8s(scan_starttls)
    writer.u32s(scan_cert)
    writer.u64s(as_asn)
    writer.u32s(as_name)
    writer.u32s(as_country)
    writer.u32s(obs_addr)
    writer.u32s(obs_as)
    writer.u32s(obs_scan)
    writer.u32s(mx_name)
    writer.i32s(mx_preference)
    writer.u32s(mx_ip_counts)
    writer.u32s(mx_ip_flat)
    writer.u32s(dom_name)
    writer.u32s(dom_date)
    writer.u32s(dom_mx_counts)
    writer.u32s(dom_mx_flat)
    writer.u32s(dom_txt_counts)
    writer.u32s(dom_txt_flat)
    # Trailing columns: decode_measurements ignores them; SnapshotView
    # reads them (or recomputes the same values for payloads that predate
    # them).  Per-domain evidence signatures drive delta detection; per-row
    # certificate signatures let incremental ingest carry certificate
    # grouping metadata across snapshots without materializing the table.
    writer.u64s(dom_sig)
    writer.u64s(cert_sigs[1:])
    return _compress(writer)


def decode_measurements(payload: bytes) -> dict[str, DomainMeasurement]:
    """Rebuild a measurement dict; inverse of :func:`encode_measurements`.

    Any reference beyond its table (a corrupt payload that slipped past
    the envelope checksum) raises :class:`CodecError` via the IndexError
    guards — never a silently wrong object graph.
    """
    reader = _decompress(payload)
    strings = _StringTable.read(reader)
    dates = _DateTable.read(reader)

    try:
        cert_cn = reader.u32s()
        cert_issuer = reader.u32s()
        cert_self_signed = reader.u8s()
        cert_not_before = reader.u32s()
        cert_not_after = reader.u32s()
        cert_serial = reader.u64s()
        cert_san_slices = _prefix_slices(reader.u32s())
        cert_san_flat = reader.u32s()
        certs: list[Certificate | None] = [None]
        for i in range(len(cert_cn)):
            start, stop = cert_san_slices[i]
            certs.append(
                Certificate(
                    subject_cn=strings[cert_cn[i]],
                    sans=tuple([strings[ref] for ref in cert_san_flat[start:stop]]),
                    issuer=strings[cert_issuer[i]],
                    self_signed=bool(cert_self_signed[i]),
                    not_before=dates[cert_not_before[i]],
                    not_after=dates[cert_not_after[i]],
                    serial=cert_serial[i],
                )
            )

        scan_addr = reader.u32s()
        scan_date = reader.u32s()
        scan_state = reader.u8s()
        scan_banner = reader.u32s()
        scan_ehlo = reader.u32s()
        scan_starttls = reader.u8s()
        scan_cert = reader.u32s()
        scans: list[PortScanRecord | None] = [None]
        for i in range(len(scan_addr)):
            scans.append(
                PortScanRecord(
                    address=strings[scan_addr[i]],
                    scanned_on=dates[scan_date[i]],
                    state=_enum_value(_PORT_STATES, scan_state[i]),
                    banner=strings[scan_banner[i]],
                    ehlo=strings[scan_ehlo[i]],
                    starttls=bool(scan_starttls[i]),
                    certificate=certs[scan_cert[i]],
                )
            )

        as_asn = reader.u64s()
        as_name = reader.u32s()
        as_country = reader.u32s()
        asinfos: list[ASInfo | None] = [None]
        for i in range(len(as_asn)):
            asinfos.append(
                ASInfo(
                    asn=as_asn[i],
                    name=strings[as_name[i]],
                    country=strings[as_country[i]],
                )
            )

        obs_addr = reader.u32s()
        obs_as = reader.u32s()
        obs_scan = reader.u32s()
        observations: list[IPObservation | None] = [None]
        for i in range(len(obs_addr)):
            observations.append(
                IPObservation(
                    address=strings[obs_addr[i]],
                    as_info=asinfos[obs_as[i]],
                    scan=scans[obs_scan[i]],
                )
            )

        mx_name = reader.u32s()
        mx_preference = reader.i32s()
        mx_ip_slices = _prefix_slices(reader.u32s())
        mx_ip_flat = reader.u32s()
        mx_rows: list[MXData | None] = [None]
        for i in range(len(mx_name)):
            start, stop = mx_ip_slices[i]
            mx_rows.append(
                MXData(
                    name=strings[mx_name[i]],
                    preference=mx_preference[i],
                    ips=tuple([observations[ref] for ref in mx_ip_flat[start:stop]]),
                )
            )

        dom_name = reader.u32s()
        dom_date = reader.u32s()
        dom_mx_slices = _prefix_slices(reader.u32s())
        dom_mx_flat = reader.u32s()
        dom_txt_slices = _prefix_slices(reader.u32s())
        dom_txt_flat = reader.u32s()

        measurements: dict[str, DomainMeasurement] = {}
        for i in range(len(dom_name)):
            mx_start, mx_stop = dom_mx_slices[i]
            txt_start, txt_stop = dom_txt_slices[i]
            domain = strings[dom_name[i]]
            measurements[domain] = DomainMeasurement(
                domain=domain,
                measured_on=dates[dom_date[i]],
                mx_set=tuple([mx_rows[ref] for ref in dom_mx_flat[mx_start:mx_stop]]),
                txt=tuple(
                    [strings[ref] for ref in dom_txt_flat[txt_start:txt_stop]]
                ),
            )
    except IndexError as error:
        raise CodecError(f"dangling table reference: {error}") from error
    return measurements


# ---------------------------------------------------------------------------
# inference results
# ---------------------------------------------------------------------------


class _InferenceEncoder:
    """Shared columns for DomainInference maps (results and baselines)."""

    def __init__(self) -> None:
        self.strings = _StringTable()

        self.ip_addr: list[int] = []
        self.ip_cert_id: list[int] = []
        self.ip_banner_id: list[int] = []
        self.ip_fingerprint: list[int] = []
        self.ip_banner_fqdn: list[int] = []
        self.ip_name_counts: list[int] = []
        self.ip_name_flat: list[int] = []

        def ip_row(identity: IPIdentity) -> None:
            self.ip_addr.append(self.strings.ref(identity.address))
            self.ip_cert_id.append(self.strings.ref(identity.cert_id))
            self.ip_banner_id.append(self.strings.ref(identity.banner_id))
            self.ip_fingerprint.append(self.strings.ref(identity.cert_fingerprint))
            self.ip_banner_fqdn.append(self.strings.ref(identity.banner_fqdn))
            self.ip_name_counts.append(len(identity.cert_names))
            self.ip_name_flat.extend(self.strings.ref(n) for n in identity.cert_names)

        self.ip_identities = _IdInterner(ip_row)

        self.mx_name: list[int] = []
        self.mx_provider: list[int] = []
        self.mx_source: list[int] = []
        self.mx_ip_counts: list[int] = []
        self.mx_ip_flat: list[int] = []
        self.mx_flags: list[int] = []
        self.mx_reason: list[int] = []

        # Same ``index.get(...) or ref(...)`` inlining as the measurement
        # encoder: refs are 1-based so a hit is always truthy.
        string_index = self.strings._index
        string_ref = self.strings.ref
        source_codes = _EVIDENCE_SOURCE_CODES
        ip_by_id = self.ip_identities._by_id
        ip_ref = self.ip_identities.ref

        mx_name = self.mx_name
        mx_provider = self.mx_provider
        mx_source = self.mx_source
        mx_ip_counts = self.mx_ip_counts
        mx_ip_flat = self.mx_ip_flat
        mx_flags = self.mx_flags
        mx_reason = self.mx_reason

        def mx_row(identity: MXIdentity) -> None:
            name = identity.mx_name
            provider = identity.provider_id
            mx_name.append(string_index.get(name) or string_ref(name))
            mx_provider.append(string_index.get(provider) or string_ref(provider))
            mx_source.append(source_codes[identity.source])
            ips = identity.ip_identities
            count = len(ips)
            mx_ip_counts.append(count)
            if count == 1:
                ip = ips[0]
                mx_ip_flat.append(ip_by_id.get(id(ip)) or ip_ref(ip))
            elif count:
                mx_ip_flat.extend(
                    [ip_by_id.get(id(ip)) or ip_ref(ip) for ip in ips]
                )
            mx_flags.append(
                (1 if identity.corrected else 0) | (2 if identity.examined else 0)
            )
            mx_reason.append(string_ref(identity.correction_reason))

        self.mx_identities = _IdInterner(mx_row)

        self.inf_domain: list[int] = []
        self.inf_status: list[int] = []
        self.inf_attr_counts: list[int] = []
        self.inf_attr_keys: list[int] = []
        self.inf_attr_weights: list[float] = []
        self.inf_mx_counts: list[int] = []
        self.inf_mx_flat: list[int] = []

    def add_inferences(self, inferences: dict[str, DomainInference]) -> None:
        string_index = self.strings._index
        string_ref = self.strings.ref
        status_codes = _DOMAIN_STATUS_CODES
        mx_by_id = self.mx_identities._by_id
        mx_ref = self.mx_identities.ref
        inf_domain = self.inf_domain
        inf_status = self.inf_status
        inf_attr_counts = self.inf_attr_counts
        inf_attr_keys = self.inf_attr_keys
        inf_attr_weights = self.inf_attr_weights
        inf_mx_counts = self.inf_mx_counts
        inf_mx_flat = self.inf_mx_flat
        for inference in inferences.values():
            inf_domain.append(string_ref(inference.domain))
            inf_status.append(status_codes[inference.status])
            attributions = inference.attributions
            inf_attr_counts.append(len(attributions))
            for provider, weight in attributions.items():
                inf_attr_keys.append(
                    string_index.get(provider) or string_ref(provider)
                )
                inf_attr_weights.append(weight)
            mx_set = inference.mx_identities
            count = len(mx_set)
            inf_mx_counts.append(count)
            if count == 1:
                mx = mx_set[0]
                inf_mx_flat.append(mx_by_id.get(id(mx)) or mx_ref(mx))
            elif count:
                inf_mx_flat.extend(
                    [mx_by_id.get(id(mx)) or mx_ref(mx) for mx in mx_set]
                )

    def write(self, writer: _Writer) -> None:
        self.strings.write(writer)
        writer.u32s(self.ip_addr)
        writer.u32s(self.ip_cert_id)
        writer.u32s(self.ip_banner_id)
        writer.u32s(self.ip_fingerprint)
        writer.u32s(self.ip_banner_fqdn)
        writer.u32s(self.ip_name_counts)
        writer.u32s(self.ip_name_flat)
        writer.u32s(self.mx_name)
        writer.u32s(self.mx_provider)
        writer.u8s(self.mx_source)
        writer.u32s(self.mx_ip_counts)
        writer.u32s(self.mx_ip_flat)
        writer.u8s(self.mx_flags)
        writer.u32s(self.mx_reason)
        writer.u32s(self.inf_domain)
        writer.u8s(self.inf_status)
        writer.u32s(self.inf_attr_counts)
        writer.u32s(self.inf_attr_keys)
        writer.f64s(self.inf_attr_weights)
        writer.u32s(self.inf_mx_counts)
        writer.u32s(self.inf_mx_flat)


class _InferenceDecoder:
    """Reads the columns written by :class:`_InferenceEncoder`."""

    def __init__(self, reader: _Reader) -> None:
        self.reader = reader
        self.strings = _StringTable.read(reader)

        try:
            ip_addr = reader.u32s()
            ip_cert_id = reader.u32s()
            ip_banner_id = reader.u32s()
            ip_fingerprint = reader.u32s()
            ip_banner_fqdn = reader.u32s()
            ip_name_slices = _prefix_slices(reader.u32s())
            ip_name_flat = reader.u32s()
            self.ip_identities: list[IPIdentity | None] = [None]
            for i in range(len(ip_addr)):
                start, stop = ip_name_slices[i]
                self.ip_identities.append(
                    IPIdentity(
                        address=self.text(ip_addr[i]),
                        cert_id=self.text(ip_cert_id[i]),
                        banner_id=self.text(ip_banner_id[i]),
                        cert_fingerprint=self.text(ip_fingerprint[i]),
                        banner_fqdn=self.text(ip_banner_fqdn[i]),
                        cert_names=tuple(
                            self.text(ref) for ref in ip_name_flat[start:stop]
                        ),
                    )
                )

            mx_name = reader.u32s()
            mx_provider = reader.u32s()
            mx_source = reader.u8s()
            mx_ip_slices = _prefix_slices(reader.u32s())
            mx_ip_flat = reader.u32s()
            mx_flags = reader.u8s()
            mx_reason = reader.u32s()
            self.mx_identities: list[MXIdentity | None] = [None]
            for i in range(len(mx_name)):
                start, stop = mx_ip_slices[i]
                self.mx_identities.append(
                    MXIdentity(
                        mx_name=self.text(mx_name[i]),
                        provider_id=self.text(mx_provider[i]),
                        source=_enum_value(_EVIDENCE_SOURCES, mx_source[i]),
                        ip_identities=tuple(
                            self.ip_identities[ref]
                            for ref in mx_ip_flat[start:stop]
                        ),
                        corrected=bool(mx_flags[i] & 1),
                        correction_reason=self.text(mx_reason[i]),
                        examined=bool(mx_flags[i] & 2),
                    )
                )

            self.inf_domain = reader.u32s()
            self.inf_status = reader.u8s()
            self.inf_attr_slices = _prefix_slices(reader.u32s())
            self.inf_attr_keys = reader.u32s()
            self.inf_attr_weights = reader.f64s()
            self.inf_mx_slices = _prefix_slices(reader.u32s())
            self.inf_mx_flat = reader.u32s()
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error

    def text(self, ref: int) -> str | None:
        try:
            return self.strings[ref]
        except IndexError as error:
            raise CodecError(f"bad string reference {ref}") from error

    def inferences(self) -> dict[str, DomainInference]:
        result: dict[str, DomainInference] = {}
        try:
            for i in range(len(self.inf_domain)):
                attr_start, attr_stop = self.inf_attr_slices[i]
                mx_start, mx_stop = self.inf_mx_slices[i]
                domain = self.text(self.inf_domain[i])
                result[domain] = DomainInference(
                    domain=domain,
                    status=_enum_value(_DOMAIN_STATUSES, self.inf_status[i]),
                    attributions={
                        self.text(self.inf_attr_keys[j]): self.inf_attr_weights[j]
                        for j in range(attr_start, attr_stop)
                    },
                    mx_identities=tuple(
                        self.mx_identities[ref]
                        for ref in self.inf_mx_flat[mx_start:mx_stop]
                    ),
                )
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        return result


def encode_inferences(inferences: dict[str, DomainInference]) -> bytes:
    """Encode a baseline-approach inference map."""
    encoder = _InferenceEncoder()
    encoder.add_inferences(inferences)
    writer = _Writer()
    encoder.write(writer)
    return _compress(writer)


def decode_inferences(payload: bytes) -> dict[str, DomainInference]:
    return _InferenceDecoder(_decompress(payload)).inferences()


def encode_result(result: PipelineResult) -> bytes:
    """Encode a full priority-pipeline result (inferences + bookkeeping)."""
    encoder = _InferenceEncoder()
    encoder.add_inferences(result.inferences)
    res_keys = []
    res_vals = []
    for mx_name, identity in result.mx_identities.items():
        res_keys.append(encoder.strings.ref(mx_name))
        res_vals.append(encoder.mx_identities.ref(identity))
    writer = _Writer()
    encoder.write(writer)
    writer.u32s(res_keys)
    writer.u32s(res_vals)
    writer.u64(result.correction_stats.candidates_examined)
    writer.u64(result.correction_stats.corrected)
    return _compress(writer)


def decode_result(payload: bytes) -> PipelineResult:
    decoder = _InferenceDecoder(_decompress(payload))
    inferences = decoder.inferences()
    reader = decoder.reader
    res_keys = reader.u32s()
    res_vals = reader.u32s()
    try:
        mx_identities = {
            decoder.text(res_keys[i]): decoder.mx_identities[res_vals[i]]
            for i in range(len(res_keys))
        }
    except IndexError as error:
        raise CodecError(f"dangling table reference: {error}") from error
    stats = CorrectionStats(
        candidates_examined=reader.u64(), corrected=reader.u64()
    )
    return PipelineResult(
        inferences=inferences, correction_stats=stats, mx_identities=mx_identities
    )
