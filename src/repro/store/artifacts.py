"""Persistent content-addressed artifact store for the measure→infer path.

Entries live under a root directory, named by a SHA-256 digest of the
entry's full provenance: the world configuration, the corpus tag, the
snapshot index, the artifact kind, and the store schema version.  Engine
options (worker counts, executors, memoization) are deliberately *not*
part of the key — PR 1's equivalence suite pins inferences bit-identical
across every engine setting, so one cached artifact serves them all.
Any change to the world or to the serialization bumps the digest and the
old entry simply stops being addressed.

Failure policy: the store must never make a run worse than having no
store.  Unreadable, truncated, or garbage entries are discarded with a
warning and the caller recomputes; an unwritable root disables writes
(with one warning) and the pipeline proceeds uncached.  Writes are
atomic (tmp file + ``os.replace``) so a crashed run can leave at most a
stale tmp file, never a half-written entry.

A byte-budgeted LRU garbage collector bounds the store's disk footprint:
reads refresh an entry's mtime, and writes evict least-recently-used
entries until the store fits ``max_bytes`` again.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
import warnings
import zlib
from pathlib import Path

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from ..engine.stats import STATS
from ..obs import trace
from ..obs.log import get_logger
from .codec import (
    CODEC_VERSION,
    decode_inferences,
    decode_measurements,
    decode_result,
    encode_inferences,
    encode_measurements,
    encode_result,
)

SCHEMA_VERSION = CODEC_VERSION
CACHE_ENV = "REPRO_CACHE"
CACHE_MAX_ENV = "REPRO_CACHE_MAX_MB"
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_MAGIC = b"RSTO"
_HEADER_SIZE = len(_MAGIC) + 2 + 4 + 8
_ENTRY_SUFFIX = ".rsto"

KIND_MEASUREMENTS = "measurements"
KIND_PRIORITY = "result:priority"
#: Kind prefix of resilience shard checkpoints (partial-gather results).
KIND_SHARD_PREFIX = "shard:"
#: Kind prefix of streamed-gather batch spill entries (encoded payloads).
KIND_BATCH_PREFIX = "batch:"

#: Name of the coarse advisory GC lock inside a store root.
_GC_LOCK_NAME = ".gc.lock"
#: Orphaned ``.tmp-*`` files (from SIGKILLed writers) older than this are
#: swept during GC.
_STALE_TMP_SECONDS = 3600.0

log = get_logger("store")


def baseline_kind(approach: str) -> str:
    return f"baseline:{approach}"


def shard_kind(
    index: int, count: int, batch: tuple[int, int, int] | None = None
) -> str:
    """Kind string of one shard checkpoint of a partial gather.

    The shard count is part of the kind: a resumed run with a different
    ``--jobs`` shards differently, and a checkpoint for shard 2-of-4 must
    never be served as shard 2-of-8.  Under a streamed gather, *batch* is
    the plan key ``(batch_index, batch_count, batch_size)``: shards of
    batch 3-of-10 at ``--batch-domains 500`` can only resume a run with
    the very same batch plan.
    """
    base = f"{KIND_SHARD_PREFIX}{index}/{count}"
    if batch is not None:
        batch_index, batch_count, batch_size = batch
        base += f"@{batch_index}/{batch_count}x{batch_size}"
    return f"{base}:{KIND_MEASUREMENTS}"


def batch_kind(index: int, count: int, size: int) -> str:
    """Kind string of one streamed-gather batch spill entry."""
    return f"{KIND_BATCH_PREFIX}{index}/{count}x{size}:{KIND_MEASUREMENTS}"


def cache_key(
    config, dataset, snapshot_index: int, kind: str, faults: str | None = None
) -> str:
    """Content address of one artifact: digest of its full provenance.

    *faults* is the canonical fault-plan spec of the run (None for
    fault-free runs).  It joins the key only when set, so fault-free keys
    are byte-identical to pre-fault-injection builds while faulted
    snapshots can never be served to — or poisoned by — clean runs.
    """
    provenance = {
        "schema": SCHEMA_VERSION,
        "world": dataclasses.asdict(config),
        "corpus": dataset.value,
        "snapshot": int(snapshot_index),
        "kind": kind,
    }
    if faults is not None:
        provenance["faults"] = faults
    body = json.dumps(provenance, sort_keys=True, default=str)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _wrap(payload: bytes) -> bytes:
    header = (
        _MAGIC
        + SCHEMA_VERSION.to_bytes(2, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
        + len(payload).to_bytes(8, "little")
    )
    return header + payload


class ArtifactStore:
    """A size-capped, corruption-tolerant on-disk cache of artifacts."""

    def __init__(self, root: str | os.PathLike, max_bytes: int | None = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._writes_disabled = False
        self._bytes_since_gc = 0

    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """The store named by ``REPRO_CACHE``, or None when unconfigured."""
        raw = os.environ.get(CACHE_ENV)
        if not raw or raw.strip().lower() in {"0", "off", "none", "no"}:
            return None
        max_bytes: int | None = DEFAULT_MAX_BYTES
        raw_max = os.environ.get(CACHE_MAX_ENV)
        if raw_max is not None:
            try:
                megabytes = float(raw_max)
                max_bytes = None if megabytes <= 0 else int(megabytes * 1024 * 1024)
            except ValueError:
                warnings.warn(
                    f"unparseable {CACHE_MAX_ENV}={raw_max!r}; "
                    f"using default {DEFAULT_MAX_BYTES // (1024 * 1024)} MiB",
                    stacklevel=2,
                )
        return cls(raw, max_bytes=max_bytes)

    # -- raw entry IO ----------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def read(self, key: str) -> bytes | None:
        """The payload stored under *key*, or None (missing/corrupt/stale)."""
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            warnings.warn(f"repro.store: unreadable entry {path}: {error}", stacklevel=2)
            return None
        payload = self._unwrap(data, path)
        if payload is None:
            return None
        STATS.inc("store.read_bytes", len(data))
        try:
            os.utime(path)  # mark recently-used for the LRU GC
        except OSError:
            pass
        return payload

    def _unwrap(self, data: bytes, path: Path) -> bytes | None:
        if len(data) < _HEADER_SIZE or data[: len(_MAGIC)] != _MAGIC:
            return self._reject(path, "bad magic")
        version = int.from_bytes(data[4:6], "little")
        if version != SCHEMA_VERSION:
            # Stale schema, not corruption — still recompute and rewrite.
            return self._reject(path, f"schema v{version} != v{SCHEMA_VERSION}")
        crc = int.from_bytes(data[6:10], "little")
        length = int.from_bytes(data[10:18], "little")
        payload = data[_HEADER_SIZE:]
        if len(payload) != length:
            return self._reject(path, "truncated entry")
        if zlib.crc32(payload) != crc:
            return self._reject(path, "checksum mismatch")
        return payload

    def _reject(self, path: Path, reason: str) -> None:
        warnings.warn(
            f"repro.store: discarding cache entry {path.name} ({reason}); "
            "recomputing",
            stacklevel=3,
        )
        log.info(
            "store.reject", extra={"fields": {"entry": path.name, "reason": reason}}
        )
        STATS.inc("store.rejected")
        self._discard(path)
        return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def discard(self, key: str) -> None:
        self._discard(self._path(key))

    def write(self, key: str, payload: bytes) -> None:
        """Atomically persist *payload* under *key* (best-effort)."""
        if self._writes_disabled:
            return
        path = self._path(key)
        entry = _wrap(payload)
        tmp_name: str | None = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            with os.fdopen(fd, "wb") as handle:
                handle.write(entry)
            os.replace(tmp_name, path)
            tmp_name = None
        except OSError as error:
            if tmp_name is not None:
                self._discard(Path(tmp_name))
            self._writes_disabled = True
            warnings.warn(
                f"repro.store: cache root {self.root} is unwritable ({error}); "
                "continuing without persistence",
                stacklevel=2,
            )
            return
        STATS.inc("store.write_bytes", len(entry))
        # Amortize the directory scan: a full GC per write would rescan the
        # store for every entry.  The cap can therefore be overshot by at
        # most 1/32 of max_bytes between collections.
        self._bytes_since_gc += len(entry)
        if self.max_bytes is not None and (
            self._bytes_since_gc >= self.max_bytes // 32
        ):
            self.gc()

    # -- maintenance -----------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            path
            for path in self.root.glob(f"*/*{_ENTRY_SUFFIX}")
            if path.is_file()
        ]

    def entry_count(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            self._discard(path)
            removed += 1
        return removed

    @contextlib.contextmanager
    def _gc_lock(self):
        """Coarse advisory lock so concurrent runs do not GC one root.

        Yields True when this process holds the lock (or locking is
        unavailable — GC then proceeds best-effort, protected by the
        per-entry race tolerance), False when another run is already
        collecting and this one should skip.
        """
        if fcntl is None or not self.root.is_dir():
            yield True
            return
        try:
            handle = open(self.root / _GC_LOCK_NAME, "a+b")
        except OSError:
            yield True
            return
        try:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock cannot really fail
                    pass
        finally:
            handle.close()

    def _sweep_stale_tmp(self) -> None:
        """Remove orphaned tmp files left by killed writers (best-effort)."""
        if not self.root.is_dir():
            return
        horizon = time.time() - _STALE_TMP_SECONDS
        for tmp in self.root.glob("*/.tmp-*"):
            try:
                if tmp.stat().st_mtime < horizon:
                    tmp.unlink()
            except OSError:
                pass  # raced with its writer or another sweeper

    def gc(self) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Safe under concurrent runs sharing one root: a coarse advisory
        lock keeps collectors from duelling, and every stat/unlink
        tolerates entries vanishing underneath it (another run's GC, a
        concurrent ``clear``).  When the lock is already held the call is
        a no-op — the other collector is doing the same work.
        """
        self._bytes_since_gc = 0
        if self.max_bytes is None:
            return 0
        with self._gc_lock() as acquired:
            if not acquired:
                STATS.inc("store.gc_skipped")
                return 0
            return self._collect()

    def _collect(self) -> int:
        self._sweep_stale_tmp()
        stated = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished since the scan (concurrent eviction)
            stated.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _mtime, size, path in sorted(stated):
            if total <= self.max_bytes:
                break
            self._discard(path)
            total -= size
            evicted += 1
        STATS.inc("store.evicted", evicted)
        if evicted:
            log.info(
                "store.gc",
                extra={"fields": {"evicted": evicted, "remaining_bytes": total}},
            )
        return evicted

    # -- typed artifact API ----------------------------------------------

    def _load(self, counter: str, key: str, decode):
        with trace.span("store.load", cat="store", kind=counter):
            payload = self.read(key)
            if payload is not None:
                try:
                    with STATS.timer("store.decode"):
                        value = decode(payload)
                except Exception as error:  # corrupt beyond the envelope checks
                    warnings.warn(
                        f"repro.store: undecodable cache entry ({error}); recomputing",
                        stacklevel=2,
                    )
                    STATS.inc("store.rejected")
                    self.discard(key)
                    payload = None
                else:
                    STATS.inc(f"{counter}.hit")
                    return value
            STATS.inc(f"{counter}.miss")
            return None

    def _save(self, key: str, encode, value) -> None:
        with trace.span("store.save", cat="store"):
            with STATS.timer("store.encode"):
                payload = encode(value)
            self.write(key, payload)

    def load_measurements(
        self, config, dataset, snapshot_index: int, faults: str | None = None
    ):
        key = cache_key(config, dataset, snapshot_index, KIND_MEASUREMENTS, faults)
        return self._load("store.meas", key, decode_measurements)

    def save_measurements(
        self, config, dataset, snapshot_index: int, measurements,
        faults: str | None = None,
    ) -> None:
        key = cache_key(config, dataset, snapshot_index, KIND_MEASUREMENTS, faults)
        self._save(key, encode_measurements, measurements)

    def load_result(
        self, config, dataset, snapshot_index: int, faults: str | None = None
    ):
        key = cache_key(config, dataset, snapshot_index, KIND_PRIORITY, faults)
        return self._load("store.result", key, decode_result)

    def save_result(
        self, config, dataset, snapshot_index: int, result,
        faults: str | None = None,
    ) -> None:
        key = cache_key(config, dataset, snapshot_index, KIND_PRIORITY, faults)
        self._save(key, encode_result, result)

    def measurement_payload(
        self, config, dataset, snapshot_index: int, faults: str | None = None
    ) -> bytes | None:
        """The *encoded* measurement snapshot, envelope-checked but not
        decoded — the serving layer's delta/lookup views read columns
        straight off this payload instead of materializing object graphs."""
        key = cache_key(config, dataset, snapshot_index, KIND_MEASUREMENTS, faults)
        return self.read(key)

    def result_payload(
        self, config, dataset, snapshot_index: int, faults: str | None = None
    ) -> bytes | None:
        """The encoded priority-pipeline result, undecoded (see above)."""
        key = cache_key(config, dataset, snapshot_index, KIND_PRIORITY, faults)
        return self.read(key)

    def load_shard(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        faults: str | None = None, batch: tuple[int, int, int] | None = None,
    ):
        """A checkpointed partial-gather shard, or None."""
        key = cache_key(
            config, dataset, snapshot_index, shard_kind(index, count, batch), faults
        )
        return self._load("resilience.checkpoint", key, decode_measurements)

    def save_shard(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        measurements, faults: str | None = None,
        batch: tuple[int, int, int] | None = None,
    ) -> None:
        key = cache_key(
            config, dataset, snapshot_index, shard_kind(index, count, batch), faults
        )
        self._save(key, encode_measurements, measurements)

    def discard_shard(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        faults: str | None = None, batch: tuple[int, int, int] | None = None,
    ) -> None:
        """Drop one shard checkpoint (after the full snapshot persists)."""
        key = cache_key(
            config, dataset, snapshot_index, shard_kind(index, count, batch), faults
        )
        self.discard(key)

    def load_batch(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        size: int, faults: str | None = None,
    ) -> bytes | None:
        """A spilled streamed-gather batch payload (still encoded), or None."""
        key = cache_key(
            config, dataset, snapshot_index, batch_kind(index, count, size), faults
        )
        payload = self.read(key)
        STATS.inc("stream.spill.hit" if payload is not None else "stream.spill.miss")
        return payload

    def save_batch(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        size: int, payload: bytes, faults: str | None = None,
    ) -> None:
        key = cache_key(
            config, dataset, snapshot_index, batch_kind(index, count, size), faults
        )
        self.write(key, payload)

    def discard_batch(
        self, config, dataset, snapshot_index: int, index: int, count: int,
        size: int, faults: str | None = None,
    ) -> None:
        """Drop one batch spill entry (after the full snapshot persists)."""
        key = cache_key(
            config, dataset, snapshot_index, batch_kind(index, count, size), faults
        )
        self.discard(key)

    def load_baseline(
        self, config, dataset, snapshot_index: int, approach: str,
        faults: str | None = None,
    ):
        key = cache_key(config, dataset, snapshot_index, baseline_kind(approach), faults)
        return self._load("store.baseline", key, decode_inferences)

    def save_baseline(
        self, config, dataset, snapshot_index: int, approach: str, inferences,
        faults: str | None = None,
    ) -> None:
        key = cache_key(config, dataset, snapshot_index, baseline_kind(approach), faults)
        self._save(key, encode_inferences, inferences)

    # -- reporting -------------------------------------------------------

    def describe(self) -> str:
        count = self.entry_count()
        total = self.total_bytes()
        cap = (
            "unbounded"
            if self.max_bytes is None
            else f"{self.max_bytes / (1024 * 1024):.0f} MiB cap"
        )
        return (
            f"{self.root}: {count} entries, {total / 1024:.1f} KiB"
            f" (schema v{SCHEMA_VERSION}, {cap})"
        )
