"""Delta iteration over encoded columnar payloads.

The serving layer (:mod:`repro.serve`) answers per-domain questions and
ingests new snapshots against artifacts that already live in the store.
Decoding a whole snapshot to answer either is the exact waste this module
removes:

* :class:`SnapshotView` reads an encoded **measurement** payload into its
  raw columns (string/date tables plus index arrays — no object graphs),
  computes a per-domain *evidence signature* over those columns, and
  materializes :class:`~repro.measure.dataset.DomainMeasurement` graphs
  only for an explicitly requested subset of domains.
* :func:`diff` compares two payloads signature-by-signature and reports
  exactly which domains changed, appeared, or disappeared.
* :class:`ResultView` reads an encoded **inference** payload and serves
  single-domain lookups and column-space aggregates without materializing
  the full identity graph.

Column layout is mirrored from :mod:`repro.store.codec` (the two modules
must change together; ``tests/store/test_delta.py`` locks the parity).

Signature semantics
-------------------

A domain's signature covers everything the inference pipeline can observe
about it: MX names and preferences, per-address routing (ASN, AS name,
country), port-25 scan evidence (state, banner, EHLO, STARTTLS, the full
certificate content), apex TXT records, and — the one date-dependent
input — whether each certificate's validity window contains the scan
date.  Measurement *dates* themselves are excluded: re-observing
identical evidence on a later day must compare equal, otherwise every
snapshot would count as 100% churn.  Certificate issuer *trust* is a
static property of the world's trust store, so a validity-window bit is
the only trust input that can change between snapshots.

Signatures are built bottom-up (per cert, scan, AS, observation, MX row —
each level hashing a small tuple of its children's signatures) with the
codec's deterministic 64-bit hash, and are **embedded in the payload** at
encode time: :func:`repro.store.codec.encode_measurements` appends the
per-domain signature column, so reading them here costs one array read.
Payloads that predate the column get the identical values recomputed
from their columns.  Either way signatures compare correctly across
processes and store generations.  A hash collision (odds ~2^-64 per
pair) would mask a change; acceptable for a change-detection signal
backed by an end-to-end equivalence test.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate

from ..core.types import DomainInference, IPIdentity, MXIdentity
from ..measure.caida import ASInfo
from ..measure.censys import PortScanRecord
from ..measure.dataset import DomainMeasurement, IPObservation, MXData
from ..tls.cert import Certificate
from .codec import (
    _DOMAIN_STATUSES,
    _EVIDENCE_SOURCES,
    _PORT_STATES,
    CodecError,
    _DateTable,
    _decompress,
    _enum_value,
    _prefix_slices,
    _stable_sig,
    _StringTable,
)


@dataclass(frozen=True)
class DeltaReport:
    """Which domains differ between two snapshot payloads."""

    changed: tuple[str, ...]  # present in both, evidence differs
    added: tuple[str, ...]  # only in the new payload
    removed: tuple[str, ...]  # only in the old payload
    unchanged: int

    @property
    def dirty(self) -> int:
        return len(self.changed) + len(self.added)

    @property
    def total(self) -> int:
        """Domains in the new payload."""
        return len(self.changed) + len(self.added) + self.unchanged

    @property
    def churn(self) -> float:
        """Fraction of the new payload whose evidence is not carried over."""
        return self.dirty / self.total if self.total else 0.0


class SnapshotView:
    """Column-space view of one encoded measurement payload."""

    def __init__(self, payload: bytes) -> None:
        reader = _decompress(payload)
        self._strings = _StringTable.read(reader)
        self._dates = _DateTable.read(reader)
        try:
            # Per-row count columns become cumulative-offset lists (row i
            # spans flat[cum[i]:cum[i+1]]): one C-speed accumulate instead
            # of a Python list of (start, stop) tuples per row.
            self._cert_cn = reader.u32s()
            self._cert_issuer = reader.u32s()
            self._cert_self_signed = reader.u8s()
            self._cert_not_before = reader.u32s()
            self._cert_not_after = reader.u32s()
            self._cert_serial = reader.u64s()
            self._cert_san_cum = list(accumulate(reader.u32s(), initial=0))
            self._cert_san_flat = reader.u32s()
            self._scan_addr = reader.u32s()
            self._scan_date = reader.u32s()
            self._scan_state = reader.u8s()
            self._scan_banner = reader.u32s()
            self._scan_ehlo = reader.u32s()
            self._scan_starttls = reader.u8s()
            self._scan_cert = reader.u32s()
            self._as_asn = reader.u64s()
            self._as_name = reader.u32s()
            self._as_country = reader.u32s()
            self._obs_addr = reader.u32s()
            self._obs_as = reader.u32s()
            self._obs_scan = reader.u32s()
            self._mx_name = reader.u32s()
            self._mx_preference = reader.i32s()
            self._mx_ip_cum = list(accumulate(reader.u32s(), initial=0))
            self._mx_ip_flat = reader.u32s()
            self._dom_name = reader.u32s()
            self._dom_date = reader.u32s()
            self._dom_mx_cum = list(accumulate(reader.u32s(), initial=0))
            self._dom_mx_flat = reader.u32s()
            self._dom_txt_cum = list(accumulate(reader.u32s(), initial=0))
            self._dom_txt_flat = reader.u32s()
            self._dom_sig = reader.u64s() if reader.remaining() else None
            self._cert_sig = reader.u64s() if reader.remaining() else None
            strings = self._strings
            self.domains: tuple[str, ...] = tuple(
                [strings[ref] for ref in self._dom_name]
            )
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        self._row_of = {domain: i for i, domain in enumerate(self.domains)}
        self._signatures: dict[str, int] | None = None
        # Per-row object memos: materialized rows are shared between
        # domains exactly as decode_measurements shares them, and between
        # successive materialize() calls on the same view.
        self._cert_objs: dict[int, Certificate] = {}
        self._scan_objs: dict[int, PortScanRecord] = {}
        self._as_objs: dict[int, ASInfo] = {}
        self._obs_objs: dict[int, IPObservation] = {}
        self._mx_objs: dict[int, MXData] = {}

    # -- metadata --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.domains)

    def __contains__(self, domain: str) -> bool:
        return domain in self._row_of

    def measured_on(self, domain: str):
        try:
            return self._dates[self._dom_date[self._row_of[domain]]]
        except IndexError as error:
            raise CodecError(f"bad date reference: {error}") from error

    # -- signatures ------------------------------------------------------

    def signatures(self) -> dict[str, int]:
        """Per-domain evidence signature, in payload (snapshot) order.

        Current payloads embed the column at encode time, so this is one
        ``dict(zip(...))``; older payloads get the identical values
        recomputed from the columns below (same canonical tuples as
        :func:`repro.store.codec.encode_measurements`).
        """
        if self._signatures is not None:
            return self._signatures
        if self._dom_sig is not None:
            if len(self._dom_sig) != len(self.domains):
                raise CodecError(
                    f"signature column length {len(self._dom_sig)} != "
                    f"{len(self.domains)} domains"
                )
            self._signatures = dict(zip(self.domains, self._dom_sig))
            return self._signatures
        strings = self._strings
        san_cum = self._cert_san_cum
        ip_cum = self._mx_ip_cum
        dom_mx_cum = self._dom_mx_cum
        dom_txt_cum = self._dom_txt_cum
        try:
            date_ords = [day.toordinal() for day in self._dates]

            # Certificate content, date-free.  The validity window stays in
            # ordinal space so the per-scan bit below is two comparisons.
            nb = self._cert_not_before
            na = self._cert_not_after
            cert_sig = self._fallback_cert_sigs(date_ords)

            scan_sig: list = [0]
            for i in range(len(self._scan_addr)):
                cert_ref = self._scan_cert[i]
                on = date_ords[self._scan_date[i]]
                valid = (
                    (
                        1
                        if date_ords[nb[cert_ref - 1]]
                        <= on
                        <= date_ords[na[cert_ref - 1]]
                        else 0
                    )
                    if cert_ref
                    else None
                )
                scan_sig.append(
                    _stable_sig((
                        self._scan_state[i],
                        strings[self._scan_banner[i]],
                        strings[self._scan_ehlo[i]],
                        self._scan_starttls[i],
                        cert_sig[cert_ref],
                        valid,
                    ))
                )

            as_sig: list = [0]
            for i in range(len(self._as_asn)):
                as_sig.append(
                    _stable_sig((
                        self._as_asn[i],
                        strings[self._as_name[i]],
                        strings[self._as_country[i]],
                    ))
                )

            obs_sig: list = [0]
            for i in range(len(self._obs_addr)):
                obs_sig.append(
                    _stable_sig((
                        strings[self._obs_addr[i]],
                        as_sig[self._obs_as[i]],
                        scan_sig[self._obs_scan[i]],
                    ))
                )

            mx_sig: list = [0]
            for i in range(len(self._mx_name)):
                start = ip_cum[i]
                stop = ip_cum[i + 1]
                mx_sig.append(
                    _stable_sig((
                        strings[self._mx_name[i]],
                        self._mx_preference[i],
                        tuple(obs_sig[ref] for ref in self._mx_ip_flat[start:stop]),
                    ))
                )

            signatures: dict[str, int] = {}
            for i, domain in enumerate(self.domains):
                mx_start = dom_mx_cum[i]
                mx_stop = dom_mx_cum[i + 1]
                txt_start = dom_txt_cum[i]
                txt_stop = dom_txt_cum[i + 1]
                signatures[domain] = _stable_sig((
                    domain,
                    tuple(mx_sig[ref] for ref in self._dom_mx_flat[mx_start:mx_stop]),
                    tuple(
                        strings[ref]
                        for ref in self._dom_txt_flat[txt_start:txt_stop]
                    ),
                ))
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        self._signatures = signatures
        return signatures

    def _fallback_cert_sigs(self, date_ords: list[int]) -> list[int]:
        """Recompute the per-certificate signature column (index 0 = None)."""
        strings = self._strings
        san_cum = self._cert_san_cum
        nb = self._cert_not_before
        na = self._cert_not_after
        cert_sig: list = [0]
        for i in range(len(self._cert_cn)):
            start = san_cum[i]
            stop = san_cum[i + 1]
            cert_sig.append(
                _stable_sig((
                    strings[self._cert_cn[i]],
                    tuple(strings[ref] for ref in self._cert_san_flat[start:stop]),
                    strings[self._cert_issuer[i]],
                    self._cert_self_signed[i],
                    date_ords[nb[i]],
                    date_ords[na[i]],
                    self._cert_serial[i],
                ))
            )
        return cert_sig

    def cert_sigs(self):
        """Per-certificate-row content signature, in table order.

        Entry *i* describes table row ``i + 1`` (reference space reserves
        0 for None).  Embedded by current encoders; recomputed — same
        canonical tuples — for payloads that predate the column.  Treat
        the returned sequence as read-only.
        """
        if self._cert_sig is not None:
            if len(self._cert_sig) != len(self._cert_cn):
                raise CodecError(
                    f"certificate signature column length "
                    f"{len(self._cert_sig)} != {len(self._cert_cn)} rows"
                )
            return self._cert_sig
        date_ords = [day.toordinal() for day in self._dates]
        try:
            return self._fallback_cert_sigs(date_ords)[1:]
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error

    # -- partial materialization ----------------------------------------

    def certificates(self) -> list[Certificate]:
        """The payload's unique-certificate table, in table order.

        Step-1 grouping (:meth:`CertificatePreprocessor.build`) dedups by
        fingerprint before counting, so the unique table stands in for the
        full occurrence stream without changing any group.
        """
        return [self._cert(i + 1) for i in range(len(self._cert_cn))]

    def certificate(self, row: int) -> Certificate:
        """Certificate table row *row* (0-based, matching ``cert_sigs()``)."""
        if not 0 <= row < len(self._cert_cn):
            raise IndexError(f"certificate row {row} out of range")
        return self._cert(row + 1)

    def materialize(
        self, wanted=None
    ) -> dict[str, DomainMeasurement]:
        """Object graphs for *wanted* domains (all when None), payload order.

        Shared rows decode once: two domains behind the same MX receive
        the identical :class:`MXData` object, exactly like a full
        ``decode_measurements`` pass.
        """
        try:
            if wanted is None:
                rows = range(len(self.domains))
            else:
                rows = sorted(
                    self._row_of[domain] for domain in wanted
                )
            out: dict[str, DomainMeasurement] = {}
            dom_mx_cum = self._dom_mx_cum
            dom_txt_cum = self._dom_txt_cum
            for i in rows:
                domain = self.domains[i]
                mx_start = dom_mx_cum[i]
                mx_stop = dom_mx_cum[i + 1]
                txt_start = dom_txt_cum[i]
                txt_stop = dom_txt_cum[i + 1]
                row = DomainMeasurement.__new__(DomainMeasurement)
                row.__dict__.update(
                    domain=domain,
                    measured_on=self._dates[self._dom_date[i]],
                    mx_set=tuple(
                        self._mx(ref)
                        for ref in self._dom_mx_flat[mx_start:mx_stop]
                    ),
                    txt=tuple(
                        self._strings[ref]
                        for ref in self._dom_txt_flat[txt_start:txt_stop]
                    ),
                )
                out[domain] = row
        except KeyError as error:
            raise KeyError(f"domain not in snapshot payload: {error}") from error
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        return out

    def _cert(self, ref: int) -> Certificate | None:
        if not ref:
            return None
        row = self._cert_objs.get(ref)
        if row is None:
            i = ref - 1
            start = self._cert_san_cum[i]
            stop = self._cert_san_cum[i + 1]
            # Payload values already passed Certificate.__post_init__ on
            # the encode side (names normalized, window validated), so
            # re-running it — and the frozen-dataclass setattr per field —
            # would only burn time.  Field-wise __eq__/__hash__ make the
            # result indistinguishable from a constructed instance.
            row = Certificate.__new__(Certificate)
            row.__dict__.update(
                subject_cn=self._strings[self._cert_cn[i]],
                sans=tuple(
                    self._strings[r] for r in self._cert_san_flat[start:stop]
                ),
                issuer=self._strings[self._cert_issuer[i]],
                self_signed=bool(self._cert_self_signed[i]),
                not_before=self._dates[self._cert_not_before[i]],
                not_after=self._dates[self._cert_not_after[i]],
                serial=self._cert_serial[i],
            )
            self._cert_objs[ref] = row
        return row

    def _scan(self, ref: int) -> PortScanRecord | None:
        if not ref:
            return None
        row = self._scan_objs.get(ref)
        if row is None:
            i = ref - 1
            # Same __init__ bypass as _cert: __post_init__ already nulled
            # non-OPEN evidence before the row was encoded, so re-running
            # it is a no-op on every stored record.
            row = PortScanRecord.__new__(PortScanRecord)
            row.__dict__.update(
                address=self._strings[self._scan_addr[i]],
                scanned_on=self._dates[self._scan_date[i]],
                state=_enum_value(_PORT_STATES, self._scan_state[i]),
                banner=self._strings[self._scan_banner[i]],
                ehlo=self._strings[self._scan_ehlo[i]],
                starttls=bool(self._scan_starttls[i]),
                certificate=self._cert(self._scan_cert[i]),
            )
            self._scan_objs[ref] = row
        return row

    def _as_info(self, ref: int) -> ASInfo | None:
        if not ref:
            return None
        row = self._as_objs.get(ref)
        if row is None:
            i = ref - 1
            row = ASInfo.__new__(ASInfo)
            row.__dict__.update(
                asn=self._as_asn[i],
                name=self._strings[self._as_name[i]],
                country=self._strings[self._as_country[i]],
            )
            self._as_objs[ref] = row
        return row

    def _obs(self, ref: int) -> IPObservation:
        row = self._obs_objs.get(ref)
        if row is None:
            i = ref - 1
            row = IPObservation.__new__(IPObservation)
            row.__dict__.update(
                address=self._strings[self._obs_addr[i]],
                as_info=self._as_info(self._obs_as[i]),
                scan=self._scan(self._obs_scan[i]),
            )
            self._obs_objs[ref] = row
        return row

    def _mx(self, ref: int) -> MXData:
        row = self._mx_objs.get(ref)
        if row is None:
            i = ref - 1
            start = self._mx_ip_cum[i]
            stop = self._mx_ip_cum[i + 1]
            row = MXData.__new__(MXData)
            row.__dict__.update(
                name=self._strings[self._mx_name[i]],
                preference=self._mx_preference[i],
                ips=tuple(
                    self._obs(r) for r in self._mx_ip_flat[start:stop]
                ),
            )
            self._mx_objs[ref] = row
        return row


def diff_signatures(
    previous: dict[str, int], view: SnapshotView
) -> DeltaReport:
    """Delta of a new snapshot view against previously recorded signatures."""
    signatures = view.signatures()
    changed = []
    added = []
    unchanged = 0
    for domain, signature in signatures.items():
        old = previous.get(domain)
        if old is None:
            added.append(domain)
        elif old != signature:
            changed.append(domain)
        else:
            unchanged += 1
    removed = [domain for domain in previous if domain not in signatures]
    return DeltaReport(
        changed=tuple(changed),
        added=tuple(added),
        removed=tuple(removed),
        unchanged=unchanged,
    )


def diff(previous_payload: bytes, new_payload: bytes) -> DeltaReport:
    """Which domains' evidence differs between two measurement payloads."""
    return diff_signatures(
        SnapshotView(previous_payload).signatures(), SnapshotView(new_payload)
    )


class ResultView:
    """Lazy single-domain reads over an encoded inference payload.

    Accepts both payload flavors: full pipeline results
    (:func:`repro.store.codec.encode_result`) and plain inference maps
    (:func:`repro.store.codec.encode_inferences`, which lack the
    mx-identity/stats tail).
    """

    def __init__(self, payload: bytes) -> None:
        reader = _decompress(payload)
        self._strings = _StringTable.read(reader)
        try:
            self._ip_addr = reader.u32s()
            self._ip_cert_id = reader.u32s()
            self._ip_banner_id = reader.u32s()
            self._ip_fingerprint = reader.u32s()
            self._ip_banner_fqdn = reader.u32s()
            self._ip_name_slices = _prefix_slices(reader.u32s())
            self._ip_name_flat = reader.u32s()
            self._mx_name = reader.u32s()
            self._mx_provider = reader.u32s()
            self._mx_source = reader.u8s()
            self._mx_ip_slices = _prefix_slices(reader.u32s())
            self._mx_ip_flat = reader.u32s()
            self._mx_flags = reader.u8s()
            self._mx_reason = reader.u32s()
            self._inf_domain = reader.u32s()
            self._inf_status = reader.u8s()
            self._inf_attr_slices = _prefix_slices(reader.u32s())
            self._inf_attr_keys = reader.u32s()
            self._inf_attr_weights = reader.f64s()
            self._inf_mx_slices = _prefix_slices(reader.u32s())
            self._inf_mx_flat = reader.u32s()
            if reader.remaining():
                self._res_keys = reader.u32s()
                self._res_vals = reader.u32s()
                self.candidates_examined: int | None = reader.u64()
                self.corrected: int | None = reader.u64()
            else:
                self._res_keys = None
                self._res_vals = None
                self.candidates_examined = None
                self.corrected = None
            self.domains: tuple[str, ...] = tuple(
                self._strings[ref] for ref in self._inf_domain
            )
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        self._row_of = {domain: i for i, domain in enumerate(self.domains)}
        self._ip_objs: dict[int, IPIdentity] = {}
        self._mx_objs: dict[int, MXIdentity] = {}
        self._stats_cache: dict | None = None

    def __len__(self) -> int:
        return len(self.domains)

    def __contains__(self, domain: str) -> bool:
        return domain in self._row_of

    def get(self, domain: str) -> DomainInference | None:
        """One domain's inference, materializing only its identity rows."""
        i = self._row_of.get(domain)
        if i is None:
            return None
        try:
            attr_start, attr_stop = self._inf_attr_slices[i]
            mx_start, mx_stop = self._inf_mx_slices[i]
            return DomainInference(
                domain=domain,
                status=_enum_value(_DOMAIN_STATUSES, self._inf_status[i]),
                attributions={
                    self._strings[self._inf_attr_keys[j]]: self._inf_attr_weights[j]
                    for j in range(attr_start, attr_stop)
                },
                mx_identities=tuple(
                    self._mx_identity(ref)
                    for ref in self._inf_mx_flat[mx_start:mx_stop]
                ),
            )
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error

    def provider_stats(self) -> dict:
        """Column-space aggregates: statuses, provider weights, top list."""
        if self._stats_cache is not None:
            return self._stats_cache
        statuses: dict[str, int] = {}
        weights: dict[str, float] = {}
        backing: dict[str, int] = {}
        try:
            for i in range(len(self._inf_domain)):
                status = _enum_value(_DOMAIN_STATUSES, self._inf_status[i]).value
                statuses[status] = statuses.get(status, 0) + 1
                start, stop = self._inf_attr_slices[i]
                for j in range(start, stop):
                    provider = self._strings[self._inf_attr_keys[j]]
                    weights[provider] = (
                        weights.get(provider, 0.0) + self._inf_attr_weights[j]
                    )
                    backing[provider] = backing.get(provider, 0) + 1
        except IndexError as error:
            raise CodecError(f"dangling table reference: {error}") from error
        top = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        self._stats_cache = {
            "domains": len(self._inf_domain),
            "statuses": dict(sorted(statuses.items())),
            "providers": len(weights),
            "top": [
                {
                    "provider": provider,
                    "weight": round(weight, 4),
                    "domains": backing[provider],
                }
                for provider, weight in top[:20]
            ],
        }
        return self._stats_cache

    def _ip_identity(self, ref: int):
        row = self._ip_objs.get(ref)
        if row is None:
            i = ref - 1
            start, stop = self._ip_name_slices[i]
            row = IPIdentity(
                address=self._strings[self._ip_addr[i]],
                cert_id=self._strings[self._ip_cert_id[i]],
                banner_id=self._strings[self._ip_banner_id[i]],
                cert_fingerprint=self._strings[self._ip_fingerprint[i]],
                banner_fqdn=self._strings[self._ip_banner_fqdn[i]],
                cert_names=tuple(
                    self._strings[r] for r in self._ip_name_flat[start:stop]
                ),
            )
            self._ip_objs[ref] = row
        return row

    def _mx_identity(self, ref: int):
        row = self._mx_objs.get(ref)
        if row is None:
            i = ref - 1
            start, stop = self._mx_ip_slices[i]
            flags = self._mx_flags[i]
            row = MXIdentity(
                mx_name=self._strings[self._mx_name[i]],
                provider_id=self._strings[self._mx_provider[i]],
                source=_enum_value(_EVIDENCE_SOURCES, self._mx_source[i]),
                ip_identities=tuple(
                    self._ip_identity(r) for r in self._mx_ip_flat[start:stop]
                ),
                corrected=bool(flags & 1),
                correction_reason=self._strings[self._mx_reason[i]],
                examined=bool(flags & 2),
            )
            self._mx_objs[ref] = row
        return row
