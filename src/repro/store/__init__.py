"""Persistent artifact store: content-addressed caching across processes.

PR 1's engine made a single process fast; this package makes *repeat*
processes fast.  Gathered measurement snapshots and inference results are
encoded columnar (:mod:`repro.store.codec`) and persisted under digests
of their full provenance (:mod:`repro.store.artifacts`), so every later
``python -m repro`` invocation, pytest session, or bench run re-reads
instead of re-measuring — mirroring how the paper's own pipeline consumes
materialized OpenINTEL/Censys archives rather than live services.
"""

from .artifacts import (
    CACHE_ENV,
    CACHE_MAX_ENV,
    DEFAULT_MAX_BYTES,
    ArtifactStore,
    SCHEMA_VERSION,
    baseline_kind,
    batch_kind,
    cache_key,
    shard_kind,
)
from .codec import (
    CODEC_VERSION,
    CodecError,
    decode_inferences,
    decode_measurements,
    decode_result,
    encode_inferences,
    encode_measurements,
    encode_result,
)
from .delta import DeltaReport, ResultView, SnapshotView, diff, diff_signatures

__all__ = [
    "ArtifactStore",
    "CACHE_ENV",
    "CACHE_MAX_ENV",
    "CODEC_VERSION",
    "CodecError",
    "DEFAULT_MAX_BYTES",
    "DeltaReport",
    "ResultView",
    "SCHEMA_VERSION",
    "SnapshotView",
    "diff",
    "diff_signatures",
    "baseline_kind",
    "batch_kind",
    "cache_key",
    "shard_kind",
    "decode_inferences",
    "decode_measurements",
    "decode_result",
    "encode_inferences",
    "encode_measurements",
    "encode_result",
]
