"""CAIDA Routeviews prefix2as snapshots.

The paper augments every IP address with routing information from CAIDA's
prefix-to-AS dataset [6].  :class:`Prefix2ASDataset` is the file-shaped
artifact: a frozen list of (prefix, origin ASN) rows exported from the live
routing table, with its own LPM lookup, so the inference pipeline consumes
a dataset snapshot rather than the simulator's internals — exactly as the
real pipeline consumes a downloaded file.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.asn import AutonomousSystem, PrefixToASTable
from ..netsim.ip import IPv4Prefix


@dataclass(frozen=True)
class ASInfo:
    """Routing metadata for one address: origin AS number, name, country."""

    asn: int
    name: str
    country: str


class Prefix2ASDataset:
    """An immutable prefix→AS snapshot with longest-prefix-match lookup."""

    def __init__(
        self,
        rows: list[tuple[IPv4Prefix, int]],
        as_index: dict[int, AutonomousSystem],
    ):
        self._table = PrefixToASTable()
        for asys in as_index.values():
            self._table.register_as(asys)
        for prefix, asn in rows:
            self._table.announce(prefix, asn)
        self._rows = list(rows)

    @classmethod
    def from_table(cls, table: PrefixToASTable) -> "Prefix2ASDataset":
        """Export a snapshot from a live routing table."""
        as_index = {asys.number: asys for asys in table.autonomous_systems()}
        return cls(rows=table.announcements(), as_index=as_index)

    def lookup(self, address: str) -> ASInfo | None:
        asys = self._table.lookup(address)
        if asys is None:
            return None
        return ASInfo(asn=asys.number, name=asys.name, country=asys.country)

    def lookup_asn(self, address: str) -> int | None:
        return self._table.lookup_asn(address)

    def rows(self) -> list[tuple[IPv4Prefix, int]]:
        """The dataset rows, as they would appear in the published file."""
        return list(self._rows)

    def to_lines(self) -> list[str]:
        """Render in the Routeviews ``prefix<TAB>length<TAB>asn`` format."""
        return [
            f"{prefix.first}\t{prefix.length}\t{asn}"
            for prefix, asn in self._rows
        ]

    def __len__(self) -> int:
        return len(self._rows)
