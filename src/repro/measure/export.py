"""Dataset export / import: JSONL serialization of measurement records.

OpenINTEL and Censys publish their measurements as files (Avro/JSON); the
paper's pipeline consumes those files, not live services.  This module
provides the same decoupling for the simulator: DNS snapshot records and
port-25 scan records serialize to JSON lines and load back into the exact
objects the inference pipeline consumes, so a measurement run can be
persisted once and re-analyzed many times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import date
from typing import Iterable, Iterator, TextIO

from ..tls.cert import Certificate
from .censys import Port25State, PortScanRecord
from .openintel import DNSSnapshotRecord, MXObservation


class ExportError(ValueError):
    """Raised on malformed exported data."""


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------

def certificate_to_dict(cert: Certificate) -> dict:
    return {
        "subject_cn": cert.subject_cn,
        "sans": list(cert.sans),
        "issuer": cert.issuer,
        "self_signed": cert.self_signed,
        "not_before": cert.not_before.isoformat(),
        "not_after": cert.not_after.isoformat(),
        "serial": cert.serial,
    }


def certificate_from_dict(data: dict) -> Certificate:
    try:
        return Certificate(
            subject_cn=data["subject_cn"],
            sans=tuple(data.get("sans", ())),
            issuer=data.get("issuer", "Simulated CA"),
            self_signed=bool(data.get("self_signed", False)),
            not_before=date.fromisoformat(data["not_before"]),
            not_after=date.fromisoformat(data["not_after"]),
            serial=int(data.get("serial", 0)),
        )
    except (KeyError, ValueError) as error:
        raise ExportError(f"bad certificate payload: {error}") from error


# ---------------------------------------------------------------------------
# DNS snapshot records (the OpenINTEL export)
# ---------------------------------------------------------------------------

def dns_record_to_dict(record: DNSSnapshotRecord) -> dict:
    return {
        "domain": record.domain,
        "date": record.measured_on.isoformat(),
        "mx": [
            {
                "name": observation.name,
                "preference": observation.preference,
                "addresses": list(observation.addresses),
            }
            for observation in record.mx
        ],
        "txt": list(record.txt),
    }


def dns_record_from_dict(data: dict) -> DNSSnapshotRecord:
    try:
        return DNSSnapshotRecord(
            domain=data["domain"],
            measured_on=date.fromisoformat(data["date"]),
            mx=tuple(
                MXObservation(
                    name=entry["name"],
                    preference=int(entry["preference"]),
                    addresses=tuple(entry.get("addresses", ())),
                )
                for entry in data.get("mx", ())
            ),
            txt=tuple(data.get("txt", ())),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ExportError(f"bad DNS record payload: {error}") from error


# ---------------------------------------------------------------------------
# port-25 scan records (the Censys export)
# ---------------------------------------------------------------------------

def scan_record_to_dict(record: PortScanRecord) -> dict:
    payload: dict = {
        "ip": record.address,
        "date": record.scanned_on.isoformat(),
        "state": record.state.value,
    }
    if record.has_smtp:
        payload.update(
            {
                "banner": record.banner,
                "ehlo": record.ehlo,
                "starttls": record.starttls,
            }
        )
        if record.certificate is not None:
            payload["certificate"] = certificate_to_dict(record.certificate)
    return payload


def scan_record_from_dict(data: dict) -> PortScanRecord:
    try:
        certificate = None
        if "certificate" in data:
            certificate = certificate_from_dict(data["certificate"])
        return PortScanRecord(
            address=data["ip"],
            scanned_on=date.fromisoformat(data["date"]),
            state=Port25State(data["state"]),
            banner=data.get("banner"),
            ehlo=data.get("ehlo"),
            starttls=bool(data.get("starttls", False)),
            certificate=certificate,
        )
    except (KeyError, ValueError) as error:
        raise ExportError(f"bad scan record payload: {error}") from error


# ---------------------------------------------------------------------------
# JSONL streams
# ---------------------------------------------------------------------------

@dataclass
class JSONLWriter:
    """Writes one JSON document per line to a text stream."""

    stream: TextIO
    count: int = 0

    def write(self, payload: dict) -> None:
        self.stream.write(json.dumps(payload, sort_keys=True))
        self.stream.write("\n")
        self.count += 1


def write_dns_snapshot(records: Iterable[DNSSnapshotRecord], stream: TextIO) -> int:
    writer = JSONLWriter(stream)
    for record in records:
        writer.write(dns_record_to_dict(record))
    return writer.count


def read_dns_snapshot(stream: TextIO) -> Iterator[DNSSnapshotRecord]:
    for line_number, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ExportError(f"line {line_number}: invalid JSON") from error
        yield dns_record_from_dict(data)


def write_scan_data(records: Iterable[PortScanRecord], stream: TextIO) -> int:
    writer = JSONLWriter(stream)
    for record in records:
        writer.write(scan_record_to_dict(record))
    return writer.count


def read_scan_data(stream: TextIO) -> Iterator[PortScanRecord]:
    for line_number, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ExportError(f"line {line_number}: invalid JSON") from error
        yield scan_record_from_dict(data)
