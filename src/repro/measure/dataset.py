"""The joined measurement dataset: what the inference pipeline consumes.

Reproduces Section 4.3 ("Data Gathering"): starting from a target list and
a snapshot, pull MX + A records from OpenINTEL, augment addresses with
CAIDA routing data, and attach Censys port-25 captures.  The result is one
:class:`DomainMeasurement` per domain — the single input type for both the
priority-based approach and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from ..engine.stats import STATS
from .caida import ASInfo, Prefix2ASDataset
from .censys import CensysScanner, PortScanRecord
from .openintel import DNSSnapshotRecord, OpenINTELPlatform


@dataclass(frozen=True)
class IPObservation:
    """One resolved MX address with routing and scan context."""

    address: str
    as_info: ASInfo | None
    scan: PortScanRecord | None  # None = Censys has no data for this IP

    @property
    def has_smtp(self) -> bool:
        return self.scan is not None and self.scan.has_smtp


@dataclass(frozen=True)
class MXData:
    """One MX record with fully joined per-address observations."""

    name: str
    preference: int
    ips: tuple[IPObservation, ...]

    @property
    def resolved(self) -> bool:
        return bool(self.ips)

    @property
    def has_smtp(self) -> bool:
        return any(ip.has_smtp for ip in self.ips)


@dataclass(frozen=True)
class DomainMeasurement:
    """Everything measured about one domain on one snapshot day."""

    domain: str
    measured_on: date
    mx_set: tuple[MXData, ...]
    txt: tuple[str, ...] = ()  # apex TXT records (SPF policies)

    @property
    def spf_records(self) -> tuple[str, ...]:
        return tuple(t for t in self.txt if t.lower().startswith("v=spf1"))

    @property
    def has_mx(self) -> bool:
        return bool(self.mx_set)

    @property
    def primary_mx(self) -> tuple[MXData, ...]:
        """The most-preferred MX records (the paper's "primary" provider)."""
        if not self.mx_set:
            return ()
        best = min(mx.preference for mx in self.mx_set)
        return tuple(mx for mx in self.mx_set if mx.preference == best)

    @property
    def has_smtp_server(self) -> bool:
        return any(mx.has_smtp for mx in self.mx_set)

    def all_ips(self) -> list[IPObservation]:
        seen: dict[str, IPObservation] = {}
        for mx in self.mx_set:
            for ip in mx.ips:
                seen.setdefault(ip.address, ip)
        return list(seen.values())


@dataclass
class MeasurementGatherer:
    """Joins the three data sources into per-domain measurements.

    With ``memoize`` on (the default), joined per-``(address, date)``
    observations and per-address routing lookups are interned across
    calls: the same provider addresses back thousands of domains in every
    corpus and snapshot, so repeat joins are dictionary hits rather than
    scan/LPM work.  Interned objects are immutable, so sharing them across
    measurements cannot change any inference.
    """

    openintel: OpenINTELPlatform
    censys: CensysScanner
    prefix2as: Prefix2ASDataset
    memoize: bool = True
    _obs_cache: dict[tuple[str, date], IPObservation] = field(default_factory=dict)
    _as_cache: dict[str, ASInfo | None] = field(default_factory=dict)

    def gather_domain(self, domain: str, snapshot_index: int) -> DomainMeasurement | None:
        """Join all sources for one domain; None when out of DNS coverage."""
        dns_record = self.openintel.measure_domain(domain, snapshot_index)
        if dns_record is None:
            return None
        return self._join(dns_record)

    def gather(
        self, domains: list[str], snapshot_index: int
    ) -> dict[str, DomainMeasurement]:
        """Join all sources for a target list at one snapshot."""
        measurements = {}
        for domain, dns_record in self.openintel.measure(domains, snapshot_index).items():
            measurements[domain] = self._join(dns_record)
        return measurements

    def _join(self, dns_record: DNSSnapshotRecord) -> DomainMeasurement:
        scanned_on = dns_record.measured_on
        mx_set = []
        for observation in dns_record.mx:
            ips = tuple(
                self._observe(address, scanned_on) for address in observation.addresses
            )
            mx_set.append(
                MXData(name=observation.name, preference=observation.preference, ips=ips)
            )
        return DomainMeasurement(
            domain=dns_record.domain,
            measured_on=scanned_on,
            mx_set=tuple(mx_set),
            txt=dns_record.txt,
        )

    def _observe(self, address: str, scanned_on: date) -> IPObservation:
        """One joined address observation, interned per (address, date)."""
        if not self.memoize:
            return IPObservation(
                address=address,
                as_info=self.prefix2as.lookup(address),
                scan=self.censys.scan_address(address, scanned_on),
            )
        key = (address, scanned_on)
        cached = self._obs_cache.get(key)
        if cached is not None:
            STATS.inc("gather.obs.hit")
            return cached
        STATS.inc("gather.obs.miss")
        observation = IPObservation(
            address=address,
            as_info=self._lookup_as(address),
            scan=self.censys.scan_address(address, scanned_on),
        )
        self._obs_cache[key] = observation
        return observation

    def _lookup_as(self, address: str) -> ASInfo | None:
        """Routing lookup, interned per address (prefix2as has no date axis)."""
        if address in self._as_cache:
            STATS.inc("gather.as.hit")
            return self._as_cache[address]
        STATS.inc("gather.as.miss")
        info = self.prefix2as.lookup(address)
        self._as_cache[address] = info
        return info

    def trim_caches(self, max_entries: int) -> int:
        """Drop memo caches that outgrew *max_entries* keys; returns drops.

        The streamed gather path calls this between batches so the
        interning dictionaries cannot grow with the corpus.  Every cached
        value is recomputed identically on the next miss (the caches are
        pure memoization), so trimming can never change an output.
        """
        dropped = 0
        if len(self._obs_cache) > max_entries:
            dropped += len(self._obs_cache)
            self._obs_cache.clear()
        if len(self._as_cache) > max_entries:
            dropped += len(self._as_cache)
            self._as_cache.clear()
        dropped += self.censys.trim_cache(max_entries)
        dropped += self.openintel.trim_cache(max_entries)
        return dropped

    def adopt(self, measurements: dict[str, DomainMeasurement]) -> None:
        """Intern observations produced elsewhere.

        Keeps the parent-process caches warm when shards were gathered in
        forked workers whose in-process caches are discarded — and when a
        snapshot was loaded from the persistent artifact store instead of
        measured, so follow-up gathers over overlapping infrastructure
        (showcase domains, churn studies) reuse the persisted records.
        """
        if not self.memoize:
            return
        adopted = 0
        for measurement in measurements.values():
            for mx in measurement.mx_set:
                for ip in mx.ips:
                    key = (ip.address, measurement.measured_on)
                    if key not in self._obs_cache:
                        self._obs_cache[key] = ip
                        adopted += 1
                    if ip.address not in self._as_cache:
                        self._as_cache[ip.address] = ip.as_info
                    self.censys.adopt(ip.address, measurement.measured_on, ip.scan)
        if adopted:
            STATS.inc("gather.adopted", adopted)
