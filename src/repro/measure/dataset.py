"""The joined measurement dataset: what the inference pipeline consumes.

Reproduces Section 4.3 ("Data Gathering"): starting from a target list and
a snapshot, pull MX + A records from OpenINTEL, augment addresses with
CAIDA routing data, and attach Censys port-25 captures.  The result is one
:class:`DomainMeasurement` per domain — the single input type for both the
priority-based approach and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from .caida import ASInfo, Prefix2ASDataset
from .censys import CensysScanner, PortScanRecord
from .openintel import DNSSnapshotRecord, OpenINTELPlatform


@dataclass(frozen=True)
class IPObservation:
    """One resolved MX address with routing and scan context."""

    address: str
    as_info: ASInfo | None
    scan: PortScanRecord | None  # None = Censys has no data for this IP

    @property
    def has_smtp(self) -> bool:
        return self.scan is not None and self.scan.has_smtp


@dataclass(frozen=True)
class MXData:
    """One MX record with fully joined per-address observations."""

    name: str
    preference: int
    ips: tuple[IPObservation, ...]

    @property
    def resolved(self) -> bool:
        return bool(self.ips)

    @property
    def has_smtp(self) -> bool:
        return any(ip.has_smtp for ip in self.ips)


@dataclass(frozen=True)
class DomainMeasurement:
    """Everything measured about one domain on one snapshot day."""

    domain: str
    measured_on: date
    mx_set: tuple[MXData, ...]
    txt: tuple[str, ...] = ()  # apex TXT records (SPF policies)

    @property
    def spf_records(self) -> tuple[str, ...]:
        return tuple(t for t in self.txt if t.lower().startswith("v=spf1"))

    @property
    def has_mx(self) -> bool:
        return bool(self.mx_set)

    @property
    def primary_mx(self) -> tuple[MXData, ...]:
        """The most-preferred MX records (the paper's "primary" provider)."""
        if not self.mx_set:
            return ()
        best = min(mx.preference for mx in self.mx_set)
        return tuple(mx for mx in self.mx_set if mx.preference == best)

    @property
    def has_smtp_server(self) -> bool:
        return any(mx.has_smtp for mx in self.mx_set)

    def all_ips(self) -> list[IPObservation]:
        seen: dict[str, IPObservation] = {}
        for mx in self.mx_set:
            for ip in mx.ips:
                seen.setdefault(ip.address, ip)
        return list(seen.values())


@dataclass
class MeasurementGatherer:
    """Joins the three data sources into per-domain measurements."""

    openintel: OpenINTELPlatform
    censys: CensysScanner
    prefix2as: Prefix2ASDataset

    def gather_domain(self, domain: str, snapshot_index: int) -> DomainMeasurement | None:
        """Join all sources for one domain; None when out of DNS coverage."""
        dns_record = self.openintel.measure_domain(domain, snapshot_index)
        if dns_record is None:
            return None
        return self._join(dns_record)

    def gather(
        self, domains: list[str], snapshot_index: int
    ) -> dict[str, DomainMeasurement]:
        """Join all sources for a target list at one snapshot."""
        measurements = {}
        for domain, dns_record in self.openintel.measure(domains, snapshot_index).items():
            measurements[domain] = self._join(dns_record)
        return measurements

    def _join(self, dns_record: DNSSnapshotRecord) -> DomainMeasurement:
        scanned_on = dns_record.measured_on
        mx_set = []
        for observation in dns_record.mx:
            ips = tuple(
                IPObservation(
                    address=address,
                    as_info=self.prefix2as.lookup(address),
                    scan=self.censys.scan_address(address, scanned_on),
                )
                for address in observation.addresses
            )
            mx_set.append(
                MXData(name=observation.name, preference=observation.preference, ips=ips)
            )
        return DomainMeasurement(
            domain=dns_record.domain,
            measured_on=scanned_on,
            mx_set=tuple(mx_set),
            txt=dns_record.txt,
        )
