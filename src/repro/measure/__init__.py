"""Measurement substrates: OpenINTEL, Censys, CAIDA, and the joined dataset."""

from .caida import ASInfo, Prefix2ASDataset
from .censys import CensysScanner, Port25State, PortScanRecord
from .dataset import DomainMeasurement, IPObservation, MeasurementGatherer, MXData
from .openintel import DNSSnapshotRecord, MXObservation, OpenINTELPlatform

__all__ = [
    "ASInfo",
    "CensysScanner",
    "DNSSnapshotRecord",
    "DomainMeasurement",
    "IPObservation",
    "MXData",
    "MXObservation",
    "MeasurementGatherer",
    "OpenINTELPlatform",
    "Port25State",
    "PortScanRecord",
    "Prefix2ASDataset",
]
