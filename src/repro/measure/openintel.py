"""OpenINTEL-style active DNS measurement platform.

Reproduces the observable surface of OpenINTEL [38] used in Section 4.2.1:
for a list of target domains and a snapshot date, record each domain's MX
records and the IPv4 addresses the MX names resolve to.  Coverage policy is
part of the model — OpenINTEL had no ``.gov`` coverage before June 2018, so
the platform refuses to answer for TLDs before their coverage start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from ..dnscore import Resolver, RRType, ZoneDB
from ..dnscore.names import normalize


@dataclass(frozen=True)
class MXObservation:
    """One MX record as measured: the name, preference, and resolved IPs."""

    name: str
    preference: int
    addresses: tuple[str, ...]


@dataclass(frozen=True)
class DNSSnapshotRecord:
    """Everything the platform learned about one domain on one day."""

    domain: str
    measured_on: date
    mx: tuple[MXObservation, ...]
    txt: tuple[str, ...] = ()  # apex TXT records (SPF policies live here)

    @property
    def has_mx(self) -> bool:
        return bool(self.mx)

    @property
    def most_preferred(self) -> tuple[MXObservation, ...]:
        """The primary MX set: all records tied at the best preference."""
        if not self.mx:
            return ()
        best = min(observation.preference for observation in self.mx)
        return tuple(obs for obs in self.mx if obs.preference == best)

    @property
    def all_addresses(self) -> tuple[str, ...]:
        seen: list[str] = []
        for observation in self.mx:
            for address in observation.addresses:
                if address not in seen:
                    seen.append(address)
        return tuple(seen)


@dataclass
class OpenINTELPlatform:
    """Active DNS measurement over per-snapshot zone databases.

    ``faults`` (a :class:`~repro.faults.FaultInjector`, or None) makes the
    per-snapshot resolvers fail the way OpenINTEL's recorded resolutions
    do — SERVFAILs, timed-out queries, partially answered zones — scoped
    by snapshot date, so a domain can be dark on one measurement day and
    present the next.
    """

    snapshot_zones: list[ZoneDB]
    snapshot_dates: tuple[date, ...]
    # TLD → index of the first snapshot with coverage (OpenINTEL gained
    # .gov coverage only from June 2018, Section 4.1).
    tld_coverage_start: dict[str, int] = field(default_factory=lambda: {"gov": 2})
    faults: object | None = None

    def __post_init__(self) -> None:
        if len(self.snapshot_zones) != len(self.snapshot_dates):
            raise ValueError("one ZoneDB per snapshot date required")
        self._resolvers = [
            Resolver(db=zdb, faults=self.faults, fault_scope=day.isoformat())
            for zdb, day in zip(self.snapshot_zones, self.snapshot_dates)
        ]

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshot_dates)

    def covers(self, domain: str, snapshot_index: int) -> bool:
        tld = normalize(domain).rsplit(".", 1)[-1]
        return snapshot_index >= self.tld_coverage_start.get(tld, 0)

    def measure_domain(self, domain: str, snapshot_index: int) -> DNSSnapshotRecord | None:
        """Measure one domain at one snapshot; None when out of coverage."""
        domain = normalize(domain)
        if not 0 <= snapshot_index < self.num_snapshots:
            raise IndexError(f"no snapshot {snapshot_index}")
        if not self.covers(domain, snapshot_index):
            return None
        resolver = self._resolvers[snapshot_index]
        observations = []
        for record in resolver.resolve_mx(domain):
            addresses = tuple(resolver.resolve_a(record.rdata))
            observations.append(
                MXObservation(
                    name=record.rdata,
                    preference=record.preference,
                    addresses=addresses,
                )
            )
        txt_answer = resolver.resolve(domain, RRType.TXT)
        return DNSSnapshotRecord(
            domain=domain,
            measured_on=self.snapshot_dates[snapshot_index],
            mx=tuple(observations),
            txt=tuple(txt_answer.rdatas) if txt_answer else (),
        )

    def measure(
        self, domains: list[str], snapshot_index: int
    ) -> dict[str, DNSSnapshotRecord]:
        """Measure a target list; domains out of coverage are omitted."""
        results: dict[str, DNSSnapshotRecord] = {}
        for domain in domains:
            record = self.measure_domain(domain, snapshot_index)
            if record is not None:
                results[record.domain] = record
        return results

    def trim_cache(self, max_entries: int) -> int:
        """Clear the per-snapshot resolver caches once they outgrow the cap.

        Resolver answers are pure in (zone, fault plan, name, type), so a
        cleared entry resolves identically on the next query — the caches
        are the dominant cross-snapshot memory growth on streamed runs
        and must stay bounded for the flat-RSS gate to hold.
        """
        cached = sum(len(resolver._cache) for resolver in self._resolvers)
        if cached <= max_entries:
            return 0
        for resolver in self._resolvers:
            resolver.clear_cache()
        return cached

    def stable_domains(self, domains: list[str]) -> list[str]:
        """Domains that publish an MX record at *every covered* snapshot.

        This is the paper's stability filter (Section 4.1): it removes
        churned registrations and domains that dropped mail service.
        """
        stable = []
        for domain in domains:
            records = [
                self.measure_domain(domain, index)
                for index in range(self.num_snapshots)
                if self.covers(domain, index)
            ]
            if records and all(record is not None and record.has_mx for record in records):
                stable.append(normalize(domain))
        return stable
