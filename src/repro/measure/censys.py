"""Censys-style Internet-wide port-25 scanning.

Models the scan data the paper consumes from Censys [12] (Section 4.2.2):
per-IP, per-day application-layer captures of the SMTP banner, the EHLO
response, and any STARTTLS certificate — including the platform's blind
spots: addresses can be missing from the data entirely (owner opt-outs,
intermittent failures; the paper calls out EIG specifically), and covered
addresses may simply not listen on port 25.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from datetime import date
from typing import Callable

from ..engine.stats import STATS
from ..smtp.server import SMTP_RELAY_PORT, SMTPHostTable
from ..smtp.session import SessionOutcome, SMTPClient
from ..tls.cert import Certificate


class Port25State(enum.Enum):
    """What the scanner observed on TCP port 25."""

    OPEN = "open"
    CLOSED = "closed"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class PortScanRecord:
    """One IP's port-25 capture on one scan day.

    Only ``OPEN`` captures carry application-layer evidence: a host that
    timed out (or refused the connection) was never *observed*, so any
    partial banner or certificate a dying session produced must not leak
    into inference.  The constructor enforces that invariant — downstream
    consumers used to assume it silently, which held only on the happy
    path where non-OPEN records were always built bare.
    """

    address: str
    scanned_on: date
    state: Port25State
    banner: str | None = None
    ehlo: str | None = None
    starttls: bool = False
    certificate: Certificate | None = None

    def __post_init__(self) -> None:
        if self.state is not Port25State.OPEN:
            object.__setattr__(self, "banner", None)
            object.__setattr__(self, "ehlo", None)
            object.__setattr__(self, "starttls", False)
            object.__setattr__(self, "certificate", None)

    @property
    def has_smtp(self) -> bool:
        return self.state is Port25State.OPEN


def _coverage_roll(address: str, scanned_on: date) -> float:
    """Deterministic uniform roll for coverage decisions."""
    return zlib.crc32(f"{address}|{scanned_on.isoformat()}".encode()) / 0xFFFFFFFF


@dataclass
class CensysScanner:
    """Scans the simulated IPv4 space and serves per-IP records.

    ``coverage_for`` maps an address to the probability that Censys has any
    data for it on a given day; misses are deterministic in (address, date).

    ``faults`` (a :class:`~repro.faults.FaultInjector`, or None) layers the
    chaos workload on top: per-snapshot host dropout (the paper's
    intermittent-scanner gaps, Section 4.2.2) and session faults injected
    by the probe client — against which the scanner retries transient
    timeouts with exponential backoff, bounded by the plan's per-host
    virtual-time budget.
    """

    host_table: SMTPHostTable
    coverage_for: Callable[[str], float] = lambda _address: 1.0
    helo_name: str = "scanner.censys.io"
    faults: object | None = None
    _cache: dict[tuple[str, date], PortScanRecord | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._client = SMTPClient(
            self.host_table, helo_name=self.helo_name, faults=self.faults
        )

    def scan_address(self, address: str, scanned_on: date) -> PortScanRecord | None:
        """Scan one address; None models "Censys has no data for this IP"."""
        key = (address, scanned_on)
        if key not in self._cache:
            STATS.inc("censys.scan.miss")
            self._cache[key] = self._scan_uncached(address, scanned_on)
        else:
            STATS.inc("censys.scan.hit")
        return self._cache[key]

    def adopt(self, address: str, scanned_on: date, record: PortScanRecord | None) -> None:
        """Intern a record produced elsewhere (a parallel gather worker)."""
        self._cache.setdefault((address, scanned_on), record)

    def trim_cache(self, max_entries: int) -> int:
        """Drop the scan cache once it outgrows *max_entries* keys.

        Scans are deterministic per ``(address, date)`` (fault rolls
        included), so re-scanning after a trim reproduces the same
        records — the streamed gather path relies on this.
        """
        if len(self._cache) <= max_entries:
            return 0
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    def _scan_uncached(self, address: str, scanned_on: date) -> PortScanRecord | None:
        if self.faults is not None and self.faults.scan_dropped(address, scanned_on):
            return None
        if _coverage_roll(address, scanned_on) >= self.coverage_for(address):
            return None
        result = self._probe_with_retry(address, scanned_on)
        if result.outcome is SessionOutcome.TIMEOUT:
            return PortScanRecord(
                address=address, scanned_on=scanned_on, state=Port25State.TIMEOUT
            )
        if result.outcome is SessionOutcome.CONNECTION_REFUSED:
            return PortScanRecord(
                address=address, scanned_on=scanned_on, state=Port25State.CLOSED
            )
        return PortScanRecord(
            address=address,
            scanned_on=scanned_on,
            state=Port25State.OPEN,
            banner=result.banner_text,
            ehlo=result.ehlo_identity,
            starttls=result.starttls_offered,
            certificate=result.certificate,
        )

    def _probe_with_retry(self, address: str, scanned_on: date):
        """One probe, plus bounded retry-with-backoff on faulted runs.

        Transient (injected) timeouts re-roll per attempt, so a flaky
        host that would answer on a later try yields the same record as
        one that never failed; hosts that stay dark through the backoff
        budget surface as ``TIMEOUT`` — the provenance the paper's tier
        ladder degrades around.  Fault-free runs never enter the loop.
        """
        result = self._client.probe(address, port=SMTP_RELAY_PORT, on=scanned_on)
        if self.faults is None or result.outcome is not SessionOutcome.TIMEOUT:
            return result
        for attempt in self.faults.retry_attempts():
            STATS.inc("faults.smtp.retry")
            result = self._client.probe(
                address, port=SMTP_RELAY_PORT, on=scanned_on, attempt=attempt
            )
            if result.outcome is not SessionOutcome.TIMEOUT:
                STATS.inc("faults.smtp.recovered")
                return result
        STATS.inc("faults.smtp.exhausted")
        return result

    def scan_many(
        self, addresses: list[str], scanned_on: date
    ) -> dict[str, PortScanRecord]:
        """Scan a batch; addresses without data are omitted (as in the API)."""
        records = {}
        for address in addresses:
            record = self.scan_address(address, scanned_on)
            if record is not None:
                records[address] = record
        return records
