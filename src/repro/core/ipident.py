"""Step 2 — IDs of an IP address (Section 3.2.2).

For each IP address an MX resolves to, derive up to two candidate provider
IDs:

* **ID from TLS certificate** — if the address presented a certificate that
  a browser trust store accepts, use the representative name of its
  certificate group.
* **ID from Banner/EHLO** — the registered domain of the FQDN the server
  claims, when banner and EHLO agree (or only one of the two carries a
  valid FQDN).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import IPObservation
from ..smtp.banner import identity_from_message
from ..tls.ca import TrustStore
from .certgroup import CertificateGroups
from .types import IPIdentity


@dataclass
class IPIdentifier:
    """Derives :class:`IPIdentity` objects from scan observations."""

    groups: CertificateGroups
    trust_store: TrustStore
    psl: PublicSuffixList | None = None
    require_valid_cert: bool = True

    def __post_init__(self) -> None:
        self.psl = self.psl or default_psl()

    def identify(self, observation: IPObservation, on: date | None = None) -> IPIdentity:
        scan = observation.scan
        if scan is None or not scan.has_smtp:
            return IPIdentity(address=observation.address)

        cert_id = None
        fingerprint = None
        cert_names: tuple[str, ...] = ()
        if scan.certificate is not None:
            fingerprint = scan.certificate.fingerprint()
            cert_names = scan.certificate.names()
            acceptable = (
                self.trust_store.is_valid(scan.certificate, on=on)
                if self.require_valid_cert
                else True
            )
            if acceptable:
                cert_id = self.groups.representative_for(scan.certificate)

        banner_id, banner_fqdn = self._banner_id(scan.banner, scan.ehlo)
        return IPIdentity(
            address=observation.address,
            cert_id=cert_id,
            banner_id=banner_id,
            cert_fingerprint=fingerprint,
            banner_fqdn=banner_fqdn,
            cert_names=cert_names,
        )

    def _banner_id(
        self, banner: str | None, ehlo: str | None
    ) -> tuple[str | None, str | None]:
        """(registered domain, claimed FQDN) from the banner/EHLO pair.

        The methodology uses the registered domain that shows up in both
        messages; when only one message carries a valid FQDN, that one is
        used.
        """
        banner_identity = identity_from_message(banner, self.psl) if banner else None
        ehlo_identity = identity_from_message(ehlo, self.psl) if ehlo else None
        banner_domain = banner_identity.registered_domain if banner_identity else None
        ehlo_domain = ehlo_identity.registered_domain if ehlo_identity else None
        fqdn = (
            (banner_identity.fqdn if banner_identity else None)
            or (ehlo_identity.fqdn if ehlo_identity else None)
        )
        if banner_domain and ehlo_domain:
            if banner_domain == ehlo_domain:
                return banner_domain, fqdn
            return None, fqdn
        return banner_domain or ehlo_domain, fqdn
