"""Inference-result serialization: publishable per-domain verdicts.

The paper ships its analysis results alongside the code; this module
renders :class:`~repro.core.types.DomainInference` objects to and from
plain JSON-compatible dictionaries so pipeline outputs can be persisted,
diffed between runs, or consumed by external tooling.
"""

from __future__ import annotations

from .types import DomainInference, DomainStatus, EvidenceSource, MXIdentity


class SerializeError(ValueError):
    """Raised on malformed serialized inference payloads."""


def mx_identity_to_dict(identity: MXIdentity) -> dict:
    payload: dict = {
        "mx": identity.mx_name,
        "provider_id": identity.provider_id,
        "source": identity.source.value,
    }
    if identity.corrected:
        payload["corrected"] = True
        payload["correction_reason"] = identity.correction_reason
    if identity.examined:
        payload["examined"] = True
    return payload


def mx_identity_from_dict(data: dict) -> MXIdentity:
    try:
        return MXIdentity(
            mx_name=data["mx"],
            provider_id=data["provider_id"],
            source=EvidenceSource(data["source"]),
            corrected=bool(data.get("corrected", False)),
            correction_reason=data.get("correction_reason"),
            examined=bool(data.get("examined", False)),
        )
    except (KeyError, ValueError) as error:
        raise SerializeError(f"bad MX identity payload: {error}") from error


def inference_to_dict(inference: DomainInference) -> dict:
    payload: dict = {
        "domain": inference.domain,
        "status": inference.status.value,
    }
    if inference.attributions:
        payload["attributions"] = dict(inference.attributions)
    if inference.mx_identities:
        payload["mx"] = [
            mx_identity_to_dict(identity) for identity in inference.mx_identities
        ]
    return payload


def inference_from_dict(data: dict) -> DomainInference:
    try:
        return DomainInference(
            domain=data["domain"],
            status=DomainStatus(data["status"]),
            attributions=dict(data.get("attributions", {})),
            mx_identities=tuple(
                mx_identity_from_dict(entry) for entry in data.get("mx", ())
            ),
        )
    except (KeyError, ValueError) as error:
        raise SerializeError(f"bad inference payload: {error}") from error


def results_to_dicts(inferences: dict[str, DomainInference]) -> list[dict]:
    """Serialize a whole run, sorted by domain for stable diffs."""
    return [inference_to_dict(inferences[domain]) for domain in sorted(inferences)]


def results_from_dicts(payloads: list[dict]) -> dict[str, DomainInference]:
    inferences = {}
    for payload in payloads:
        inference = inference_from_dict(payload)
        inferences[inference.domain] = inference
    return inferences
