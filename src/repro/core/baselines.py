"""The three baseline approaches of Section 3.3.

* **MX-only** — Trost's approach [36]: the registered domain of the MX name.
* **cert-based** — certificate IDs where available, MX fallback otherwise.
* **banner-based** — banner/EHLO IDs where available, MX fallback otherwise.

All three share steps 1–3 machinery with the priority pipeline but use a
single SMTP-level evidence source and never run step 4; the MX-only
approach uses no SMTP data at all (and is therefore "oblivious to SMTP
server presence" — footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement
from ..tls.ca import TrustStore
from .certgroup import CertificatePreprocessor
from .domainident import DomainIdentifier
from .ipident import IPIdentifier
from .mxident import MXIdentifier, mx_fallback_id
from .types import DomainInference, DomainStatus, EvidenceSource, MXIdentity

APPROACH_MX_ONLY = "mx-only"
APPROACH_CERT = "cert-based"
APPROACH_BANNER = "banner-based"
APPROACH_PRIORITY = "priority-based"

ALL_APPROACHES = (APPROACH_MX_ONLY, APPROACH_CERT, APPROACH_BANNER, APPROACH_PRIORITY)


@dataclass
class MXOnlyApproach:
    """Provider = registered domain of the most preferred MX name."""

    psl: PublicSuffixList | None = None
    split_credit: bool = True

    def __post_init__(self) -> None:
        self.psl = self.psl or default_psl()

    def run(self, measurements: dict[str, DomainMeasurement]) -> dict[str, DomainInference]:
        inferences = {}
        for domain, measurement in measurements.items():
            inferences[domain] = self._infer(measurement)
        return inferences

    def _infer(self, measurement: DomainMeasurement) -> DomainInference:
        if not measurement.has_mx:
            return DomainInference(domain=measurement.domain, status=DomainStatus.NO_MX)
        assert self.psl is not None
        provider_ids: list[str] = []
        identities = []
        for mx in measurement.primary_mx:
            provider_id = mx_fallback_id(mx.name, self.psl)
            identities.append(
                MXIdentity(mx_name=mx.name, provider_id=provider_id, source=EvidenceSource.MX)
            )
            if provider_id not in provider_ids:
                provider_ids.append(provider_id)
        if self.split_credit:
            weight = 1.0 / len(provider_ids)
            attributions = {provider_id: weight for provider_id in provider_ids}
        else:
            attributions = {provider_ids[0]: 1.0}
        return DomainInference(
            domain=measurement.domain,
            status=DomainStatus.INFERRED,
            attributions=attributions,
            mx_identities=tuple(identities),
        )


@dataclass
class SingleSourceApproach:
    """cert-based or banner-based: one SMTP evidence source + MX fallback."""

    trust_store: TrustStore
    source: EvidenceSource
    psl: PublicSuffixList | None = None
    split_credit: bool = True

    def __post_init__(self) -> None:
        if self.source is EvidenceSource.MX:
            raise ValueError("use MXOnlyApproach for the MX-only baseline")
        self.psl = self.psl or default_psl()

    def run(self, measurements: dict[str, DomainMeasurement]) -> dict[str, DomainInference]:
        certificates = [
            ip.scan.certificate
            for measurement in measurements.values()
            for ip in measurement.all_ips()
            if ip.scan is not None
            and ip.scan.has_smtp
            and ip.scan.certificate is not None
        ]
        groups = CertificatePreprocessor(self.psl).build(certificates)
        ip_identifier = IPIdentifier(groups=groups, trust_store=self.trust_store, psl=self.psl)
        mx_identifier = MXIdentifier(
            psl=self.psl,
            use_certs=self.source is EvidenceSource.CERT,
            use_banners=self.source is EvidenceSource.BANNER,
        )
        domain_identifier = DomainIdentifier(split_credit=self.split_credit)

        inferences = {}
        cache: dict[tuple, MXIdentity] = {}
        for domain, measurement in measurements.items():
            identities = {}
            for mx in measurement.primary_mx:
                key = (mx.name, tuple(ip.address for ip in mx.ips))
                if key not in cache:
                    ip_identities = [
                        ip_identifier.identify(ip, on=measurement.measured_on)
                        for ip in mx.ips
                    ]
                    cache[key] = mx_identifier.identify(mx, ip_identities)
                identities[mx.name] = cache[key]
            inferences[domain] = domain_identifier.identify(measurement, identities)
        return inferences


def cert_based(trust_store: TrustStore, psl: PublicSuffixList | None = None) -> SingleSourceApproach:
    """The cert-based baseline (TLS certificates + MX fallback)."""
    return SingleSourceApproach(trust_store=trust_store, source=EvidenceSource.CERT, psl=psl)


def banner_based(trust_store: TrustStore, psl: PublicSuffixList | None = None) -> SingleSourceApproach:
    """The banner-based baseline (Banner/EHLO messages + MX fallback)."""
    return SingleSourceApproach(trust_store=trust_store, source=EvidenceSource.BANNER, psl=psl)
