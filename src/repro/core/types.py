"""Data model of the inference pipeline: evidence sources, per-MX and
per-domain inference results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EvidenceSource(enum.Enum):
    """Which data source determined a provider ID (priority order)."""

    CERT = "cert"
    BANNER = "banner"
    MX = "mx"

    @property
    def priority(self) -> int:
        """Lower is stronger: certificates beat banners beat MX names."""
        return {"cert": 0, "banner": 1, "mx": 2}[self.value]


class DomainStatus(enum.Enum):
    """Inference outcome category for a domain (Table 4 / Figure 7)."""

    INFERRED = "inferred"      # a provider ID was assigned
    NO_MX = "no_mx"            # no MX record published
    NO_MX_IP = "no_mx_ip"      # MX records exist but none resolves
    NO_SMTP = "no_smtp"        # IPs resolve, nothing answers on port 25


@dataclass(frozen=True)
class IPIdentity:
    """Step-2 output: the IDs derivable for one IP address."""

    address: str
    cert_id: str | None = None       # representative name of the cert group
    banner_id: str | None = None     # registered domain from banner/EHLO
    cert_fingerprint: str | None = None
    banner_fqdn: str | None = None   # full FQDN the banner/EHLO claimed
    cert_names: tuple[str, ...] = () # FQDNs on the presented certificate

    @property
    def best_id(self) -> str | None:
        return self.cert_id or self.banner_id


@dataclass(frozen=True)
class MXIdentity:
    """Step-3 output (possibly revised by step 4) for one MX record."""

    mx_name: str
    provider_id: str
    source: EvidenceSource
    ip_identities: tuple[IPIdentity, ...] = ()
    corrected: bool = False
    correction_reason: str | None = None
    examined: bool = False           # surfaced by the step-4 candidate filter

    def with_correction(self, provider_id: str, reason: str) -> "MXIdentity":
        return MXIdentity(
            mx_name=self.mx_name,
            provider_id=provider_id,
            source=self.source,
            ip_identities=self.ip_identities,
            corrected=True,
            correction_reason=reason,
            examined=True,
        )

    def as_examined(self) -> "MXIdentity":
        if self.examined:
            return self
        return MXIdentity(
            mx_name=self.mx_name,
            provider_id=self.provider_id,
            source=self.source,
            ip_identities=self.ip_identities,
            corrected=self.corrected,
            correction_reason=self.correction_reason,
            examined=True,
        )


@dataclass(frozen=True)
class DomainInference:
    """Step-5 output: the provider attribution for one domain.

    ``attributions`` maps provider IDs to weights summing to 1 for
    INFERRED domains (a single 1.0 normally; equal splits when several
    providers tie at the best MX preference).
    """

    domain: str
    status: DomainStatus
    attributions: dict[str, float] = field(default_factory=dict)
    mx_identities: tuple[MXIdentity, ...] = ()

    @property
    def sole_provider_id(self) -> str | None:
        """The provider ID when the attribution is undivided, else None."""
        if len(self.attributions) == 1:
            return next(iter(self.attributions))
        return None

    @property
    def examined(self) -> bool:
        return any(identity.examined for identity in self.mx_identities)

    @property
    def corrected(self) -> bool:
        return any(identity.corrected for identity in self.mx_identities)
