"""Learned misidentification detection (extension of Section 3.4).

Step 4 of the methodology finds misidentifications with hand-written
heuristics plus manual review; the paper suggests "better handle corner
cases in an automatic way (e.g., with machine learning techniques)" as
future work.  This module implements that idea end to end:

* :func:`extract_features` turns one (domain, MX, identity) case into a
  numeric feature vector using only measurement-observable signals —
  endpoint popularity, evidence agreement, AS consistency, and hostname
  shape (VPS-style names are digit/dash-heavy);
* :class:`LogisticModel` is a small, dependency-light logistic regression
  (numpy, full-batch gradient descent, L2);
* :class:`MisidentificationLearner` builds a labeled dataset from a world
  with ground truth ("was the steps-1–3 inference wrong?"), trains, and
  evaluates on a *different* world so the result measures generalization,
  not memorization.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

import numpy as np

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement, MXData
from .companies import CompanyMap
from .misident import PopularityCounters
from .types import EvidenceSource, MXIdentity

FEATURE_NAMES: tuple[str, ...] = (
    "log_confidence",
    "source_is_cert",
    "source_is_banner",
    "cert_available",
    "banner_available",
    "cert_banner_agree",
    "id_is_own_domain",
    "id_is_large_provider",
    "as_matches_claimed_company",
    "as_info_available",
    "hostname_digit_fraction",
    "hostname_dash_count",
    "hostname_matches_vps_shape",
    "id_equals_mx_fallback",
)

_VPS_SHAPE_RE = re.compile(r"^(vps|s)[0-9a-f-]*\d[0-9a-f-]*\.", re.IGNORECASE)


def _hostname_shape(names: list[str]) -> tuple[float, float, float]:
    """(digit fraction, dash count, vps-shape flag) over endpoint names."""
    if not names:
        return 0.0, 0.0, 0.0
    digit_fractions, dash_counts, vps_flags = [], [], []
    for name in names:
        first_label = name.split(".")[0]
        digits = sum(1 for char in first_label if char.isdigit())
        digit_fractions.append(digits / len(first_label) if first_label else 0.0)
        dash_counts.append(float(first_label.count("-")))
        vps_flags.append(1.0 if _VPS_SHAPE_RE.match(name) else 0.0)
    return max(digit_fractions), max(dash_counts), max(vps_flags)


def extract_features(
    domain: str,
    mx: MXData,
    identity: MXIdentity,
    counters: PopularityCounters,
    company_map: CompanyMap,
    psl: PublicSuffixList | None = None,
) -> np.ndarray:
    """Feature vector for one inference case (see FEATURE_NAMES)."""
    psl = psl or default_psl()
    own = psl.registered_domain(domain) or domain
    mx_fallback = psl.registered_domain(identity.mx_name) or identity.mx_name

    cert_ids = {ip.cert_id for ip in identity.ip_identities if ip.cert_id}
    banner_ids = {ip.banner_id for ip in identity.ip_identities if ip.banner_id}

    slug = company_map.slug_for_provider_id(identity.provider_id)
    legitimate_asns = company_map.company_asns(slug) if slug else frozenset()
    observed_asns = {ip.as_info.asn for ip in mx.ips if ip.as_info is not None}
    as_available = 1.0 if observed_asns else 0.0
    as_match = (
        1.0 if legitimate_asns and observed_asns & legitimate_asns else 0.0
    )

    endpoint_names: list[str] = []
    for ip_identity in identity.ip_identities:
        if ip_identity.banner_fqdn:
            endpoint_names.append(ip_identity.banner_fqdn)
        endpoint_names.extend(
            name[2:] if name.startswith("*.") else name
            for name in ip_identity.cert_names
        )
    digit_fraction, dash_count, vps_shape = _hostname_shape(endpoint_names)

    return np.array(
        [
            math.log1p(counters.confidence(identity)),
            1.0 if identity.source is EvidenceSource.CERT else 0.0,
            1.0 if identity.source is EvidenceSource.BANNER else 0.0,
            1.0 if cert_ids else 0.0,
            1.0 if banner_ids else 0.0,
            1.0 if cert_ids and cert_ids == banner_ids else 0.0,
            1.0 if identity.provider_id == own else 0.0,
            1.0 if company_map.is_large_provider_id(identity.provider_id) else 0.0,
            as_match,
            as_available,
            digit_fraction,
            dash_count,
            vps_shape,
            1.0 if identity.provider_id == mx_fallback else 0.0,
        ],
        dtype=np.float64,
    )


@dataclass
class LogisticModel:
    """L2-regularized logistic regression, full-batch gradient descent."""

    weights: np.ndarray | None = None
    bias: float = 0.0
    _mean: np.ndarray | None = None
    _scale: np.ndarray | None = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 400,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        class_weighted: bool = True,
    ) -> "LogisticModel":
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be (n, d) aligned with labels")
        self._mean = features.mean(axis=0)
        self._scale = features.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        X = (features - self._mean) / self._scale
        y = labels.astype(np.float64)

        # Misidentifications are rare; weight the positive class up so the
        # model does not learn "always say correct".
        if class_weighted and y.sum() > 0:
            positive_weight = (len(y) - y.sum()) / y.sum()
        else:
            positive_weight = 1.0
        sample_weights = np.where(y > 0.5, positive_weight, 1.0)
        sample_weights = sample_weights / sample_weights.sum() * len(y)

        self.weights = np.zeros(X.shape[1])
        self.bias = 0.0
        n = len(y)
        for _epoch in range(epochs):
            logits = X @ self.weights + self.bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = (probabilities - y) * sample_weights
            gradient_w = X.T @ error / n + l2 * self.weights
            gradient_b = float(error.mean())
            self.weights -= learning_rate * gradient_w
            self.bias -= learning_rate * gradient_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None or self._mean is None or self._scale is None:
            raise RuntimeError("model is not fitted")
        X = (np.atleast_2d(features) - self._mean) / self._scale
        return 1.0 / (1.0 + np.exp(-(X @ self.weights + self.bias)))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def feature_importance(self) -> dict[str, float]:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        return dict(zip(FEATURE_NAMES, (float(w) for w in self.weights)))


@dataclass(frozen=True)
class EvaluationMetrics:
    """Binary-classification quality on a held-out world."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def total(self) -> int:
        return (
            self.true_positives + self.false_positives
            + self.false_negatives + self.true_negatives
        )


@dataclass
class LabeledCases:
    """A feature matrix plus labels ("1 = steps 1–3 got this MX wrong")."""

    features: np.ndarray
    labels: np.ndarray
    domains: list[str] = field(default_factory=list)

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self.labels) else 0.0


class MisidentificationLearner:
    """Builds datasets, trains, and evaluates the learned detector."""

    def __init__(self, company_map: CompanyMap, psl: PublicSuffixList | None = None):
        self.company_map = company_map
        self.psl = psl or default_psl()
        self.model = LogisticModel()

    def build_cases(
        self,
        measurements: dict[str, DomainMeasurement],
        identities: dict[str, dict[str, MXIdentity]],
        truth_of,
    ) -> LabeledCases:
        """Label each (domain, primary MX) case against ground truth.

        ``identities`` maps domain → {mx name → *uncorrected* identity};
        ``truth_of(domain)`` returns the ground-truth attribution dict.
        """
        counters = PopularityCounters()
        for measurement in measurements.values():
            counters.observe_domain(measurement)

        rows, labels, domains = [], [], []
        for domain, by_mx in identities.items():
            measurement = measurements[domain]
            truth_labels = {
                label if label not in ("SELF",) else "SELF"
                for label in truth_of(domain)
            }
            for mx in measurement.primary_mx:
                identity = by_mx.get(mx.name)
                if identity is None:
                    continue
                rows.append(
                    extract_features(
                        domain, mx, identity, counters, self.company_map, self.psl
                    )
                )
                resolved = self.company_map.resolve(domain, identity.provider_id)
                wrong = resolved not in truth_labels and not (
                    resolved == "SELF" and "SELF" in truth_labels
                )
                labels.append(1 if wrong else 0)
                domains.append(domain)
        if not rows:
            return LabeledCases(
                features=np.zeros((0, len(FEATURE_NAMES))),
                labels=np.zeros(0, dtype=np.int64),
            )
        return LabeledCases(
            features=np.vstack(rows),
            labels=np.array(labels, dtype=np.int64),
            domains=domains,
        )

    def train(self, cases: LabeledCases, **fit_kwargs) -> LogisticModel:
        self.model.fit(cases.features, cases.labels, **fit_kwargs)
        return self.model

    def evaluate(self, cases: LabeledCases, threshold: float = 0.5) -> EvaluationMetrics:
        predictions = self.model.predict(cases.features, threshold=threshold)
        labels = cases.labels
        return EvaluationMetrics(
            true_positives=int(((predictions == 1) & (labels == 1)).sum()),
            false_positives=int(((predictions == 1) & (labels == 0)).sum()),
            false_negatives=int(((predictions == 0) & (labels == 1)).sum()),
            true_negatives=int(((predictions == 0) & (labels == 0)).sum()),
        )
