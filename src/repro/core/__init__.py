"""The paper's contribution: the priority-based MX-to-provider methodology."""

from .baselines import (
    ALL_APPROACHES,
    APPROACH_BANNER,
    APPROACH_CERT,
    APPROACH_MX_ONLY,
    APPROACH_PRIORITY,
    MXOnlyApproach,
    SingleSourceApproach,
    banner_based,
    cert_based,
)
from .certgroup import CertGroup, CertificateGroups, CertificatePreprocessor
from .companies import NONE_LABEL, SELF_LABEL, CompanyMap
from .domainident import DomainIdentifier
from .ipident import IPIdentifier
from .misident import (
    CorrectionStats,
    MisidentificationChecker,
    PopularityCounters,
)
from .mxident import MXIdentifier, mx_fallback_id
from .pipeline import PipelineConfig, PipelineResult, PriorityPipeline
from .serialize import (
    inference_from_dict,
    inference_to_dict,
    results_from_dicts,
    results_to_dicts,
)
from .spf import EventualProviderAnalyzer, SPFRecord, parse_spf
from .types import (
    DomainInference,
    DomainStatus,
    EvidenceSource,
    IPIdentity,
    MXIdentity,
)

__all__ = [
    "ALL_APPROACHES",
    "APPROACH_BANNER",
    "APPROACH_CERT",
    "APPROACH_MX_ONLY",
    "APPROACH_PRIORITY",
    "CertGroup",
    "CertificateGroups",
    "CertificatePreprocessor",
    "CompanyMap",
    "CorrectionStats",
    "DomainIdentifier",
    "DomainInference",
    "DomainStatus",
    "EventualProviderAnalyzer",
    "EvidenceSource",
    "SPFRecord",
    "inference_from_dict",
    "inference_to_dict",
    "parse_spf",
    "results_from_dicts",
    "results_to_dicts",
    "IPIdentifier",
    "IPIdentity",
    "MXIdentifier",
    "MXIdentity",
    "MXOnlyApproach",
    "MisidentificationChecker",
    "NONE_LABEL",
    "PipelineConfig",
    "PipelineResult",
    "PopularityCounters",
    "PriorityPipeline",
    "SELF_LABEL",
    "SingleSourceApproach",
    "banner_based",
    "cert_based",
    "mx_fallback_id",
]
