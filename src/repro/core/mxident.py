"""Step 3 — provider ID of an MX record (Section 3.2.3).

Aggregates the per-IP identities of all addresses behind one MX record:

* if every IP has a certificate-derived ID and they agree, use it;
* else if every IP has a banner-derived ID and they agree, use it;
* else fall back to the registered domain of the MX name itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import MXData
from .types import EvidenceSource, IPIdentity, MXIdentity


def mx_fallback_id(mx_name: str, psl: PublicSuffixList) -> str:
    """The registered domain of an MX name (the name itself if unregistrable)."""
    return psl.registered_domain(mx_name) or mx_name


@dataclass
class MXIdentifier:
    """Assigns a provider ID to MX records from their IPs' identities."""

    psl: PublicSuffixList | None = None
    use_certs: bool = True
    use_banners: bool = True

    def __post_init__(self) -> None:
        self.psl = self.psl or default_psl()

    def identify(self, mx: MXData, ip_identities: list[IPIdentity]) -> MXIdentity:
        identities = tuple(ip_identities)
        if self.use_certs:
            cert_id = self._agreeing(identities, "cert_id")
            if cert_id is not None:
                return MXIdentity(
                    mx_name=mx.name,
                    provider_id=cert_id,
                    source=EvidenceSource.CERT,
                    ip_identities=identities,
                )
        if self.use_banners:
            banner_id = self._agreeing(identities, "banner_id")
            if banner_id is not None:
                return MXIdentity(
                    mx_name=mx.name,
                    provider_id=banner_id,
                    source=EvidenceSource.BANNER,
                    ip_identities=identities,
                )
        assert self.psl is not None
        return MXIdentity(
            mx_name=mx.name,
            provider_id=mx_fallback_id(mx.name, self.psl),
            source=EvidenceSource.MX,
            ip_identities=identities,
        )

    @staticmethod
    def _agreeing(identities: tuple[IPIdentity, ...], attribute: str) -> str | None:
        """The shared ID if *every* IP has one and they all agree."""
        if not identities:
            return None
        values = {getattr(identity, attribute) for identity in identities}
        if None in values or len(values) != 1:
            return None
        return next(iter(values))
