"""SPF record parsing and eventual-provider inference (extension).

Section 3.4 notes that the MX record only reveals the *first hop* of mail
delivery: a domain fronted by a filtering service (ProofPoint, Mimecast, …)
ultimately delivers to a mailbox provider the MX never names.  The paper
leaves "certain heuristics, such as SPF records" to future work; this
module implements that heuristic.

A domain authorizing senders via ``v=spf1 include:_spf.<provider> …``
names every provider allowed to *send* on its behalf — which, for
filtering customers, typically covers both the filter and the mailbox
provider behind it.  :class:`EventualProviderAnalyzer` parses the published
policy and reports the mailbox provider hiding behind the MX-visible front.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnscore.names import is_valid_hostname
from ..dnscore.psl import PublicSuffixList, default_psl
from ..world.entities import CompanyKind
from .companies import CompanyMap

QUALIFIERS = ("+", "-", "~", "?")
MECHANISM_KINDS = ("all", "include", "a", "mx", "ip4", "ip6", "exists", "ptr")


@dataclass(frozen=True)
class SPFMechanism:
    """One mechanism of an SPF record, e.g. ``include:_spf.google.com``."""

    qualifier: str  # one of + - ~ ?
    kind: str       # all / include / a / mx / ip4 / ip6 / exists / ptr
    value: str = ""

    def __str__(self) -> str:
        prefix = self.qualifier if self.qualifier != "+" else ""
        suffix = f":{self.value}" if self.value else ""
        return f"{prefix}{self.kind}{suffix}"


@dataclass(frozen=True)
class SPFRecord:
    """A parsed ``v=spf1`` policy."""

    mechanisms: tuple[SPFMechanism, ...]

    def includes(self) -> list[str]:
        """Targets of every (non-negative) include mechanism, in order."""
        return [
            mechanism.value
            for mechanism in self.mechanisms
            if mechanism.kind == "include" and mechanism.qualifier != "-"
        ]

    def authorizes_self(self) -> bool:
        """True when the policy authorizes the domain's own hosts (a / mx)."""
        return any(
            mechanism.kind in ("a", "mx") and mechanism.qualifier != "-"
            for mechanism in self.mechanisms
        )


def parse_spf(text: str) -> SPFRecord | None:
    """Parse SPF policy text; None if this is not a ``v=spf1`` record.

    Tolerant of the junk real zones contain: unknown mechanisms and
    modifiers (``redirect=``, ``exp=``) are skipped, not fatal.
    """
    tokens = text.strip().split()
    if not tokens or tokens[0].lower() != "v=spf1":
        return None
    mechanisms: list[SPFMechanism] = []
    for token in tokens[1:]:
        if "=" in token:  # modifier (redirect= / exp=): not a mechanism
            continue
        qualifier = "+"
        if token[:1] in QUALIFIERS:
            qualifier, token = token[0], token[1:]
        kind, _, value = token.partition(":")
        if "/" in kind:  # "a/24" style CIDR suffix on a bare mechanism
            kind, _, value = kind.partition("/")
        kind = kind.lower()
        if kind not in MECHANISM_KINDS:
            continue
        mechanisms.append(SPFMechanism(qualifier=qualifier, kind=kind, value=value))
    return SPFRecord(mechanisms=tuple(mechanisms))


@dataclass(frozen=True)
class EventualInference:
    """MX-visible front vs. SPF-revealed eventual provider for one domain."""

    domain: str
    front_slug: str
    eventual_slug: str | None
    spf_provider_slugs: tuple[str, ...]

    @property
    def hides_mailbox_provider(self) -> bool:
        return self.eventual_slug is not None


@dataclass
class EventualProviderAnalyzer:
    """Finds the mailbox provider behind a filtering-service front."""

    company_map: CompanyMap
    psl: PublicSuffixList | None = None

    def __post_init__(self) -> None:
        self.psl = self.psl or default_psl()

    def provider_of_include(self, target: str) -> str | None:
        """Company slug behind one SPF include target.

        ``_spf.google.com`` → strip ``_``-prefixed scoping labels, take the
        registered domain, resolve through the company map.
        """
        labels = [label for label in target.lower().split(".") if label]
        while labels and labels[0].startswith("_"):
            labels.pop(0)
        candidate = ".".join(labels)
        if not candidate or not is_valid_hostname(candidate):
            return None
        assert self.psl is not None
        registered = self.psl.registered_domain(candidate)
        if registered is None:
            return None
        return self.company_map.slug_for_provider_id(registered)

    def analyze(
        self, domain: str, spf_texts: tuple[str, ...], front_slug: str
    ) -> EventualInference:
        """Infer the eventual mailbox provider from published SPF policy.

        Only meaningful when the MX-visible front is a filtering service;
        for mailbox-provider fronts the eventual provider is the front.
        """
        slugs: list[str] = []
        for text in spf_texts:
            record = parse_spf(text)
            if record is None:
                continue
            for target in record.includes():
                slug = self.provider_of_include(target)
                if slug is not None and slug not in slugs:
                    slugs.append(slug)

        eventual = None
        if self.company_map.kind(front_slug) is CompanyKind.SECURITY:
            for slug in slugs:
                if slug != front_slug and self.company_map.kind(slug) is CompanyKind.MAILBOX:
                    eventual = slug
                    break
        return EventualInference(
            domain=domain,
            front_slug=front_slug,
            eventual_slug=eventual,
            spf_provider_slugs=tuple(slugs),
        )
