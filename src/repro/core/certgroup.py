"""Step 1 — certificate preprocessing (Section 3.2.1).

Groups the certificates observed across a dataset by FQDN overlap and
derives a *representative name* per group:

1. count occurrences of each registered domain across all certificates
   (every FQDN on a certificate's CN + SANs contributes once),
2. union certificates that share at least one FQDN,
3. per group, pick the most common registered domain as the representative
   (within-group count; global count, then name, break ties).

Wildcard names (``*.mailspamprotection.com``) participate through their
base domain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..dnscore.psl import PublicSuffixList, default_psl
from ..tls.cert import Certificate


def _strip_wildcard(name: str) -> str:
    return name[2:] if name.startswith("*.") else name


class _UnionFind:
    """Plain union-find with path compression over arbitrary hashables."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def add(self, item: object) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: object) -> object:
        parent = self._parent[item]
        if parent is not item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, left: object, right: object) -> None:
        self.add(left)
        self.add(right)
        left_root, right_root = self.find(left), self.find(right)
        if left_root is not right_root:
            self._parent[right_root] = left_root

    def groups(self) -> dict[object, list[object]]:
        out: dict[object, list[object]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out


@dataclass(frozen=True)
class CertGroup:
    """One group of related certificates and its representative name."""

    fingerprints: frozenset[str]
    fqdns: frozenset[str]
    representative: str
    size: int


@dataclass
class CertificateGroups:
    """Queryable result of certificate preprocessing."""

    groups: list[CertGroup]
    _by_fingerprint: dict[str, CertGroup] = field(default_factory=dict)
    registered_domain_counts: Counter = field(default_factory=Counter)

    def group_of(self, cert: Certificate) -> CertGroup | None:
        return self._by_fingerprint.get(cert.fingerprint())

    def representative_for(self, cert: Certificate) -> str | None:
        group = self.group_of(cert)
        return group.representative if group else None

    def representatives(self) -> dict[str, str]:
        """Fingerprint → representative for every grouped certificate."""
        return {
            fingerprint: group.representative
            for fingerprint, group in self._by_fingerprint.items()
        }

    def __len__(self) -> int:
        return len(self.groups)


class CertificatePreprocessor:
    """Builds :class:`CertificateGroups` from the certificates in a dataset."""

    def __init__(self, psl: PublicSuffixList | None = None):
        self.psl = psl or default_psl()
        # FQDN -> registered domain, persistent across builds: the PSL is
        # immutable for the preprocessor's lifetime, so repeated snapshot
        # ingests resolve each name once.
        self._registered_memo: dict[str, str | None] = {}

    def _registered(self, fqdn: str) -> str | None:
        return self.psl.registered_domain(_strip_wildcard(fqdn))

    def build(self, certificates: Iterable[Certificate]) -> CertificateGroups:
        # Deduplicate by fingerprint: the same shared provider certificate is
        # observed once per IP, but counts once for grouping purposes.
        unique: dict[str, Certificate] = {}
        for cert in certificates:
            unique.setdefault(cert.fingerprint(), cert)
        return self.build_from_names(
            (fingerprint, cert.dns_names() or cert.names())
            for fingerprint, cert in unique.items()
        )

    def build_from_names(
        self, named: Iterable[tuple[str, tuple[str, ...]]]
    ) -> CertificateGroups:
        """Steps 1.1-1.3 over precomputed ``(fingerprint, names)`` pairs.

        Equivalent to :meth:`build` when each pair carries a certificate's
        ``dns_names() or names()``; callers that already know the names
        (incremental ingest carries them between snapshots) skip
        certificate materialization entirely.  Duplicate fingerprints
        keep the first pair, mirroring :meth:`build`'s dedup.
        """
        # Step 1.1 — global registered-domain occurrence counts.  Each
        # distinct FQDN is stripped and PSL-resolved once ever; the pairs
        # feed steps 1.2 and 1.3 without repeating either lookup.
        lookup = self._registered
        registered_memo = self._registered_memo
        seen_names: dict[str, tuple[str, ...]] = {}
        for fingerprint, names in named:
            seen_names.setdefault(fingerprint, names)
        global_counts: Counter = Counter()
        cert_keys: dict[str, list[tuple[str, str | None]]] = {}
        for fingerprint, names in seen_names.items():
            pairs: list[tuple[str, str | None]] = []
            for name in names:
                if name in registered_memo:
                    registered = registered_memo[name]
                else:
                    registered = registered_memo[name] = lookup(name)
                pairs.append((_strip_wildcard(name), registered))
                if registered:
                    global_counts[registered] += 1
            cert_keys[fingerprint] = pairs

        # Step 1.2 — group certificates sharing at least one FQDN.
        union = _UnionFind()
        first_owner: dict[str, str] = {}
        for fingerprint, pairs in cert_keys.items():
            union.add(fingerprint)
            for key, _registered in pairs:
                owner = first_owner.get(key)
                if owner is None:
                    first_owner[key] = fingerprint
                else:
                    union.union(owner, fingerprint)

        # Step 1.3 — representative name per group.
        result = CertificateGroups(groups=[], registered_domain_counts=global_counts)
        for members in union.groups().values():
            member_prints = [str(m) for m in members]
            within: dict[str, int] = {}
            fqdns: set[str] = set()
            for fingerprint in member_prints:
                for key, registered in cert_keys[fingerprint]:
                    fqdns.add(key)
                    if registered:
                        within[registered] = within.get(registered, 0) + 1
            representative = self._pick_representative(within, global_counts, fqdns)
            group = CertGroup(
                fingerprints=frozenset(member_prints),
                fqdns=frozenset(fqdns),
                representative=representative,
                size=len(member_prints),
            )
            result.groups.append(group)
            for fingerprint in member_prints:
                result._by_fingerprint[fingerprint] = group
        result.groups.sort(key=lambda g: g.representative)
        return result

    @staticmethod
    def _pick_representative(
        within: dict[str, int], global_counts: Counter, fqdns: set[str]
    ) -> str:
        if within:
            return max(
                within,
                key=lambda name: (within[name], global_counts[name], name),
            )
        # Degenerate group with no registrable names: fall back to any FQDN.
        return min(fqdns) if fqdns else "(unknown)"
