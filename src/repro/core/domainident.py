"""Step 5 — provider ID of a domain (Section 3.2.5).

A domain inherits the provider ID of its most preferred MX record.  When a
domain publishes several MX records tied at the best preference with
*different* provider IDs, credit is split equally across the distinct IDs.
Domains whose MX infrastructure is unusable are classified instead
(no MX / unresolvable MX / no SMTP listener), mirroring the categories of
Table 4 and Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..measure.dataset import DomainMeasurement
from .types import DomainInference, DomainStatus, MXIdentity


@dataclass
class DomainIdentifier:
    """Turns per-MX identities into a per-domain attribution."""

    split_credit: bool = True

    def identify(
        self,
        measurement: DomainMeasurement,
        identities: dict[str, MXIdentity],
    ) -> DomainInference:
        """Attribute *measurement*'s domain using its primary MX identities.

        ``identities`` maps MX names to their (possibly step-4-corrected)
        identities; only the most-preferred MX records participate.
        """
        domain = measurement.domain
        if not measurement.has_mx:
            return DomainInference(domain=domain, status=DomainStatus.NO_MX)

        primary = measurement.primary_mx
        resolved = [mx for mx in primary if mx.resolved]
        if not resolved:
            return DomainInference(domain=domain, status=DomainStatus.NO_MX_IP)

        # "No SMTP": every primary-MX address was scanned and none accepts
        # SMTP.  Addresses missing from the scan data leave the possibility
        # open, so the inference proceeds on the MX fallback instead.
        scans = [ip.scan for mx in resolved for ip in mx.ips]
        if scans and all(scan is not None for scan in scans) and not any(
            scan.has_smtp for scan in scans if scan is not None
        ):
            return DomainInference(
                domain=domain,
                status=DomainStatus.NO_SMTP,
                mx_identities=tuple(
                    identities[mx.name] for mx in resolved if mx.name in identities
                ),
            )

        used = [identities[mx.name] for mx in resolved]
        provider_ids = []
        for identity in used:
            if identity.provider_id not in provider_ids:
                provider_ids.append(identity.provider_id)
        if self.split_credit:
            weight = 1.0 / len(provider_ids)
            attributions = {provider_id: weight for provider_id in provider_ids}
        else:
            attributions = {provider_ids[0]: 1.0}
        return DomainInference(
            domain=domain,
            status=DomainStatus.INFERRED,
            attributions=attributions,
            mx_identities=tuple(used),
        )
