"""Provider-ID → company aggregation (Section 4.4).

A single company operates under many provider IDs — different services,
regional brands, or different evidence sources surfacing different names
(Table 5: Microsoft appears as outlook.com, office365.us, hotmail.com, …).
The paper resolves prominent provider IDs to companies by hand;
:class:`CompanyMap` is that curated artifact, generated from the world
catalog (or any list of :class:`~repro.world.entities.CompanySpec`).

The map also carries the auxiliary knowledge step 4's heuristics need:
which ASes each company announces from, and the hostname patterns hosting
companies use for rented VPS boxes versus their own dedicated mail stores.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from ..dnscore.psl import PublicSuffixList, default_psl
from ..world.entities import CompanyKind, CompanySpec

# Sentinel labels shared with the world's ground truth.
SELF_LABEL = "SELF"
NONE_LABEL = "NONE"


@dataclass
class CompanyMap:
    """Resolves provider IDs to companies, with step-4 heuristic metadata."""

    id_to_slug: dict[str, str] = field(default_factory=dict)
    display_names: dict[str, str] = field(default_factory=dict)
    kinds: dict[str, CompanyKind] = field(default_factory=dict)
    countries: dict[str, str] = field(default_factory=dict)
    asns_by_slug: dict[str, frozenset[int]] = field(default_factory=dict)
    vps_patterns: dict[str, re.Pattern] = field(default_factory=dict)
    dedicated_patterns: dict[str, re.Pattern] = field(default_factory=dict)
    # Provider IDs of the "predetermined set" of large providers whose
    # potential misidentifications step 4 examines.
    large_provider_ids: set[str] = field(default_factory=set)
    psl: PublicSuffixList = field(default_factory=default_psl)

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[CompanySpec],
        large_kinds: tuple[CompanyKind, ...] = (
            CompanyKind.MAILBOX,
            CompanyKind.SECURITY,
            CompanyKind.HOSTING,
            CompanyKind.AGENCY,
        ),
        psl: PublicSuffixList | None = None,
    ) -> "CompanyMap":
        company_map = cls(psl=psl or default_psl())
        for spec in specs:
            company_map.add_company(spec, is_large=spec.kind in large_kinds)
        return company_map

    def add_company(self, spec: CompanySpec, is_large: bool = False) -> None:
        self.display_names[spec.slug] = spec.display_name
        self.kinds[spec.slug] = spec.kind
        self.countries[spec.slug] = spec.country
        self.asns_by_slug[spec.slug] = frozenset(asn.number for asn in spec.asns)
        for provider_id in spec.provider_ids:
            self.id_to_slug.setdefault(provider_id, spec.slug)
            if is_large:
                self.large_provider_ids.add(provider_id)
        if spec.vps_cert_domain:
            # The VPS certificate domain maps to the hosting company too;
            # GoDaddy VPS certs live under secureserver.net.
            self.id_to_slug.setdefault(spec.vps_cert_domain, spec.slug)
            if is_large:
                self.large_provider_ids.add(spec.vps_cert_domain)
        if spec.vps_host_pattern:
            self.vps_patterns[spec.slug] = re.compile(spec.vps_host_pattern)
        if spec.dedicated_host_pattern:
            self.dedicated_patterns[spec.slug] = re.compile(spec.dedicated_host_pattern)

    # ------------------------------------------------------------------

    def slug_for_provider_id(self, provider_id: str) -> str | None:
        return self.id_to_slug.get(provider_id)

    def is_large_provider_id(self, provider_id: str) -> bool:
        return provider_id in self.large_provider_ids

    def company_asns(self, slug: str) -> frozenset[int]:
        return self.asns_by_slug.get(slug, frozenset())

    def display(self, label: str) -> str:
        return self.display_names.get(label, label)

    def kind(self, label: str) -> CompanyKind | None:
        return self.kinds.get(label)

    def country(self, label: str) -> str | None:
        return self.countries.get(label)

    def resolve(self, domain: str, provider_id: str) -> str:
        """Map a provider ID to an analysis label for *domain*.

        Returns a company slug when the ID belongs to a known company,
        ``SELF`` when the ID is the domain's own registered domain (the
        paper's self-hosting criterion, Section 5.2.1), or the raw provider
        ID for companies outside the curated map.
        """
        own = self.psl.registered_domain(domain) or domain
        if provider_id == own:
            return SELF_LABEL
        slug = self.id_to_slug.get(provider_id)
        return slug if slug is not None else provider_id

    def resolve_attributions(
        self, domain: str, attributions: dict[str, float]
    ) -> dict[str, float]:
        """Resolve a whole attribution dict, merging IDs of one company."""
        resolved: dict[str, float] = {}
        for provider_id, weight in attributions.items():
            label = self.resolve(domain, provider_id)
            resolved[label] = resolved.get(label, 0.0) + weight
        return resolved
