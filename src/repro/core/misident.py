"""Step 4 — misidentification detection and correction (Section 3.2.4).

The corner cases that defeat steps 1–3 share a signature: they involve
*unpopular* endpoints.  A VPS certificate is only ever seen behind a couple
of domains, whereas a real GoDaddy mail-store certificate fronts thousands.
The checker therefore keeps two global counters — how many domains point at
each IP (``numIP``) and at each certificate (``numCert``) — and only
examines MX records whose inferred provider ID belongs to the predetermined
set of large providers but whose confidence ``max(numIP, numCert)`` is low.

For each candidate it applies the paper's published heuristics:

* **VPS hostname patterns** — a GoDaddy-shaped ``s1-2-3.secureserver.net``
  certificate marks a rented VPS, so the mail server belongs to whoever
  rents it: fall back to the MX registered domain (usually the customer).
* **Dedicated hostname patterns** — ``mailstore1.secureserver.net`` is
  GoDaddy's own infrastructure: the inference stands.
* **AS check** — a server claiming ``mx.google.com`` from outside Google's
  ASes is lying: fall back to the MX registered domain.

It also catches the inverse situation (Section 3.1.4's utexas.edu): the
certificate names the *customer* while banner and ASN agree on a large
provider — correct to the provider.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement, MXData
from .companies import CompanyMap
from .mxident import mx_fallback_id
from .types import EvidenceSource, MXIdentity

DEFAULT_CONFIDENCE_THRESHOLD = 3


@dataclass
class PopularityCounters:
    """``numIP`` and ``numCert``: domains behind each IP / certificate."""

    num_ip: Counter = field(default_factory=Counter)
    num_cert: Counter = field(default_factory=Counter)

    def observe_domain(self, measurement: DomainMeasurement) -> None:
        """Count one domain against every primary-MX IP and certificate."""
        seen_ips: set[str] = set()
        seen_certs: set[str] = set()
        for mx in measurement.primary_mx:
            for ip in mx.ips:
                seen_ips.add(ip.address)
                if ip.scan is not None and ip.scan.certificate is not None:
                    seen_certs.add(ip.scan.certificate.fingerprint())
        for address in seen_ips:
            self.num_ip[address] += 1
        for fingerprint in seen_certs:
            self.num_cert[fingerprint] += 1

    def confidence(self, identity: MXIdentity) -> int:
        """Confidence of an MX inference: max(numIP, numCert) over its IPs."""
        best = 0
        for ip_identity in identity.ip_identities:
            score = self.num_ip[ip_identity.address]
            if ip_identity.cert_fingerprint is not None:
                score = max(score, self.num_cert[ip_identity.cert_fingerprint])
            best = max(best, score)
        return best


@dataclass
class CorrectionStats:
    """Bookkeeping for evaluation: how much manual-style work step 4 took."""

    candidates_examined: int = 0
    corrected: int = 0


@dataclass
class MisidentificationChecker:
    """Finds and corrects likely misidentifications (step 4)."""

    company_map: CompanyMap
    psl: PublicSuffixList | None = None
    confidence_threshold: int = DEFAULT_CONFIDENCE_THRESHOLD
    stats: CorrectionStats = field(default_factory=CorrectionStats)

    def __post_init__(self) -> None:
        self.psl = self.psl or default_psl()

    # ------------------------------------------------------------------

    def check(
        self,
        domain: str,
        mx: MXData,
        identity: MXIdentity,
        counters: PopularityCounters,
    ) -> MXIdentity:
        """Return the (possibly corrected) identity for one MX record."""
        if identity.source is EvidenceSource.MX:
            # Nothing to second-guess: the fallback is already the MX name.
            return identity

        if self._is_customer_cert_candidate(domain, identity):
            corrected = self._correct_customer_cert(mx, identity)
            if corrected is not None:
                return corrected
            return identity.as_examined()

        if not self.company_map.is_large_provider_id(identity.provider_id):
            return identity
        if counters.confidence(identity) >= self.confidence_threshold:
            return identity

        self.stats.candidates_examined += 1
        identity = identity.as_examined()

        corrected = self._apply_vps_heuristic(identity)
        if corrected is not None:
            return corrected
        corrected = self._apply_as_heuristic(mx, identity)
        if corrected is not None:
            return corrected
        return identity

    # ------------------------------------------------------------------
    # candidate class 1: large-provider ID on an unpopular endpoint
    # ------------------------------------------------------------------

    def _apply_vps_heuristic(self, identity: MXIdentity) -> MXIdentity | None:
        """Rented-VPS detection via provider hostname patterns."""
        slug = self.company_map.slug_for_provider_id(identity.provider_id)
        if slug is None:
            return None
        vps_pattern = self.company_map.vps_patterns.get(slug)
        dedicated_pattern = self.company_map.dedicated_patterns.get(slug)
        if vps_pattern is None:
            return None
        hostnames = self._endpoint_hostnames(identity)
        if not hostnames:
            return None
        if dedicated_pattern is not None and any(
            dedicated_pattern.match(name) for name in hostnames
        ):
            self.stats.corrected += 0  # dedicated box: inference stands
            return identity
        if any(vps_pattern.match(name) for name in hostnames):
            assert self.psl is not None
            self.stats.corrected += 1
            return identity.with_correction(
                mx_fallback_id(identity.mx_name, self.psl),
                reason=f"VPS hostname pattern of {slug}",
            )
        return None

    def _apply_as_heuristic(self, mx: MXData, identity: MXIdentity) -> MXIdentity | None:
        """A provider claim from outside the provider's ASes is false."""
        slug = self.company_map.slug_for_provider_id(identity.provider_id)
        if slug is None:
            return None
        legitimate_asns = self.company_map.company_asns(slug)
        if not legitimate_asns:
            return None
        observed_asns = {
            ip.as_info.asn for ip in mx.ips if ip.as_info is not None
        }
        if not observed_asns or observed_asns & legitimate_asns:
            return None
        assert self.psl is not None
        self.stats.corrected += 1
        return identity.with_correction(
            mx_fallback_id(identity.mx_name, self.psl),
            reason=f"claims {slug} but announced from AS {sorted(observed_asns)}",
        )

    # ------------------------------------------------------------------
    # candidate class 2: customer certificate on provider infrastructure
    # ------------------------------------------------------------------

    def _is_customer_cert_candidate(self, domain: str, identity: MXIdentity) -> bool:
        """Cert says "the customer itself" while the banner says a provider."""
        if identity.source is not EvidenceSource.CERT:
            return False
        assert self.psl is not None
        own = self.psl.registered_domain(domain) or domain
        if identity.provider_id != own:
            return False
        banner_ids = {
            ip.banner_id for ip in identity.ip_identities if ip.banner_id is not None
        }
        return len(banner_ids) == 1 and self.company_map.is_large_provider_id(
            next(iter(banner_ids))
        )

    def _correct_customer_cert(self, mx: MXData, identity: MXIdentity) -> MXIdentity | None:
        """Correct to the banner's provider when the ASN corroborates it."""
        self.stats.candidates_examined += 1
        banner_ids = {
            ip.banner_id for ip in identity.ip_identities if ip.banner_id is not None
        }
        banner_id = next(iter(banner_ids))
        slug = self.company_map.slug_for_provider_id(banner_id)
        if slug is None:
            return None
        legitimate_asns = self.company_map.company_asns(slug)
        observed_asns = {ip.as_info.asn for ip in mx.ips if ip.as_info is not None}
        if legitimate_asns and observed_asns and not (observed_asns & legitimate_asns):
            return None
        self.stats.corrected += 1
        return identity.with_correction(
            banner_id,
            reason=f"customer certificate on {slug} infrastructure",
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _endpoint_hostnames(identity: MXIdentity) -> set[str]:
        """Hostnames the endpoint itself claims (banner FQDNs + cert names)."""
        names: set[str] = set()
        for ip_identity in identity.ip_identities:
            if ip_identity.banner_fqdn:
                names.add(ip_identity.banner_fqdn)
            names.update(ip_identity.cert_names)
        return names
