"""The priority-based approach, end to end (Figure 3).

:class:`PriorityPipeline` wires the five steps together over a joined
measurement dataset:

1. preprocess all observed certificates into groups,
2. derive cert/banner IDs per IP,
3. assign a provider ID per MX record,
4. detect and correct likely misidentifications,
5. attribute each domain to the provider of its most preferred MX.

:class:`PipelineConfig` exposes the design choices DESIGN.md marks for
ablation (disable step 4, accept self-signed certificates, drop one of the
evidence sources, first-MX-wins instead of credit splitting).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..dnscore.psl import PublicSuffixList, default_psl
from ..engine.identcache import MXIdentityCache, evidence_key
from ..engine.parallel import resolve_jobs
from ..engine.stats import STATS
from ..obs import trace
from ..measure.dataset import DomainMeasurement, MXData
from ..tls.ca import TrustStore
from ..tls.cert import Certificate
from .certgroup import CertificateGroups, CertificatePreprocessor
from .companies import CompanyMap
from .domainident import DomainIdentifier
from .ipident import IPIdentifier
from .misident import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    CorrectionStats,
    MisidentificationChecker,
    PopularityCounters,
)
from .mxident import MXIdentifier
from .types import DomainInference, MXIdentity


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable design choices of the priority-based approach."""

    use_certs: bool = True
    use_banners: bool = True
    check_misidentifications: bool = True
    require_valid_cert: bool = True
    split_credit: bool = True
    confidence_threshold: int = DEFAULT_CONFIDENCE_THRESHOLD


@dataclass
class PipelineResult:
    """All inferences from one pipeline run, plus step-4 bookkeeping."""

    inferences: dict[str, DomainInference]
    correction_stats: CorrectionStats
    mx_identities: dict[str, MXIdentity] = field(default_factory=dict)

    def __getitem__(self, domain: str) -> DomainInference:
        return self.inferences[domain]

    def __iter__(self):
        return iter(self.inferences.values())

    def __len__(self) -> int:
        return len(self.inferences)


class PriorityPipeline:
    """The paper's methodology over a joined measurement dataset."""

    def __init__(
        self,
        trust_store: TrustStore,
        company_map: CompanyMap,
        psl: PublicSuffixList | None = None,
        config: PipelineConfig | None = None,
        identity_cache: MXIdentityCache | None = None,
        faults: object | None = None,
    ):
        self.trust_store = trust_store
        self.company_map = company_map
        self.psl = psl or default_psl()
        self.config = config or PipelineConfig()
        # Optional cross-run store for step-2/3 identities.  Keys carry the
        # full observation evidence plus the config flags, so one cache can
        # safely serve every snapshot and ablation config of a study.
        self.identity_cache = identity_cache
        # On faulted runs, the injector tallies per-domain evidence loss
        # (which tier each MX landed on, what never arrived) for metrics.
        self.faults = faults

    # -- step 1 ----------------------------------------------------------

    @staticmethod
    def collect_certificates(
        measurements: dict[str, DomainMeasurement],
    ) -> list[Certificate]:
        """All observed certificates in a dataset, in measurement order.

        Only ``OPEN`` captures count: a scan that timed out was never
        observed, so evidence it might carry is excluded (the record
        constructor enforces the same invariant at the source).
        """
        return [
            ip.scan.certificate
            for measurement in measurements.values()
            for ip in measurement.all_ips()
            if ip.scan is not None
            and ip.scan.has_smtp
            and ip.scan.certificate is not None
        ]

    def build_groups(
        self, measurements: dict[str, DomainMeasurement]
    ) -> CertificateGroups:
        """Step 1 — certificate preprocessing over the whole dataset.

        Grouping depends only on the certificates and the PSL — never on
        :class:`PipelineConfig` — so one grouping can be shared by every
        config run over the same measurements.
        """
        with trace.span(
            "pipeline.groups", cat="pipeline-step", domains=len(measurements)
        ):
            certificates = self.collect_certificates(measurements)
            return CertificatePreprocessor(self.psl).build(certificates)

    # -- the full run ----------------------------------------------------

    def run(
        self,
        measurements: dict[str, DomainMeasurement],
        *,
        groups: CertificateGroups | None = None,
        jobs: int | None = None,
    ) -> PipelineResult:
        """Infer a provider for every measured domain.

        ``groups`` supplies a precomputed step-1 grouping (hoisted by
        callers running several configs over the same measurements);
        ``jobs`` parallelizes steps 2–3 over the distinct-MX work list.
        Both are pure optimizations: results are identical for any value.
        """
        config = self.config

        if groups is None:
            groups = self.build_groups(measurements)

        ip_identifier = IPIdentifier(
            groups=groups,
            trust_store=self.trust_store,
            psl=self.psl,
            require_valid_cert=config.require_valid_cert,
        )
        mx_identifier = MXIdentifier(
            psl=self.psl, use_certs=config.use_certs, use_banners=config.use_banners
        )
        domain_identifier = DomainIdentifier(split_credit=config.split_credit)
        checker = MisidentificationChecker(
            company_map=self.company_map,
            psl=self.psl,
            confidence_threshold=config.confidence_threshold,
        )

        # Popularity counters feed step 4's candidate filter.
        counters = PopularityCounters()
        for measurement in measurements.values():
            counters.observe_domain(measurement)

        # Steps 2–3, computed once per distinct MX observation.  The same
        # MX name (with the same addresses) backs many domains; its identity
        # is a property of the infrastructure, not of the domain.
        worklist: dict[tuple, tuple[MXData, object]] = {}
        for measurement in measurements.values():
            for mx in measurement.primary_mx:
                run_key = (mx.name, tuple(ip.address for ip in mx.ips))
                if run_key not in worklist:
                    worklist[run_key] = (mx, measurement.measured_on)
        with trace.span(
            "pipeline.identify", cat="pipeline-step", worklist=len(worklist)
        ):
            identities_by_key = self._identify_worklist(
                worklist, ip_identifier, mx_identifier, groups, jobs
            )

        # Steps 4–5 — per (domain, MX), serial and in measurement order:
        # the customer-certificate check depends on which domain is asking,
        # and the correction stats count in deterministic order.
        all_identities: dict[str, MXIdentity] = {}
        inferences: dict[str, DomainInference] = {}
        with trace.span(
            "pipeline.attribute", cat="pipeline-step", domains=len(measurements)
        ):
            for domain, measurement in measurements.items():
                identities: dict[str, MXIdentity] = {}
                for mx in measurement.primary_mx:
                    run_key = (mx.name, tuple(ip.address for ip in mx.ips))
                    identity = identities_by_key[run_key]
                    if config.check_misidentifications:
                        identity = checker.check(domain, mx, identity, counters)
                    identities[mx.name] = identity
                    all_identities[mx.name] = identity
                inferences[domain] = domain_identifier.identify(measurement, identities)
                if self.faults is not None:
                    self.faults.record_domain_evidence(measurement, identities)

        return PipelineResult(
            inferences=inferences,
            correction_stats=checker.stats,
            mx_identities=all_identities,
        )

    # -- steps 2–3 over the distinct-MX work list ------------------------

    def _identify_worklist(
        self,
        worklist: dict[tuple, tuple[MXData, object]],
        ip_identifier: IPIdentifier,
        mx_identifier: MXIdentifier,
        groups: CertificateGroups,
        jobs: int | None,
    ) -> dict[tuple, MXIdentity]:
        config = self.config

        def identify_one(item: tuple[MXData, object]) -> MXIdentity:
            mx, on = item
            evidence = None
            if self.identity_cache is not None:
                evidence = evidence_key(
                    mx,
                    on,
                    use_certs=config.use_certs,
                    use_banners=config.use_banners,
                    require_valid_cert=config.require_valid_cert,
                    groups=groups,
                    trust_store=self.trust_store,
                )
                cached = self.identity_cache.lookup(evidence)
                if cached is not None:
                    return cached
            ip_identities = [ip_identifier.identify(ip, on=on) for ip in mx.ips]
            identity = mx_identifier.identify(mx, ip_identities)
            if evidence is not None:
                self.identity_cache.store(evidence, identity)
            return identity

        jobs = resolve_jobs(jobs)
        items = list(worklist.items())
        if jobs <= 1 or len(items) < 2 * jobs:
            return {key: identify_one(work) for key, work in items}
        # identify_one is pure, so any execution order yields the same
        # per-key identity; keys are re-associated positionally.
        with STATS.timer("pipeline.identify_parallel"):
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(identify_one, (work for _, work in items)))
        return {key: identity for (key, _), identity in zip(items, results)}
