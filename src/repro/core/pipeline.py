"""The priority-based approach, end to end (Figure 3).

:class:`PriorityPipeline` wires the five steps together over a joined
measurement dataset:

1. preprocess all observed certificates into groups,
2. derive cert/banner IDs per IP,
3. assign a provider ID per MX record,
4. detect and correct likely misidentifications,
5. attribute each domain to the provider of its most preferred MX.

:class:`PipelineConfig` exposes the design choices DESIGN.md marks for
ablation (disable step 4, accept self-signed certificates, drop one of the
evidence sources, first-MX-wins instead of credit splitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnscore.psl import PublicSuffixList, default_psl
from ..measure.dataset import DomainMeasurement
from ..tls.ca import TrustStore
from .certgroup import CertificatePreprocessor
from .companies import CompanyMap
from .domainident import DomainIdentifier
from .ipident import IPIdentifier
from .misident import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    CorrectionStats,
    MisidentificationChecker,
    PopularityCounters,
)
from .mxident import MXIdentifier
from .types import DomainInference, MXIdentity


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable design choices of the priority-based approach."""

    use_certs: bool = True
    use_banners: bool = True
    check_misidentifications: bool = True
    require_valid_cert: bool = True
    split_credit: bool = True
    confidence_threshold: int = DEFAULT_CONFIDENCE_THRESHOLD


@dataclass
class PipelineResult:
    """All inferences from one pipeline run, plus step-4 bookkeeping."""

    inferences: dict[str, DomainInference]
    correction_stats: CorrectionStats
    mx_identities: dict[str, MXIdentity] = field(default_factory=dict)

    def __getitem__(self, domain: str) -> DomainInference:
        return self.inferences[domain]

    def __iter__(self):
        return iter(self.inferences.values())

    def __len__(self) -> int:
        return len(self.inferences)


class PriorityPipeline:
    """The paper's methodology over a joined measurement dataset."""

    def __init__(
        self,
        trust_store: TrustStore,
        company_map: CompanyMap,
        psl: PublicSuffixList | None = None,
        config: PipelineConfig | None = None,
    ):
        self.trust_store = trust_store
        self.company_map = company_map
        self.psl = psl or default_psl()
        self.config = config or PipelineConfig()

    def run(self, measurements: dict[str, DomainMeasurement]) -> PipelineResult:
        """Infer a provider for every measured domain."""
        config = self.config

        # Step 1 — certificate preprocessing over the whole dataset.
        certificates = [
            ip.scan.certificate
            for measurement in measurements.values()
            for ip in measurement.all_ips()
            if ip.scan is not None and ip.scan.certificate is not None
        ]
        groups = CertificatePreprocessor(self.psl).build(certificates)

        ip_identifier = IPIdentifier(
            groups=groups,
            trust_store=self.trust_store,
            psl=self.psl,
            require_valid_cert=config.require_valid_cert,
        )
        mx_identifier = MXIdentifier(
            psl=self.psl, use_certs=config.use_certs, use_banners=config.use_banners
        )
        domain_identifier = DomainIdentifier(split_credit=config.split_credit)
        checker = MisidentificationChecker(
            company_map=self.company_map,
            psl=self.psl,
            confidence_threshold=config.confidence_threshold,
        )

        # Popularity counters feed step 4's candidate filter.
        counters = PopularityCounters()
        for measurement in measurements.values():
            counters.observe_domain(measurement)

        # Steps 2–3, computed once per distinct MX observation.  The same
        # MX name (with the same addresses) backs many domains; its identity
        # is a property of the infrastructure, not of the domain.
        mx_identity_cache: dict[tuple, MXIdentity] = {}
        all_identities: dict[str, MXIdentity] = {}
        inferences: dict[str, DomainInference] = {}
        for domain, measurement in measurements.items():
            identities: dict[str, MXIdentity] = {}
            for mx in measurement.primary_mx:
                cache_key = (mx.name, tuple(ip.address for ip in mx.ips))
                if cache_key not in mx_identity_cache:
                    ip_identities = [
                        ip_identifier.identify(ip, on=measurement.measured_on)
                        for ip in mx.ips
                    ]
                    mx_identity_cache[cache_key] = mx_identifier.identify(mx, ip_identities)
                identity = mx_identity_cache[cache_key]
                # Step 4 — per (domain, MX): the customer-certificate check
                # depends on which domain is asking.
                if config.check_misidentifications:
                    identity = checker.check(domain, mx, identity, counters)
                identities[mx.name] = identity
                all_identities[mx.name] = identity
            inferences[domain] = domain_identifier.identify(measurement, identities)

        return PipelineResult(
            inferences=inferences,
            correction_stats=checker.stats,
            mx_identities=all_identities,
        )
