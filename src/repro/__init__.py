"""repro — reproduction of "Who's Got Your Mail?" (IMC 2021).

A self-contained measurement system: DNS / SMTP / TLS / IP-AS substrates, a
seeded synthetic Internet with ground truth, OpenINTEL- and Censys-style
measurement services, the paper's priority-based MX-to-provider inference
methodology with its three baselines, and the analyses behind every table
and figure in the paper's evaluation.

Typical entry points:

* :func:`repro.world.build.build_world` — create a synthetic Internet.
* :class:`repro.core.pipeline.PriorityPipeline` — the paper's methodology.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

__version__ = "1.0.0"
