"""The dist coordinator: leases shards to worker hosts over a socket.

The coordinator owns the socket (unix path or TCP address), the host
registry, and — one at a time — a *gather session*: the lease table and
supervisor ledger of the gather currently being distributed.  Worker
hosts connect once and hold a persistent line-JSON connection (see
:mod:`repro.dist.protocol`); every exchange is request/response:

* ``hello`` → ``welcome`` — registers the host (journaled ``host.join``)
  and tells it how to build its world (config, fault spec, cache dir)
  and how often to heartbeat;
* ``lease-request`` → ``lease`` / ``no-work`` / ``shutdown`` — grants
  the lowest pending shard, or a work-stealing duplicate of the longest
  in-flight shard once ``steal_after`` has elapsed (journaled
  ``shard.lease`` / ``shard.stolen``);
* ``result`` → ``ack`` — decodes the columnar payload and feeds it to
  the supervisor ledger, which checkpoints and journals exactly as the
  local executors do (first completion wins; duplicates are dropped);
* ``heartbeat`` → ``ack`` — liveness.  A host silent past
  ``heartbeat_timeout`` (netsplit) or whose connection drops (SIGKILL)
  is declared lost: ``host.lost`` is journaled and its leases are
  released back to pending, each charged one failed attempt against the
  shard's restart budget.

Because completed shards flow through the same ledger as local
execution — same checkpoint keys, same journal events, same shard-order
merge — a run that loses an entire host mid-gather still produces
byte-identical output, and ``repro resume`` works on it unchanged.
"""

from __future__ import annotations

import socketserver
import threading
import time

from ..engine.executor import ShardExecutor, register_executor
from ..engine.stats import STATS
from ..obs import trace
from ..obs.log import get_logger
from ..resilience.supervisor import ShardQuarantined
from . import protocol

log = get_logger("dist")

#: Default seconds of silence after which a host is declared lost.
DEFAULT_HEARTBEAT_TIMEOUT = 5.0
#: Default heartbeat cadence workers are told to keep.
DEFAULT_HEARTBEAT_INTERVAL = 0.5
#: Default seconds an in-flight shard runs before it may be stolen.
DEFAULT_STEAL_AFTER = 2.0
#: Seconds an idle worker is told to wait before polling again.
RETRY_AFTER = 0.05


class _HostState:
    __slots__ = ("host", "pool", "pid", "last_seen")

    def __init__(self, host: str, pool: int, pid: int, now: float):
        self.host = host
        self.pool = pool
        self.pid = pid
        self.last_seen = now


class _GatherSession:
    """The lease table + ledger of the gather currently distributed."""

    def __init__(self, gather_id: int, table, shard_of: dict, snapshot: int, ledger):
        self.gather_id = gather_id
        self.table = table
        self.shard_of = shard_of
        self.snapshot = snapshot
        self.ledger = ledger
        self.errors: list[BaseException] = []


class DistExecutor(ShardExecutor):
    """The executor seam adapter: run a gather through a coordinator."""

    name = "dist"

    def __init__(self, coordinator: "DistCoordinator"):
        self.coordinator = coordinator

    def run(self, gatherer, pending, snapshot_index, ledger) -> None:
        self.coordinator.run_gather(pending, snapshot_index, ledger)


class DistCoordinator:
    """Socket server + host registry + one gather session at a time."""

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        tcp_address: tuple[str, int] | None = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        steal_after: float | None = DEFAULT_STEAL_AFTER,
        min_hosts: int = 1,
        stall_timeout: float | None = None,
        poll_interval: float = 0.02,
    ):
        if (socket_path is None) == (tcp_address is None):
            raise ValueError("need exactly one of socket_path / tcp_address")
        self.socket_path = socket_path
        self.tcp_address = tcp_address
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.steal_after = steal_after
        self.min_hosts = max(1, min_hosts)
        self.stall_timeout = stall_timeout
        self.poll_interval = poll_interval
        #: Optional RunJournal for run-level host events (set by the CLI).
        self.journal = None
        # What workers need to rebuild the world; filled by configure().
        self._welcome_info: dict = {
            "run": None,
            "world": {},
            "faults": None,
            "cache_dir": None,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
        }
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._hosts: dict[str, _HostState] = {}
        self._quorum_reached = False
        self._session: _GatherSession | None = None
        self._closing = False
        self._server = None
        self._server_thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    def configure(
        self,
        config=None,
        faults_spec: str | None = None,
        cache_dir: str | None = None,
        run_id: str | None = None,
    ) -> None:
        """Pin what ``welcome`` tells joining hosts (world, faults, store)."""
        import dataclasses

        self._welcome_info = {
            "run": run_id,
            "world": dataclasses.asdict(config) if config is not None else {},
            "faults": faults_spec,
            "cache_dir": cache_dir,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
        }

    def start(self) -> None:
        coordinator = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                coordinator._serve_connection(self.rfile, self.wfile)

        if self.socket_path is not None:
            class Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
                daemon_threads = True
                allow_reuse_address = True

            self._server = Server(self.socket_path, Handler)
        else:
            class Server(socketserver.ThreadingMixIn, socketserver.TCPServer):
                daemon_threads = True
                allow_reuse_address = True

            self._server = Server(self.tcp_address, Handler)
            self.tcp_address = self._server.server_address[:2]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._server_thread.start()

    def close(self) -> None:
        """Tell hosts to shut down and stop serving."""
        with self._wake:
            self._closing = True
            self._wake.notify_all()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            self._server_thread = None

    def executor(self) -> DistExecutor:
        return DistExecutor(self)

    def connected_hosts(self) -> list[str]:
        with self._lock:
            return sorted(self._hosts)

    # -- the executor loop ----------------------------------------------

    def run_gather(self, pending, snapshot_index: int, ledger) -> None:
        """Distribute one gather's pending shards; returns when done.

        Blocks until every pending shard has an accepted result, raising
        ``ShardQuarantined`` when a shard spends its restart budget and
        ``RunInterrupted`` on shutdown — exactly the local executors'
        contract.
        """
        from .leases import LeaseTable

        shard_of = dict(pending)
        table = LeaseTable(shard_of, steal_after=self.steal_after)
        session = _GatherSession(
            ledger.gather_id, table, shard_of, snapshot_index, ledger
        )
        started = time.monotonic()
        last_progress = started
        done_before = 0
        with trace.span(
            "dist.gather", cat="gather", shards=len(shard_of),
            snapshot=snapshot_index, corpus=ledger.corpus,
        ):
            with self._wake:
                if self._session is not None:
                    raise RuntimeError("coordinator already has an active gather")
                self._session = session
            try:
                while True:
                    with self._wake:
                        ledger.raise_if_shutdown()
                        if session.errors:
                            raise session.errors[0]
                        if table.all_done:
                            return
                        now = time.monotonic()
                        self._reap_lost_hosts(now)
                        done_now = len(table.done)
                        if done_now > done_before or self._hosts:
                            done_before = done_now
                            last_progress = now
                        elif (
                            self.stall_timeout is not None
                            and now - last_progress > self.stall_timeout
                        ):
                            raise RuntimeError(
                                f"dist gather stalled: no connected hosts and "
                                f"no progress for {self.stall_timeout:g}s "
                                f"({done_now}/{len(shard_of)} shards done)"
                            )
                        self._wake.wait(self.poll_interval)
            finally:
                with self._wake:
                    self._session = None

    def _reap_lost_hosts(self, now: float) -> None:
        """Declare hosts silent past the heartbeat timeout lost (locked)."""
        for host in list(self._hosts):
            state = self._hosts[host]
            if now - state.last_seen > self.heartbeat_timeout:
                self._host_gone_locked(host, "heartbeat timeout")

    def _host_gone_locked(self, host: str, reason: str) -> None:
        state = self._hosts.pop(host, None)
        if state is None:
            return
        if self._closing:
            return  # an orderly departure at shutdown is not a loss
        STATS.inc("dist.host.lost")
        log.warning(
            "dist.host_lost", extra={"fields": {"host": host, "reason": reason}}
        )
        session = self._session
        self._journal_event("host.lost", session, host=host, reason=reason)
        if session is None:
            return
        for lease in session.table.drop_host(host):
            STATS.inc("dist.lease.released")
            try:
                session.ledger.fail(
                    lease.shard, lease.attempt, "lost",
                    f"host {host} lost ({reason}) holding lease "
                    f"{lease.lease_id} (attempt {lease.attempt})",
                )
            except ShardQuarantined as error:
                session.errors.append(error)
        self._wake.notify_all()

    def _journal_event(self, event: str, session, **fields) -> None:
        """Journal through the gather ledger when active, else run-level."""
        if session is not None:
            session.ledger.journal(event, **fields)
        elif self.journal is not None:
            self.journal.append(event, **fields)

    # -- the per-connection RPC loop -------------------------------------

    def _serve_connection(self, rfile, wfile) -> None:
        host: str | None = None
        try:
            while True:
                try:
                    msg = protocol.read_message(rfile)
                except protocol.ProtocolError as error:
                    protocol.send_message(
                        wfile, protocol.message("error", reason=str(error))
                    )
                    return
                if msg is None:
                    return  # EOF — the host process died or left
                reply = self._dispatch(msg)
                if host is None and msg["type"] == "hello":
                    host = msg["host"]
                protocol.send_message(wfile, reply)
                if reply["type"] == "shutdown":
                    return
        except (OSError, ValueError):
            pass  # torn connection: fall through to the lost-host path
        finally:
            if host is not None:
                with self._wake:
                    # A SIGKILLed host closes its socket immediately;
                    # only a *silent* host (netsplit) needs the timeout.
                    self._host_gone_locked(host, "disconnected")

    def _dispatch(self, msg: dict) -> dict:
        kind = msg["type"]
        if kind == "hello":
            return self._handle_hello(msg)
        if kind == "heartbeat":
            return self._handle_heartbeat(msg)
        if kind == "lease-request":
            return self._handle_lease_request(msg)
        if kind == "result":
            return self._handle_result(msg)
        return protocol.message("error", reason=f"unexpected message {kind!r}")

    def _handle_hello(self, msg: dict) -> dict:
        host = msg["host"]
        now = time.monotonic()
        with self._wake:
            fresh = host not in self._hosts
            self._hosts[host] = _HostState(
                host, int(msg.get("pool", 1)), int(msg.get("pid", 0)), now
            )
            if len(self._hosts) >= self.min_hosts:
                self._quorum_reached = True
            if fresh:
                STATS.inc("dist.host.joined")
                self._journal_event(
                    "host.join", self._session,
                    host=host, pool=int(msg.get("pool", 1)),
                )
            self._wake.notify_all()
        return protocol.message("welcome", **self._welcome_info)

    def _handle_heartbeat(self, msg: dict) -> dict:
        self._touch(msg["host"])
        return protocol.message("ack")

    def _touch(self, host: str) -> None:
        with self._lock:
            state = self._hosts.get(host)
            if state is not None:
                state.last_seen = time.monotonic()

    def _handle_lease_request(self, msg: dict) -> dict:
        host = msg["host"]
        self._touch(host)
        now = time.monotonic()
        with self._wake:
            if self._closing:
                return protocol.message("shutdown")
            session = self._session
            if session is None or host not in self._hosts:
                return protocol.message(
                    "no-work", idle=True, retry_after=RETRY_AFTER
                )
            if not self._quorum_reached:
                # Hold leases until the expected fleet has joined, so the
                # first host in the door doesn't hog every shard.
                return protocol.message(
                    "no-work", idle=False, retry_after=RETRY_AFTER
                )
            lease = session.table.request(host, now)
            if lease is None:
                return protocol.message(
                    "no-work", idle=False, retry_after=RETRY_AFTER
                )
            STATS.inc("dist.lease.granted")
            STATS.inc(f"dist.host.{host}.leases")
            session.ledger.journal(
                "shard.lease", shard=lease.shard, host=host,
                lease=lease.lease_id, attempt=lease.attempt,
                stolen=lease.stolen,
            )
            if lease.stolen:
                STATS.inc("dist.lease.stolen")
                session.ledger.journal(
                    "shard.stolen", shard=lease.shard, host=host,
                    lease=lease.lease_id, attempt=lease.attempt,
                    victim=lease.victim or "?",
                )
            return protocol.message(
                "lease",
                gather=session.gather_id,
                lease=lease.lease_id,
                shard=lease.shard,
                shard_count=len(session.shard_of),
                attempt=lease.attempt,
                snapshot=session.snapshot,
                corpus=session.ledger.corpus,
                scope=session.ledger.scope_key,
                domains=list(session.shard_of[lease.shard]),
                stolen=lease.stolen,
            )

    def _handle_result(self, msg: dict) -> dict:
        host = msg["host"]
        self._touch(host)
        with self._wake:
            session = self._session
            if session is None or msg.get("gather") != getattr(
                session, "gather_id", None
            ):
                return protocol.message("ack")  # stale: a finished gather
            ledger = session.ledger
            shard = msg["shard"]
            attempt = msg["attempt"]
            failed = msg.get("failed")
            if failed is not None:
                session.table.release(msg["lease"])
                try:
                    ledger.fail(
                        shard, attempt, failed,
                        msg.get("reason")
                        or f"remote worker {failed} on host {host} "
                           f"(attempt {attempt})",
                    )
                except ShardQuarantined as error:
                    session.errors.append(error)
                self._wake.notify_all()
                return protocol.message("ack")
            try:
                result = protocol.unpack_payload(msg["payload"])
            except Exception as error:
                session.table.release(msg["lease"])
                try:
                    ledger.fail(
                        shard, attempt, "crash",
                        f"undecodable payload from host {host}: {error}",
                    )
                except ShardQuarantined as quarantine:
                    session.errors.append(quarantine)
                self._wake.notify_all()
                return protocol.message("ack")
            _lease, fresh = session.table.complete(msg["lease"])
            if fresh:
                ledger.accept(
                    shard, attempt, result, float(msg.get("elapsed", 0.0)),
                    msg.get("stats"), msg.get("events"),
                )
                STATS.inc(f"dist.host.{host}.completed")
            else:
                STATS.inc("dist.result.duplicate")
            self._wake.notify_all()
            return protocol.message("ack")


def _dist_needs_coordinator() -> ShardExecutor:
    raise ValueError(
        "the dist executor needs a coordinator: pass "
        "GatherSupervision(dist=coordinator) instead of the name 'dist'"
    )


register_executor("dist", _dist_needs_coordinator)
