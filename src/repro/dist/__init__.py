"""repro.dist: the socket-dispatched multi-host shard executor.

Generalizes the PR 5 single-host supervisor beyond one process tree: a
:class:`DistCoordinator` owns a unix/TCP socket and leases gather shards
to N ``repro dist worker`` processes (simulated hosts, each with its own
shard pool) over line-JSON RPC with heartbeats.  Results stream back as
the columnar store codec and flow through the *same* supervisor ledger
as local execution — same checkpoints, same journal, same shard-order
merge — so distributed runs are byte-identical to serial ones and
``repro resume`` works on them unchanged, even after an entire host is
SIGKILLed mid-run.

Pieces:

* :mod:`repro.dist.protocol` — versioned wire messages + framing;
* :mod:`repro.dist.leases` — the pure shard-lease state machine
  (grant / complete / steal / release), property-tested;
* :mod:`repro.dist.coordinator` — socket server, host registry,
  work-stealing, heartbeat-timeout recovery;
* :mod:`repro.dist.worker` — one simulated host, plus the host-level
  fault channels (``host.crash`` / ``host.netsplit``);
* :mod:`repro.dist.cli` — ``repro dist coordinator|worker`` verbs.
"""

from .coordinator import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_STEAL_AFTER,
    DistCoordinator,
    DistExecutor,
)
from .leases import Lease, LeaseTable
from .protocol import (
    Channel,
    ProtocolError,
    check_message,
    decode_line,
    encode_line,
    message,
    pack_payload,
    unpack_payload,
)
from .worker import EXIT_HOST_CRASH, EXIT_HOST_NETSPLIT, DistWorker

__all__ = [
    "Channel",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_STEAL_AFTER",
    "DistCoordinator",
    "DistExecutor",
    "DistWorker",
    "EXIT_HOST_CRASH",
    "EXIT_HOST_NETSPLIT",
    "Lease",
    "LeaseTable",
    "ProtocolError",
    "check_message",
    "decode_line",
    "encode_line",
    "message",
    "pack_payload",
    "unpack_payload",
]
