"""Line-JSON wire protocol between the dist coordinator and its hosts.

One persistent connection per worker host carries newline-delimited JSON
messages in strict request/response pairs (the same framing the serve
daemon uses).  Every message is stamped with the protocol version and
validated against :data:`repro.obs.schemas.DIST_MESSAGE_SCHEMA` on
receipt, so version or schema drift between a coordinator and a worker
fails loudly at the first exchange instead of corrupting a run.

Shard results travel as the columnar measurement codec (the PR 2 store
format, reused by PR 6 as the in-flight batch format) wrapped in base64 —
the wire format *is* the storage format, so a payload decoded from the
socket is byte-for-byte what a checkpoint would have stored.
"""

from __future__ import annotations

import base64
import json
import socket
import threading

from ..obs.schemas import DIST_MESSAGE_SCHEMA, DIST_PROTOCOL_VERSION, validate
from ..store.codec import decode_measurements, encode_measurements

#: Backstop against a runaway or hostile peer; generous for real leases
#: (a 10k-domain shard payload is well under a megabyte).
MAX_LINE_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed, unversioned, or schema-invalid dist message."""


def message(kind: str, **fields) -> dict:
    """A versioned message dict of the given type."""
    return {"v": DIST_PROTOCOL_VERSION, "type": kind, **fields}


def check_message(msg: object) -> dict:
    """Validate one decoded message; returns it or raises ProtocolError."""
    if not isinstance(msg, dict):
        raise ProtocolError(f"dist message is not an object: {type(msg).__name__}")
    errors = validate(msg, DIST_MESSAGE_SCHEMA)
    if errors:
        raise ProtocolError("; ".join(errors))
    if msg["v"] != DIST_PROTOCOL_VERSION:
        raise ProtocolError(
            f"dist protocol version mismatch: peer speaks v{msg['v']}, "
            f"this build speaks v{DIST_PROTOCOL_VERSION}"
        )
    return msg


def encode_line(msg: dict) -> bytes:
    return json.dumps(msg, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    try:
        msg = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"bad JSON on dist connection: {error}") from None
    return check_message(msg)


def pack_payload(measurements) -> str:
    """Encode one shard's measurement dict for the wire (codec + base64)."""
    return base64.b64encode(encode_measurements(measurements)).decode("ascii")


def unpack_payload(payload: str):
    """Decode a wire payload back to the measurement dict."""
    return decode_measurements(base64.b64decode(payload.encode("ascii")))


class Channel:
    """One framed, thread-safe message channel over a connected socket.

    A worker host's pool threads and heartbeat thread share a single
    connection; the lock serializes complete request/response exchanges
    so replies can never interleave across threads.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._lock = threading.Lock()

    def request(self, msg: dict) -> dict:
        """Send one message and read its reply atomically."""
        with self._lock:
            self.sock.sendall(encode_line(msg))
            line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("dist coordinator closed the connection")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def read_message(rfile) -> dict | None:
    """One message from a connection file, or None on EOF."""
    line = rfile.readline(MAX_LINE_BYTES)
    if not line:
        return None
    return decode_line(line)


def send_message(wfile, msg: dict) -> None:
    wfile.write(encode_line(msg))
    wfile.flush()
