"""``repro dist`` verbs: run a coordinator or join it as a worker host.

``repro dist coordinator [dist flags] -- <normal repro args>``
    Starts the lease coordinator on a socket, then runs the ordinary
    experiment CLI with gathers dispatched to connected hosts.  Every
    non-dist flag (``--jobs``, ``--run-dir``, ``--cache-dir``,
    ``--faults``, experiment names, ...) is passed through unchanged —
    and deliberately *excluded* dist flags are kept out of the journaled
    argument namespace, so ``repro resume`` continues a crashed
    coordinator's run locally.

``repro dist worker --connect SOCKET [--host-id H] [--pool N]``
    One simulated host: connects, leases shards, streams results back
    until the coordinator says shutdown (or a host-level fault kills it).
"""

from __future__ import annotations

import argparse
import sys

from .coordinator import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_STEAL_AFTER,
    DistCoordinator,
)
from .worker import DistWorker


def _coordinator_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro dist coordinator",
        description="lease gather shards to worker hosts over a socket",
    )
    parser.add_argument("--socket", help="unix socket path to listen on")
    parser.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="TCP address to listen on (port 0 picks a free port)",
    )
    parser.add_argument(
        "--hosts", type=int, default=1, metavar="N",
        help="hold leases until N hosts have joined (default 1)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=DEFAULT_HEARTBEAT_TIMEOUT,
        help="seconds of silence before a host is declared lost",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=DEFAULT_HEARTBEAT_INTERVAL,
        help="heartbeat cadence workers are told to keep",
    )
    parser.add_argument(
        "--steal-after", type=float, default=DEFAULT_STEAL_AFTER,
        help="seconds before an in-flight shard may be stolen (0 disables)",
    )
    parser.add_argument(
        "--stall-timeout", type=float, default=None,
        help="fail if no hosts are connected and no progress for this long",
    )
    return parser


def _worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro dist worker",
        description="join a dist coordinator as one simulated host",
    )
    parser.add_argument(
        "--connect", required=True,
        help="coordinator address: a unix socket path, or tcp:HOST:PORT",
    )
    parser.add_argument("--host-id", help="stable host name (default: host-<pid>)")
    parser.add_argument(
        "--pool", type=int, default=1,
        help="concurrent shard leases this host works on (default 1)",
    )
    return parser


def run_coordinator(argv: list[str]) -> int:
    parser = _coordinator_parser()
    dist_args, rest = parser.parse_known_args(argv)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if (dist_args.socket is None) == (dist_args.tcp is None):
        parser.error("need exactly one of --socket PATH / --tcp HOST:PORT")
    tcp_address = None
    if dist_args.tcp is not None:
        host, _, port = dist_args.tcp.rpartition(":")
        tcp_address = (host or "127.0.0.1", int(port))
    coordinator = DistCoordinator(
        socket_path=dist_args.socket,
        tcp_address=tcp_address,
        heartbeat_timeout=dist_args.heartbeat_timeout,
        heartbeat_interval=dist_args.heartbeat_interval,
        steal_after=dist_args.steal_after or None,
        min_hosts=dist_args.hosts,
        stall_timeout=dist_args.stall_timeout,
    )
    from ..cli import main as repro_main

    try:
        return repro_main(rest, dist_coordinator=coordinator)
    finally:
        coordinator.close()


def run_worker(argv: list[str]) -> int:
    args = _worker_parser().parse_args(argv)
    worker = DistWorker(
        args.connect, host_id=args.host_id, pool=args.pool
    )
    return worker.run()


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: repro dist {coordinator|worker} ...\n"
            "  coordinator  run experiments with shards leased to hosts\n"
            "  worker       join a coordinator as one simulated host",
            file=sys.stderr,
        )
        return 0 if argv else 2
    verb, rest = argv[0], argv[1:]
    if verb == "coordinator":
        return run_coordinator(rest)
    if verb == "worker":
        return run_worker(rest)
    print(f"unknown dist verb {verb!r} (want coordinator|worker)", file=sys.stderr)
    return 2
