"""The shard-lease state machine the dist coordinator schedules with.

Pure bookkeeping — no sockets, no clocks of its own (callers pass
``now``), no side effects — so the entire lease lifecycle is property-
testable: any interleaving of lease / complete / steal / timeout /
rejoin events must leave every shard completed exactly once.

States per shard::

    PENDING --request--> LEASED --complete--> DONE
       ^                   |  \\
       |                   |   +--request (steal)--> LEASED (duplicate)
       +------release------+

* **request** grants the lowest-numbered pending shard first; when none
  are pending it may *steal*: grant a duplicate lease on the in-flight
  shard that has been running longest past ``steal_after``, to a host
  that does not already hold it.  Work-stealing trades duplicate compute
  for tail latency — results are value-identical, so the first
  completion wins and the duplicate is discarded.
* **complete** is first-wins per shard: later completions (a stolen
  twin, a host presumed lost that finished anyway) report as duplicates.
* **release** (an explicit failure, or every lease of a dropped host)
  returns the shard to pending *unless* another live lease still covers
  it or it already completed.

Each grant carries a monotonically increasing per-shard ``attempt``
number — the supervisor's restart-budget and fault-roll key — and a
globally unique ``lease_id``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Lease:
    """One grant of one shard to one host."""

    lease_id: int
    shard: int
    host: str
    attempt: int
    granted: float      # caller clock (monotonic seconds)
    stolen: bool = False
    victim: str | None = None   # the host stolen from, when stolen


class LeaseTable:
    """Lease bookkeeping for one gather's shards."""

    def __init__(self, shards, steal_after: float | None = None):
        self.shards = sorted(set(shards))
        if steal_after is not None and steal_after <= 0:
            raise ValueError("steal_after must be positive (or None to disable)")
        self.steal_after = steal_after
        self._pending: set[int] = set(self.shards)
        self._done: set[int] = set()
        self._attempts: dict[int, int] = {shard: 0 for shard in self.shards}
        self._active: dict[int, Lease] = {}          # lease_id -> Lease
        self._by_shard: dict[int, set[int]] = {}     # shard -> active lease ids
        self._all: dict[int, Lease] = {}             # every lease ever granted
        self._ids = itertools.count(1)

    # -- queries ---------------------------------------------------------

    @property
    def done(self) -> frozenset:
        return frozenset(self._done)

    @property
    def all_done(self) -> bool:
        return len(self._done) == len(self.shards)

    def pending_count(self) -> int:
        return len(self._pending)

    def active_leases(self) -> list[Lease]:
        return sorted(self._active.values(), key=lambda lease: lease.lease_id)

    def attempts(self, shard: int) -> int:
        return self._attempts[shard]

    def lease(self, lease_id: int) -> Lease | None:
        """Any lease ever granted under this id (active or not)."""
        return self._all.get(lease_id)

    # -- transitions -----------------------------------------------------

    def request(self, host: str, now: float) -> Lease | None:
        """Grant a lease to *host*, stealing if nothing is pending."""
        if self._pending:
            shard = min(self._pending)
            self._pending.discard(shard)
            return self._grant(shard, host, now)
        return self._steal(host, now)

    def _steal(self, host: str, now: float) -> Lease | None:
        if self.steal_after is None:
            return None
        candidates = []
        for shard, lease_ids in self._by_shard.items():
            if shard in self._done or not lease_ids:
                continue
            holders = {self._active[lid].host for lid in lease_ids}
            if host in holders:
                continue            # no point duplicating onto the same host
            if len(lease_ids) > 1:
                continue            # already has a stolen twin in flight
            oldest = min(self._active[lid].granted for lid in lease_ids)
            if now - oldest < self.steal_after:
                continue
            candidates.append((oldest, shard, min(holders)))
        if not candidates:
            return None
        # Steal the longest-running shard — the imbalance tail.
        _oldest, shard, victim = min(candidates)
        return self._grant(shard, host, now, stolen=True, victim=victim)

    def _grant(
        self, shard: int, host: str, now: float,
        stolen: bool = False, victim: str | None = None,
    ) -> Lease:
        self._attempts[shard] += 1
        lease = Lease(
            lease_id=next(self._ids),
            shard=shard,
            host=host,
            attempt=self._attempts[shard],
            granted=now,
            stolen=stolen,
            victim=victim,
        )
        self._active[lease.lease_id] = lease
        self._by_shard.setdefault(shard, set()).add(lease.lease_id)
        self._all[lease.lease_id] = lease
        return lease

    def complete(self, lease_id: int) -> tuple[Lease, bool]:
        """A completion arrived; returns (lease, fresh).

        ``fresh`` is False for duplicates — a stolen twin, or a released
        host's lease finishing anyway.  Unknown lease ids raise.
        """
        lease = self._all.get(lease_id)
        if lease is None:
            raise KeyError(f"unknown lease id {lease_id}")
        fresh = lease.shard not in self._done
        self._done.add(lease.shard)
        self._pending.discard(lease.shard)
        for lid in self._by_shard.pop(lease.shard, set()):
            self._active.pop(lid, None)
        return lease, fresh

    def release(self, lease_id: int) -> Lease | None:
        """Drop one active lease (failed attempt); requeues if uncovered."""
        lease = self._active.pop(lease_id, None)
        if lease is None:
            return None
        remaining = self._by_shard.get(lease.shard, set())
        remaining.discard(lease_id)
        if not remaining and lease.shard not in self._done:
            self._pending.add(lease.shard)
        return lease

    def drop_host(self, host: str) -> list[Lease]:
        """Release every active lease of a lost host; returns them.

        A dropped host's shards go back to pending (unless a stolen twin
        still covers them), so a rejoining or surviving host picks them
        straight up — elastic leave is just a batch release.
        """
        dropped = [
            lease for lease in self.active_leases() if lease.host == host
        ]
        for lease in dropped:
            self.release(lease.lease_id)
        return dropped

    # -- invariants (exercised by the property tests) --------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the table reached an illegal state."""
        active_shards = {lease.shard for lease in self._active.values()}
        assert not (self._pending & self._done), "shard both pending and done"
        assert not (active_shards & self._done), "active lease on a done shard"
        assert not (active_shards & self._pending), "active shard still pending"
        for shard, lease_ids in self._by_shard.items():
            holders = [self._active[lid].host for lid in lease_ids]
            assert len(holders) == len(set(holders)), (
                f"shard {shard} leased twice to one host"
            )
        for shard in self.shards:
            covered = (
                shard in self._pending
                or shard in self._done
                or shard in active_shards
            )
            assert covered, f"shard {shard} fell out of the state machine"
