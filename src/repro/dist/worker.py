"""A worker host: connects to a coordinator and computes leased shards.

One ``repro dist worker`` process simulates one host.  It opens a single
persistent connection, introduces itself (``hello``/``welcome``), builds
its own copy of the world from the welcome (same :class:`WorldConfig`,
same fault spec — measurement values are bit-identical by construction),
and then runs a pool of puller threads that lease shards, gather them,
and stream the columnar payloads back.  A separate thread heartbeats so
the coordinator can tell a slow host from a dead one.

Host-level fault channels fire here, keyed hash-pure like every other
channel (``fault_roll(seed, channel, host, scope, shard, attempt)``):

* ``host.crash`` — the whole process ``os._exit``\\ s mid-lease.  The
  kernel closes the socket, the coordinator sees EOF and releases every
  lease the host held.
* ``host.netsplit`` — the process goes *silent*: heartbeats and traffic
  stop but the socket stays open for ~2× the heartbeat timeout, so the
  coordinator must recover through the timeout path, then the process
  exits.

Worker-level channels (``worker.crash``/``worker.hang``) roll with the
exact same key as the single-host supervisor and are reported back as
failed results, so the coordinator's restart budget — not the host —
pays for them.
"""

from __future__ import annotations

import os
import threading
import time

from ..engine.stats import STATS
from ..faults.inject import fault_roll
from ..faults.plan import as_plan
from ..obs import trace
from ..obs.log import get_logger
from ..resilience.supervisor import _roll
from . import protocol

log = get_logger("dist.worker")

#: Exit code of an injected whole-host crash (distinguishable in CI logs).
EXIT_HOST_CRASH = 115
#: Exit code a netsplit host uses once its silent linger expires.
EXIT_HOST_NETSPLIT = 116

#: How long an injected in-dist worker.hang sleeps before reporting.
HANG_SLEEP = 0.2


class DistWorker:
    """One simulated host: a connection, a shard pool, a heartbeat."""

    def __init__(
        self,
        connect: str,
        host_id: str | None = None,
        pool: int = 1,
        gatherer=None,
        plan=None,
    ):
        self.connect_spec = connect
        self.host_id = host_id or f"host-{os.getpid()}"
        self.pool = max(1, int(pool))
        self._gatherer = gatherer        # injected by tests; else built
        self._plan = plan                # explicit FaultPlan override
        self._stop = threading.Event()
        self._silent = threading.Event()
        self._linger = 10.0
        self.leases_completed = 0

    # -- connection ------------------------------------------------------

    def _connect(self):
        import socket

        spec = self.connect_spec
        if spec.startswith("tcp:"):
            host, _, port = spec[len("tcp:"):].rpartition(":")
            sock = socket.create_connection((host or "127.0.0.1", int(port)))
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(spec)
        return sock

    def _build_gatherer(self, welcome: dict):
        """This host's own world, identical by construction to the run's."""
        from ..experiments.common import StudyContext
        from ..store import ArtifactStore
        from ..world.build import WorldConfig

        config = WorldConfig(**(welcome.get("world") or {}))
        cache_dir = welcome.get("cache_dir")
        store = ArtifactStore(cache_dir) if cache_dir else None
        context = StudyContext.create(
            config, store=store, faults=welcome.get("faults")
        )
        return context.gatherer

    # -- lifecycle -------------------------------------------------------

    def run(self) -> int:
        """Connect, serve leases until told to stop; returns an exit code."""
        sock = self._connect()
        channel = protocol.Channel(sock)
        welcome = channel.request(
            protocol.message(
                "hello", host=self.host_id, pool=self.pool, pid=os.getpid()
            )
        )
        if welcome["type"] != "welcome":
            raise protocol.ProtocolError(
                f"expected welcome, got {welcome['type']!r}: "
                f"{welcome.get('reason', '')}"
            )
        interval = float(welcome.get("heartbeat_interval") or 0.5)
        timeout = float(welcome.get("heartbeat_timeout") or 5.0)
        self._linger = timeout * 2.0 + 1.0
        plan = (
            self._plan
            if self._plan is not None
            else as_plan(welcome.get("faults"))
        )
        gatherer = self._gatherer
        if gatherer is None:
            gatherer = self._build_gatherer(welcome)
        log.info(
            "dist.worker_ready",
            extra={"fields": {"host": self.host_id, "pool": self.pool}},
        )
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(channel, interval), daemon=True
        )
        heartbeat.start()
        pullers = [
            threading.Thread(
                target=self._pull_loop, args=(channel, gatherer, plan),
                daemon=True,
            )
            for _ in range(self.pool)
        ]
        for thread in pullers:
            thread.start()
        for thread in pullers:
            thread.join()
        if self._silent.is_set():
            # Netsplit: hold the socket open, silently, until the
            # coordinator's heartbeat-timeout reaper must have fired.
            time.sleep(self._linger)
            os._exit(EXIT_HOST_NETSPLIT)
        channel.close()
        return 0

    def stop(self) -> None:
        self._stop.set()

    def _heartbeat_loop(self, channel, interval: float) -> None:
        while not self._stop.wait(interval):
            if self._silent.is_set():
                return
            try:
                channel.request(
                    protocol.message("heartbeat", host=self.host_id)
                )
            except (ConnectionError, OSError):
                self._stop.set()
                return

    # -- the pull loop ---------------------------------------------------

    def _pull_loop(self, channel, gatherer, plan) -> None:
        while not (self._stop.is_set() or self._silent.is_set()):
            try:
                reply = channel.request(
                    protocol.message("lease-request", host=self.host_id)
                )
            except (ConnectionError, OSError):
                self._stop.set()
                return
            kind = reply["type"]
            if kind == "lease":
                self._execute(channel, gatherer, plan, reply)
            elif kind == "no-work":
                time.sleep(float(reply.get("retry_after") or 0.05))
            elif kind == "shutdown":
                self._stop.set()
                return
            else:
                log.warning(
                    "dist.worker_protocol_error",
                    extra={"fields": {"host": self.host_id, "reply": kind}},
                )
                self._stop.set()
                return

    def _host_fault(self, plan, channel_name: str, scope: str,
                    shard: int, attempt: int) -> bool:
        """One hash-pure host-level fault decision for this lease."""
        if plan is None:
            return False
        rate = getattr(plan, channel_name.replace(".", "_"), 0.0)
        if rate <= 0.0:
            return False
        return fault_roll(
            plan.seed, channel_name, self.host_id, scope, shard, attempt
        ) < rate

    def _execute(self, channel, gatherer, plan, lease: dict) -> None:
        shard = lease["shard"]
        attempt = lease["attempt"]
        scope = lease["scope"]
        base = dict(
            host=self.host_id,
            gather=lease["gather"],
            lease=lease["lease"],
            shard=shard,
            attempt=attempt,
        )
        if self._host_fault(plan, "host.crash", scope, shard, attempt):
            log.warning(
                "dist.host_crash_injected",
                extra={"fields": {"host": self.host_id, "shard": shard}},
            )
            os._exit(EXIT_HOST_CRASH)
        if self._host_fault(plan, "host.netsplit", scope, shard, attempt):
            log.warning(
                "dist.host_netsplit_injected",
                extra={"fields": {"host": self.host_id, "shard": shard}},
            )
            self._silent.set()
            return
        # Worker-level channels roll with the single-host supervisor's
        # exact key, so a dist run and a local supervised run inject the
        # same failures on the same (scope, shard, attempt).
        if _roll(plan, "worker.hang", scope, shard, attempt):
            time.sleep(HANG_SLEEP)
            self._report(channel, protocol.message(
                "result", failed="hung",
                reason=f"injected worker hang on host {self.host_id} "
                       f"(attempt {attempt})",
                **base,
            ))
            return
        if _roll(plan, "worker.crash", scope, shard, attempt):
            self._report(channel, protocol.message(
                "result", failed="crash",
                reason=f"injected worker crash on host {self.host_id} "
                       f"(attempt {attempt})",
                **base,
            ))
            return
        domains = lease["domains"]
        # Stats deltas and trace events are only attributable to this
        # lease when one puller runs at a time; overlapping pool threads
        # share the process-wide stats, so deltas would double-count.
        track = self.pool == 1
        baseline = STATS.snapshot() if track else None
        mark = trace.mark() if track else None
        started = time.perf_counter()
        try:
            with trace.span(
                f"gather.shard{shard}", cat="shard", targets=len(domains),
                attempt=attempt, host=self.host_id,
            ):
                result = gatherer.gather(domains, lease["snapshot"])
        except Exception as error:
            self._report(channel, protocol.message(
                "result", failed="crash",
                reason=f"worker exception on host {self.host_id} "
                       f"(attempt {attempt}): {error!r}",
                **base,
            ))
            return
        elapsed = time.perf_counter() - started
        extra = {}
        if track:
            extra["stats"] = STATS.delta_since(baseline)
            extra["events"] = trace.drain_new(mark)
        self._report(channel, protocol.message(
            "result",
            payload=protocol.pack_payload(result),
            elapsed=elapsed,
            **extra,
            **base,
        ))
        self.leases_completed += 1

    def _report(self, channel, msg: dict) -> None:
        if self._silent.is_set():
            return
        try:
            channel.request(msg)
        except (ConnectionError, OSError):
            self._stop.set()
