"""The deterministic fault engine behind every injection seam.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan` into
per-event decisions at the three measurement layers:

* **DNS** — SERVFAIL, transient timeout (retried under the backoff
  budget), and partial-zone record dropout, applied to resolver answers;
* **SMTP/TLS** — connection refused, transient slow-host timeouts,
  truncated banners (the session dies mid-way), and STARTTLS handshake
  failures, applied inside :class:`~repro.smtp.session.SMTPClient`;
* **scan coverage** — per-(address, snapshot) host dropout in the Censys
  substrate, with per-AS overrides for provider-wide opt-outs.

Every decision is a pure function of ``(plan.seed, channel, key)`` via a
keyed hash — there is no RNG stream to consume, so decisions cannot
depend on call order, sharding, executor kind, caching, or retries by
other hosts.  That purity is what the chaos/differential harness leans
on: the same (seed, plan) produces bit-identical faulted snapshots at
any ``--jobs`` setting, and the decision set at rate r1 is a strict
subset of the set at rate r2 > r1 (a roll below r1 is below r2), which
makes tier-fallback monotone by construction.

Counters land in the engine stats registry under ``faults.*`` and flow
through the existing ``--metrics-out`` export; the ``explain_*`` helpers
recompute decisions without counting, so per-domain evidence-loss
provenance (``repro explain``) never perturbs the metrics.
"""

from __future__ import annotations

import hashlib
from datetime import date
from typing import Callable, Iterator

from ..engine.stats import STATS
from .plan import FaultPlan

#: Virtual seconds of backoff before the first retry; doubles per attempt.
BACKOFF_BASE = 0.5

_SCALE = float(2**64)


def fault_roll(seed: int, channel: str, *key: object) -> float:
    """A uniform [0, 1) roll, pure in (seed, channel, key).

    Eight bytes of BLAKE2b over the joined key — stable across processes,
    platforms, and Python hash randomization.
    """
    material = "|".join((str(seed), channel, *map(str, key)))
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / _SCALE


def _scope(on: date | None) -> str:
    """The per-snapshot key component (faults vary day to day)."""
    return on.isoformat() if on is not None else "-"


class FaultInjector:
    """Evaluates one plan's decisions and tallies what it broke."""

    def __init__(
        self,
        plan: FaultPlan,
        asn_of: Callable[[str], int | None] | None = None,
    ):
        self.plan = plan
        self.asn_of = asn_of
        self._asn_dropout = dict(plan.asn_dropout)

    # -- the decision core ----------------------------------------------

    def would(self, rate: float, channel: str, *key: object) -> bool:
        """The pure decision — no counters (used by provenance replays)."""
        return rate > 0.0 and fault_roll(self.plan.seed, channel, *key) < rate

    def _decide(self, rate: float, channel: str, *key: object) -> bool:
        """The counted decision used on the measurement path."""
        if not self.would(rate, channel, *key):
            return False
        STATS.inc(f"faults.{channel}")
        return True

    def retry_attempts(self) -> Iterator[int]:
        """Attempt numbers (1, 2, ...) the backoff budget allows.

        Attempt *n* costs ``BACKOFF_BASE * 2**(n-1)`` virtual seconds;
        iteration stops when the cumulative backoff would exceed the
        plan's ``retry_budget`` or the attempt count its ``max_attempts``.
        Virtual time keeps the schedule deterministic and free.
        """
        spent = 0.0
        for attempt in range(1, self.plan.max_attempts):
            spent += BACKOFF_BASE * (2 ** (attempt - 1))
            if spent > self.plan.retry_budget:
                return
            yield attempt

    # -- DNS layer (wired into dnscore.resolver) --------------------------

    def perturb_dns(self, scope: str, answer):
        """Possibly replace a resolver answer with a faulted one.

        SERVFAIL is persistent per (snapshot, name, type); timeouts are
        transient and retried under the backoff budget before being
        reported as SERVFAIL (what a measurement platform records when a
        resolution never completes); partial-zone dropout removes
        individual records, degrading to NODATA when none survive.
        """
        from ..dnscore.resolver import Answer, Rcode

        plan = self.plan
        name, rtype = answer.qname, answer.qtype.name
        if self._decide(plan.dns_servfail, "dns.servfail", scope, name, rtype):
            return Answer(answer.qname, answer.qtype, Rcode.SERVFAIL, chain=answer.chain)
        if self._dns_times_out(scope, name, rtype):
            return Answer(answer.qname, answer.qtype, Rcode.SERVFAIL, chain=answer.chain)
        if plan.dns_partial > 0.0 and answer.records:
            kept = tuple(
                record
                for record in answer.records
                if not self._decide(
                    plan.dns_partial, "dns.partial", scope, name, rtype, record.rdata
                )
            )
            if len(kept) != len(answer.records):
                rcode = Rcode.NOERROR if kept else Rcode.NODATA
                return Answer(
                    answer.qname, answer.qtype, rcode, records=kept, chain=answer.chain
                )
        return answer

    def _dns_times_out(self, scope: str, name: str, rtype: str) -> bool:
        if not self._decide(self.plan.dns_timeout, "dns.timeout", scope, name, rtype, 0):
            return False
        for attempt in self.retry_attempts():
            STATS.inc("faults.dns.retry")
            if not self._decide(
                self.plan.dns_timeout, "dns.timeout", scope, name, rtype, attempt
            ):
                STATS.inc("faults.dns.recovered")
                return False
        STATS.inc("faults.dns.exhausted")
        return True

    def _dns_would_time_out(self, scope: str, name: str, rtype: str) -> bool:
        """Counter-free replay of :meth:`_dns_times_out` for provenance."""
        if not self.would(self.plan.dns_timeout, "dns.timeout", scope, name, rtype, 0):
            return False
        return not any(
            not self.would(
                self.plan.dns_timeout, "dns.timeout", scope, name, rtype, attempt
            )
            for attempt in self.retry_attempts()
        )

    # -- SMTP/TLS layer (wired into smtp.session) -------------------------

    def probe_fault(self, address: str, on: date | None, attempt: int):
        """Connection-level fault for one probe attempt, or None.

        Refusals are persistent per (snapshot, address) — retrying cannot
        help; timeouts are transient per attempt, so the scanner's
        retry-with-backoff loop re-rolls them.
        """
        from ..smtp.session import SessionOutcome

        scope = _scope(on)
        if self._decide(self.plan.smtp_refused, "smtp.refused", scope, address):
            return SessionOutcome.CONNECTION_REFUSED
        if self._decide(self.plan.smtp_timeout, "smtp.timeout", scope, address, attempt):
            return SessionOutcome.TIMEOUT
        return None

    def truncated_banner(self, line: str, address: str, on: date | None) -> str | None:
        """The surviving banner prefix when the session dies mid-banner."""
        scope = _scope(on)
        if not self._decide(self.plan.smtp_truncate, "smtp.truncate", scope, address):
            return None
        cut = int(
            fault_roll(self.plan.seed, "smtp.truncate.cut", scope, address) * len(line)
        )
        return line[:cut]

    def tls_handshake_fails(self, address: str, on: date | None) -> bool:
        return self._decide(self.plan.tls_fail, "tls.fail", _scope(on), address)

    # -- scan-coverage layer (wired into measure.censys) ------------------

    def _dropout_rate(self, address: str) -> float:
        if self._asn_dropout and self.asn_of is not None:
            asn = self.asn_of(address)
            if asn in self._asn_dropout:
                return self._asn_dropout[asn]
        return self.plan.scan_dropout

    def scan_dropped(self, address: str, on: date) -> bool:
        """Whether this (address, snapshot) is a hole in the scan data."""
        return self._decide(
            self._dropout_rate(address), "scan.dropout", _scope(on), address
        )

    # -- evidence-loss provenance (counter-free replays) ------------------

    def explain_observation(self, observation, on: date) -> dict | None:
        """Why one joined observation lost evidence tiers, or None.

        Recomputes the pure decisions (never reads counters), so the
        explanation is consistent with any stored snapshot of the same
        (seed, plan) — including ones gathered by forked workers.
        """
        scope = _scope(on)
        address = observation.address
        scan = observation.scan
        if scan is None:
            if self.would(self._dropout_rate(address), "scan.dropout", scope, address):
                reason = "injected scan dropout (no Censys data this snapshot)"
            else:
                reason = "outside Censys coverage"
            return {"address": address, "lost": ["cert", "banner"], "reason": reason}
        if not scan.has_smtp:
            from ..measure.censys import Port25State

            if scan.state is Port25State.TIMEOUT:
                if self.would(self.plan.smtp_timeout, "smtp.timeout", scope, address, 0):
                    reason = (
                        "injected SMTP timeout (retries exhausted within the "
                        f"{self.plan.retry_budget:g}s backoff budget)"
                    )
                else:
                    reason = "port 25 timeout"
            elif self.would(self.plan.smtp_refused, "smtp.refused", scope, address):
                reason = "injected connection refused"
            else:
                reason = "port 25 closed"
            return {"address": address, "lost": ["cert", "banner"], "reason": reason}
        if scan.certificate is None:
            if scan.starttls and self.would(self.plan.tls_fail, "tls.fail", scope, address):
                return {
                    "address": address,
                    "lost": ["cert"],
                    "reason": "injected TLS handshake failure (STARTTLS offered)",
                }
            if self.would(self.plan.smtp_truncate, "smtp.truncate", scope, address):
                return {
                    "address": address,
                    "lost": ["cert"],
                    "reason": "injected truncated session (died after partial banner)",
                }
        return None

    def explain_dns(self, on: date, name: str, rtype: str = "MX") -> str | None:
        """Why a (snapshot, name, type) resolution failed, or None."""
        scope = _scope(on)
        if self.would(self.plan.dns_servfail, "dns.servfail", scope, name, rtype):
            return "injected DNS SERVFAIL"
        if self._dns_would_time_out(scope, name, rtype):
            return "injected DNS timeout (retries exhausted)"
        return None

    # -- per-domain evidence tallies (pipeline hook) ----------------------

    def record_domain_evidence(self, measurement, identities) -> None:
        """Tally tier usage and evidence loss for one attributed domain.

        Called by the priority pipeline (only on faulted runs) so the
        ``--metrics-out`` export carries the degradation profile: which
        tier each MX landed on and which evidence never arrived.
        """
        for identity in identities.values():
            STATS.inc(f"faults.evidence.tier.{identity.source.value}")
        if not measurement.has_mx:
            STATS.inc("faults.evidence.no_mx")
            return
        for mx in measurement.primary_mx:
            for observation in mx.ips:
                scan = observation.scan
                if scan is None:
                    STATS.inc("faults.evidence.scan_missing")
                elif not scan.has_smtp:
                    STATS.inc("faults.evidence.smtp_unreachable")
                elif scan.certificate is None:
                    STATS.inc("faults.evidence.cert_missing")
