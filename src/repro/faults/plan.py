"""Fault plans: what to break, how often, under which seed.

A :class:`FaultPlan` is the complete, immutable description of one fault
workload over the measure→infer path — per-layer rates (DNS, SMTP/TLS,
scan coverage), the seed that makes every decision reproducible, and the
retry/backoff budget the measurement gatherers are allowed to spend on
transient failures.  Plans are parsed from the ``--faults SPEC`` CLI flag
or the ``REPRO_FAULTS`` environment variable and canonicalize back to a
stable spec string (used in artifact-store keys and run manifests, so a
faulted snapshot can never be confused with a fault-free one).

The paper's pipeline is built for exactly this kind of loss: Censys scans
miss hosts intermittently (Section 4.2.2 calls out EIG by name), DNS
resolutions fail, and the cert > banner > mx-name tier ladder exists to
degrade gracefully when they do.  The plan gives those losses a seed.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass

FAULTS_ENV = "REPRO_FAULTS"

#: spec key → FaultPlan rate field, one per fault channel.
RATE_FIELDS = {
    "dns.servfail": "dns_servfail",
    "dns.timeout": "dns_timeout",
    "dns.partial": "dns_partial",
    "smtp.refused": "smtp_refused",
    "smtp.timeout": "smtp_timeout",
    "smtp.truncate": "smtp_truncate",
    "tls.fail": "tls_fail",
    "scan.dropout": "scan_dropout",
}

#: spec key → FaultPlan rate field for the *harness* fault channels.
#: These break the execution layer (worker processes/threads), never the
#: measured world, so they are excluded from :meth:`FaultPlan.uniform`
#: sweeps and from artifact-store keys — a run that only crashes its own
#: workers still produces (and may share) byte-identical artifacts.
WORKER_RATE_FIELDS = {
    "worker.crash": "worker_crash",
    "worker.hang": "worker_hang",
}

#: spec key → FaultPlan rate field for the *host*-level fault channels
#: used by :mod:`repro.dist`.  Like the worker channels these break only
#: the execution layer (a whole simulated host dies or drops off the
#: network mid-lease), so they are excluded from uniform sweeps and
#: artifact-store keys the same way.
HOST_RATE_FIELDS = {
    "host.crash": "host_crash",
    "host.netsplit": "host_netsplit",
}

#: spec key → FaultPlan rate field for the *serving*-layer fault channels
#: used by :mod:`repro.serve.resilience`.  ``serve.worker.crash`` and
#: ``serve.worker.hang`` kill or wedge one query worker process mid-
#: request; ``ingest.crash`` kills the process between the ingest WAL
#: intent record and its commit.  All three perturb only the serving
#: harness — recovery replays the work and the answers stay
#: byte-identical — so, like the worker/host channels, they are excluded
#: from uniform sweeps and artifact-store keys.
SERVE_RATE_FIELDS = {
    "serve.worker.crash": "serve_worker_crash",
    "serve.worker.hang": "serve_worker_hang",
    "ingest.crash": "ingest_crash",
}

#: every execution-layer channel (stripped from store keys).
_HARNESS_RATE_FIELDS = {
    **WORKER_RATE_FIELDS,
    **HOST_RATE_FIELDS,
    **SERVE_RATE_FIELDS,
}

#: spec words that mean "no fault injection at all".
_OFF_WORDS = {"", "none", "off", "0", "no"}


@dataclass(frozen=True)
class FaultPlan:
    """Rates + seed + retry budget for one deterministic fault workload.

    Every rate is a probability in [0, 1] evaluated by a pure hash of
    ``(seed, channel, key)`` — never by a shared RNG stream — so the same
    (seed, plan) produces bit-identical fault decisions at any ``--jobs``
    setting, with either executor, in any call order.
    """

    seed: int = 0
    dns_servfail: float = 0.0   # persistent per-(snapshot, name, type)
    dns_timeout: float = 0.0    # transient; retried under the budget
    dns_partial: float = 0.0    # per-record dropout from answered RRsets
    smtp_refused: float = 0.0   # persistent per-(snapshot, address)
    smtp_timeout: float = 0.0   # transient slow host; retried
    smtp_truncate: float = 0.0  # session dies after a partial banner
    tls_fail: float = 0.0       # STARTTLS offered but handshake fails
    scan_dropout: float = 0.0   # per-(snapshot, address) Censys gap
    worker_crash: float = 0.0   # per-(shard, attempt) worker dies mid-shard
    worker_hang: float = 0.0    # per-(shard, attempt) worker wedges past deadline
    host_crash: float = 0.0     # per-(host, lease) a whole dist host SIGKILLs
    host_netsplit: float = 0.0  # per-(host, lease) a dist host drops the wire
    serve_worker_crash: float = 0.0  # per-(request, slot) query worker dies
    serve_worker_hang: float = 0.0   # per-(request, slot) query worker wedges
    ingest_crash: float = 0.0   # per-(snapshot, corpus) dies between WAL begin/commit
    # (asn, rate) overrides for scan_dropout — the paper's per-provider
    # blind spots (owner opt-outs hit whole ASes at once).
    asn_dropout: tuple[tuple[int, float], ...] = ()
    max_attempts: int = 3       # total tries per host (1 + retries)
    retry_budget: float = 4.0   # virtual seconds of backoff per host

    def __post_init__(self) -> None:
        for key, attr in {**RATE_FIELDS, **_HARNESS_RATE_FIELDS}.items():
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"fault rate {key}={value} outside [0, 1]")
        for asn, rate in self.asn_dropout:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate asn:{asn}={rate} outside [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")

    # -- activity --------------------------------------------------------

    @property
    def measurement_active(self) -> bool:
        """Whether any *measurement* channel (DNS/SMTP/TLS/scan) can fire.

        Only measurement faults change gathered snapshots, so only they
        contaminate artifact-store keys and justify wiring an injector
        into the measurement seams.
        """
        if any(getattr(self, attr) > 0 for attr in RATE_FIELDS.values()):
            return True
        return any(rate > 0 for _asn, rate in self.asn_dropout)

    @property
    def worker_active(self) -> bool:
        """Whether any execution-layer (worker crash/hang) channel can fire."""
        return any(getattr(self, attr) > 0 for attr in WORKER_RATE_FIELDS.values())

    @property
    def host_active(self) -> bool:
        """Whether any dist host-level (crash/netsplit) channel can fire."""
        return any(getattr(self, attr) > 0 for attr in HOST_RATE_FIELDS.values())

    @property
    def serve_active(self) -> bool:
        """Whether any serving-layer (worker crash/hang, ingest) channel can fire."""
        return any(getattr(self, attr) > 0 for attr in SERVE_RATE_FIELDS.values())

    @property
    def active(self) -> bool:
        """Whether any fault channel can ever fire.

        An inactive plan is the no-op seam: contexts treat it exactly like
        "no faults configured", so a ``--faults none`` (or all-zero) run
        is byte-identical to one where the module is never consulted.
        """
        return (
            self.measurement_active
            or self.worker_active
            or self.host_active
            or self.serve_active
        )

    # -- construction ----------------------------------------------------

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Every fault channel at the same *rate* (the chaos-sweep axis)."""
        return cls(seed=seed, **{attr: rate for attr in RATE_FIELDS.values()})

    @classmethod
    def parse(cls, spec: str | None, seed: int = 0) -> "FaultPlan":
        """A plan from a spec string.

        Grammar::

            SPEC  := "none" | RATE | item ("," item)*
            item  := "rate=" RATE          # uniform base rate
                   | "seed=" INT
                   | "retries=" INT        # max attempts per host
                   | "budget=" FLOAT       # virtual backoff seconds
                   | "asn:" INT "=" RATE   # per-AS scan-dropout override
                   | CHANNEL "=" RATE      # e.g. dns.servfail=0.05

        A bare number is shorthand for ``rate=NUMBER``.  Unknown keys and
        out-of-range rates raise :class:`ValueError`.
        """
        if spec is None or spec.strip().lower() in _OFF_WORDS:
            return cls(seed=seed)
        spec = spec.strip()
        try:
            return cls.uniform(float(spec), seed=seed)
        except ValueError:
            pass  # not a bare rate — parse the item list

        fields: dict[str, object] = {"seed": seed}
        asn_overrides: dict[int, float] = {}
        uniform_rate: float | None = None
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"malformed fault spec item {item!r} (want key=value)")
            key, _, raw = item.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key == "seed":
                fields["seed"] = int(raw)
            elif key == "retries":
                fields["max_attempts"] = int(raw)
            elif key == "budget":
                fields["retry_budget"] = float(raw)
            elif key == "rate":
                uniform_rate = float(raw)
            elif key.startswith("asn:"):
                asn_overrides[int(key[len("asn:"):])] = float(raw)
            elif key in RATE_FIELDS:
                fields[RATE_FIELDS[key]] = float(raw)
            elif key in _HARNESS_RATE_FIELDS:
                fields[_HARNESS_RATE_FIELDS[key]] = float(raw)
            else:
                known = ", ".join(sorted(RATE_FIELDS) + sorted(_HARNESS_RATE_FIELDS))
                raise ValueError(
                    f"unknown fault spec key {key!r} (known: rate, seed, "
                    f"retries, budget, asn:<n>, {known})"
                )
        if uniform_rate is not None:
            for attr in RATE_FIELDS.values():
                fields.setdefault(attr, uniform_rate)
        if asn_overrides:
            fields["asn_dropout"] = tuple(sorted(asn_overrides.items()))
        return cls(**fields)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULTS``, or None when unset.

        Unparseable values warn (instead of failing silently) and fall
        back to no injection, mirroring ``REPRO_SCALE``/``REPRO_JOBS``.
        """
        raw = os.environ.get(FAULTS_ENV)
        if raw is None:
            return None
        try:
            return cls.parse(raw)
        except ValueError as error:
            warnings.warn(
                f"unparseable {FAULTS_ENV}={raw!r} ({error}); disabling faults",
                stacklevel=2,
            )
            return None

    # -- canonical form --------------------------------------------------

    def canonical(self) -> str:
        """The stable spec string of this plan (``"none"`` when inactive).

        Round-trips through :meth:`parse` for every active plan; folded
        into artifact-store keys so faulted artifacts never collide with
        fault-free ones (and rate-0 plans add nothing to the key).
        """
        if not self.active:
            return "none"
        parts = [f"seed={self.seed}"]
        for key, attr in sorted({**RATE_FIELDS, **_HARNESS_RATE_FIELDS}.items()):
            value = getattr(self, attr)
            if value > 0:
                parts.append(f"{key}={value:g}")
        for asn, rate in self.asn_dropout:
            if rate > 0:
                parts.append(f"asn:{asn}={rate:g}")
        defaults = FaultPlan()
        if self.max_attempts != defaults.max_attempts:
            parts.append(f"retries={self.max_attempts}")
        if self.retry_budget != defaults.retry_budget:
            parts.append(f"budget={self.retry_budget:g}")
        return ",".join(parts)

    def store_key(self) -> str | None:
        """The artifact-store key component of this plan, or None.

        Worker crash/hang and host crash/netsplit channels perturb only
        the execution layer — results are recomputed and stay
        byte-identical — so they are stripped here: a harness-faults-only
        run reads and writes the same store entries as a fault-free one,
        which is exactly what the kill/resume equivalence gate compares.
        """
        if not self.measurement_active:
            return None
        stripped = dataclasses.replace(
            self, **{attr: 0.0 for attr in _HARNESS_RATE_FIELDS.values()}
        )
        return stripped.canonical()

    def describe(self) -> dict:
        """A manifest-friendly dict (only the channels that can fire)."""
        document = {"seed": self.seed, "spec": self.canonical()}
        rates = {
            key: getattr(self, attr)
            for key, attr in {**RATE_FIELDS, **_HARNESS_RATE_FIELDS}.items()
            if getattr(self, attr) > 0
        }
        if rates:
            document["rates"] = rates
        if self.asn_dropout:
            document["asn_dropout"] = {
                str(asn): rate for asn, rate in self.asn_dropout
            }
        document["max_attempts"] = self.max_attempts
        document["retry_budget"] = self.retry_budget
        return document


def resolve_plan(spec: str | None, seed: int = 0) -> FaultPlan | None:
    """The active plan from an explicit spec or the environment, or None.

    An explicit *spec* wins over ``REPRO_FAULTS``; inactive plans resolve
    to None so callers can use "plan is None" as the zero-overhead seam.
    """
    if spec is not None:
        plan = FaultPlan.parse(spec, seed=seed)
    else:
        plan = FaultPlan.from_env()
    if plan is None or not plan.active:
        return None
    return plan


def as_plan(value: "FaultPlan | str | None") -> FaultPlan | None:
    """Coerce a plan-or-spec argument to an active plan (or None)."""
    if value is None:
        return None
    if isinstance(value, str):
        return resolve_plan(value)
    if not dataclasses.is_dataclass(value):
        raise TypeError(f"expected FaultPlan or spec string, got {type(value)!r}")
    return value if value.active else None
