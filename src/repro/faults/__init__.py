"""Deterministic fault injection across the measurement path.

The paper's methodology is designed around lossy measurement — scans
that miss hosts, certificates that never arrive, resolutions that fail —
and its cert > banner > mx-name priority ladder exists to degrade
gracefully under that loss.  This package makes the loss reproducible:
a seeded :class:`FaultPlan` drives a :class:`FaultInjector` whose every
decision is a pure hash of (seed, channel, key), injected at well-defined
seams in ``dnscore.resolver``, ``smtp.session``, and ``measure.censys``.

With no plan configured the seams are single ``is None`` checks — the
fault-free path is byte-identical to a build without this package.
"""

from .inject import BACKOFF_BASE, FaultInjector, fault_roll
from .plan import (
    FAULTS_ENV,
    HOST_RATE_FIELDS,
    WORKER_RATE_FIELDS,
    FaultPlan,
    as_plan,
    resolve_plan,
)

__all__ = [
    "BACKOFF_BASE",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "HOST_RATE_FIELDS",
    "WORKER_RATE_FIELDS",
    "as_plan",
    "fault_roll",
    "resolve_plan",
]
