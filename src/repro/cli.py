"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig4                 # regenerate Figure 4
    python -m repro tab6 --scale 2.0     # Table 6 on a 2x-sized world
    python -m repro all                  # everything, in paper order
    python -m repro cache stats          # persistent artifact cache usage
    python -m repro cache clear          # drop every cached artifact

The world is deterministic in (--seed, --scale); the default matches the
test suite's standard world.  With a cache configured (``--cache-dir`` or
``REPRO_CACHE``), gathered snapshots and inference results persist across
invocations, so repeat runs skip the measure→infer work entirely.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    ext_concentration,
    ext_ml,
    ext_spf,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    sec41_corpus,
    tab1_2_3,
    tab4,
    tab5,
    tab6,
)
from .engine import EngineOptions, get_stats
from .experiments.common import StudyContext
from .store import CACHE_ENV, ArtifactStore
from .world.build import WorldConfig

EXPERIMENTS = {
    "sec4-corpus": (sec41_corpus, "Section 4.1 — stable-corpus construction funnel"),
    "tab1-3": (tab1_2_3, "Tables 1-3 — worked examples of the methodology"),
    "fig4": (fig4, "Figure 4 — accuracy of the four inference approaches"),
    "tab4": (tab4, "Table 4 — data-availability breakdown"),
    "tab5": (tab5, "Table 5 — provider IDs per company"),
    "fig5": (fig5, "Figure 5 — top companies per domain set"),
    "fig6": (fig6, "Figure 6 — longitudinal market share"),
    "fig7": (fig7, "Figure 7 — provider churn (Sankey flows)"),
    "fig8": (fig8, "Figure 8 — provider preference by ccTLD"),
    "tab6": (tab6, "Table 6 — top-15 companies per dataset"),
    "ext-spf": (ext_spf, "Extension — SPF-revealed eventual providers (Section 3.4)"),
    "ext-hhi": (ext_concentration, "Extension — HHI/CR-k market concentration over time"),
    "ext-ml": (ext_ml, "Extension — learned misidentification detection"),
}

# Regeneration order mirrors the paper.
PAPER_ORDER = (
    "tab1-3", "fig4", "sec4-corpus", "tab4", "tab5", "fig5", "fig6", "fig7",
    "fig8", "tab6", "ext-spf", "ext-hhi", "ext-ml",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Who's Got Your Mail?' (IMC 2021)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "cache"],
        help="which table/figure to regenerate ('all' for everything; "
             "'cache' for store maintenance)",
    )
    parser.add_argument(
        "cache_action",
        nargs="?",
        choices=["stats", "clear"],
        help="with 'cache': show usage stats (default) or drop all entries",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="corpus scale factor (1.0 = 1200/1500/300 domains)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="engine workers for gathering/identification "
             "(default: REPRO_JOBS or 1; results are identical for any N)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="print engine perf stats (cache hit rates, timings) to stderr",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help=f"persistent artifact store directory (default: ${CACHE_ENV})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store for this run",
    )
    return parser


def resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    """The artifact store selected by flags/environment, or None."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return ArtifactStore(args.cache_dir)
    return ArtifactStore.from_env()


def run_cache_command(args: argparse.Namespace) -> int:
    """The ``repro cache [stats|clear]`` maintenance subcommand."""
    store = resolve_store(args)
    if store is None:
        print(
            f"no artifact cache configured (set {CACHE_ENV} or pass --cache-dir)",
            file=sys.stderr,
        )
        return 2
    if args.cache_action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
    else:
        print(f"cache {store.describe()}")
    return 0


def run_experiment(name: str, ctx: StudyContext) -> str:
    module, _description = EXPERIMENTS[name]
    return module.run(ctx).render()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_action is not None and args.experiment != "cache":
        parser.error("positional ACTION is only valid with the 'cache' command")

    if args.experiment == "list":
        for name in PAPER_ORDER:
            print(f"{name:8s} {EXPERIMENTS[name][1]}")
        return 0
    if args.experiment == "cache":
        return run_cache_command(args)

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    started = time.time()
    print(
        f"Building world (seed={config.seed}, "
        f"{config.alexa_size}/{config.com_size}/{config.gov_size} domains) ...",
        file=sys.stderr,
    )
    ctx = StudyContext.create(
        config, engine=EngineOptions(jobs=args.jobs), store=resolve_store(args)
    )

    names = PAPER_ORDER if args.experiment == "all" else (args.experiment,)
    for name in names:
        experiment_started = time.time()
        print(run_experiment(name, ctx))
        print()
        print(
            f"[{name}] done in {time.time() - experiment_started:.1f}s",
            file=sys.stderr,
        )
    print(f"Done in {time.time() - started:.1f}s", file=sys.stderr)
    if args.perf:
        print(get_stats().render(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
